//! Service contexts: the implicit-propagation channel for middleware state.
//!
//! CORBA requests carry a list of *service contexts* — opaque blobs keyed by
//! a service id — which interceptors read and write without the application
//! noticing. The Activity Service uses exactly this mechanism to propagate
//! the current activity context on every invocation (paper fig. 3: the
//! framework sits beside the ORB and piggybacks on its requests).

use std::collections::BTreeMap;

use crate::error::OrbError;
use crate::value::Value;

/// Well-known service-context id used by the Activity Service.
pub const ACTIVITY_SERVICE_CONTEXT: &str = "ActivityService";
/// Well-known service-context id used by the Object Transaction Service.
pub const TRANSACTION_SERVICE_CONTEXT: &str = "TransactionService";

/// A set of named, dynamically typed context entries attached to a request.
///
/// Entries survive the trip through the (simulated) network byte-for-byte:
/// they are encoded with the same codec as [`Value`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceContext {
    entries: BTreeMap<String, Value>,
}

impl ServiceContext {
    /// Create an empty context set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach (or replace) the entry for `service_id`.
    pub fn set(&mut self, service_id: impl Into<String>, payload: Value) {
        self.entries.insert(service_id.into(), payload);
    }

    /// Fetch the entry for `service_id`, if present.
    pub fn get(&self, service_id: &str) -> Option<&Value> {
        self.entries.get(service_id)
    }

    /// Remove and return the entry for `service_id`.
    pub fn remove(&mut self, service_id: &str) -> Option<Value> {
        self.entries.remove(service_id)
    }

    /// Whether no entries are attached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of attached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Iterate over `(service_id, payload)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Encode all entries into a single [`Value`] (used by the transport).
    pub fn to_value(&self) -> Value {
        Value::Map(self.entries.clone())
    }

    /// Decode a context set from a transported [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::Codec`] if the value is not a map.
    pub fn from_value(value: &Value) -> Result<Self, OrbError> {
        match value {
            Value::Map(m) => Ok(ServiceContext { entries: m.clone() }),
            other => Err(OrbError::Codec(format!(
                "service context must be a map, got {other}"
            ))),
        }
    }
}

impl FromIterator<(String, Value)> for ServiceContext {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        ServiceContext { entries: iter.into_iter().collect() }
    }
}

impl Extend<(String, Value)> for ServiceContext {
    fn extend<T: IntoIterator<Item = (String, Value)>>(&mut self, iter: T) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut ctx = ServiceContext::new();
        assert!(ctx.is_empty());
        ctx.set(ACTIVITY_SERVICE_CONTEXT, Value::from("ctx-bytes"));
        assert_eq!(ctx.len(), 1);
        assert_eq!(
            ctx.get(ACTIVITY_SERVICE_CONTEXT).and_then(Value::as_str),
            Some("ctx-bytes")
        );
        assert!(ctx.get("other").is_none());
        assert_eq!(ctx.remove(ACTIVITY_SERVICE_CONTEXT), Some(Value::from("ctx-bytes")));
        assert!(ctx.is_empty());
    }

    #[test]
    fn value_roundtrip() {
        let mut ctx = ServiceContext::new();
        ctx.set("a", Value::I64(1));
        ctx.set("b", Value::from("two"));
        let v = ctx.to_value();
        let decoded = ServiceContext::from_value(&v).unwrap();
        assert_eq!(decoded, ctx);
        // And through the binary codec too.
        let binary = v.encode();
        let decoded2 = ServiceContext::from_value(&Value::decode(&binary).unwrap()).unwrap();
        assert_eq!(decoded2, ctx);
    }

    #[test]
    fn from_value_rejects_non_map() {
        assert!(ServiceContext::from_value(&Value::I64(1)).is_err());
    }

    #[test]
    fn collect_and_extend() {
        let mut ctx: ServiceContext =
            vec![("x".to_string(), Value::Bool(true))].into_iter().collect();
        ctx.extend(vec![("y".to_string(), Value::Bool(false))]);
        assert_eq!(ctx.len(), 2);
        let keys: Vec<&str> = ctx.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["x", "y"]);
    }
}
