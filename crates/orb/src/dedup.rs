//! Receiver-side deduplication of redelivered requests.
//!
//! Retries ([`crate::retry`]) and network duplicates make every delivery
//! *at-least-once*; the [`DedupWindow`] turns at-least-once delivery into
//! **effect-once** processing at the receiver. Each logical request carries a
//! [`Request::delivery_id`](crate::Request::delivery_id) — every retry and
//! every duplicated copy shares the id — and the window memoizes the first
//! execution's result under that id, replaying it verbatim for redeliveries.
//!
//! This generalizes the activity service's `ExactlyOnceAction` (which pins
//! the same discipline to signal processing and persists its memo table in
//! the WAL so it survives replay) down to the ORB layer, where it covers
//! *any* servant — including the `prepare`/`commit`/`rollback` deliveries of
//! remote two-phase-commit participants. Durable receivers that must stay
//! deduplicated across a crash seed the window from their log at recovery
//! time with [`DedupWindow::seed`].
//!
//! Semantics shared with `ExactlyOnceAction`:
//!
//! * requests without a delivery id pass straight through (no id, no claim);
//! * only **successful** results are recorded — an error leaves no memo, so
//!   a retry genuinely re-executes;
//! * the window is bounded (FIFO eviction), because the sender's retry
//!   horizon is bounded by its policy's attempt budget and deadline.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::OrbError;
use crate::message::Request;
use crate::object::Servant;
use crate::value::Value;

struct WindowInner {
    cached: HashMap<String, Value>,
    order: VecDeque<String>,
}

/// A bounded delivery-id → result memo table.
///
/// Cheap to share via `Arc`; all operations are deterministic.
pub struct DedupWindow {
    capacity: usize,
    inner: Mutex<WindowInner>,
}

impl std::fmt::Debug for DedupWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DedupWindow")
            .field("capacity", &self.capacity)
            .field("len", &self.inner.lock().cached.len())
            .finish()
    }
}

impl DedupWindow {
    /// A window remembering up to `capacity` delivery ids (at least 1).
    pub fn new(capacity: usize) -> Self {
        DedupWindow {
            capacity: capacity.max(1),
            inner: Mutex::new(WindowInner { cached: HashMap::new(), order: VecDeque::new() }),
        }
    }

    /// The memoized result for `delivery_id`, if this receiver already
    /// processed it.
    pub fn lookup(&self, delivery_id: &str) -> Option<Value> {
        self.inner.lock().cached.get(delivery_id).cloned()
    }

    /// Memoize `result` under `delivery_id`, evicting the oldest entry once
    /// past capacity. Recording the same id again refreshes the value
    /// without growing the window.
    pub fn record(&self, delivery_id: &str, result: Value) {
        let mut inner = self.inner.lock();
        if inner.cached.insert(delivery_id.to_owned(), result).is_none() {
            inner.order.push_back(delivery_id.to_owned());
            while inner.order.len() > self.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.cached.remove(&evicted);
                }
            }
        }
    }

    /// Pre-populate the window — the WAL-replay path: a durable receiver
    /// re-seeds the ids it already processed so post-crash redeliveries stay
    /// effect-once. Identical to [`DedupWindow::record`].
    pub fn seed(&self, delivery_id: &str, result: Value) {
        self.record(delivery_id, result);
    }

    /// Number of remembered delivery ids.
    pub fn len(&self) -> usize {
        self.inner.lock().cached.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the window's occupancy for the introspection plane.
    #[must_use]
    pub fn introspect(&self) -> String {
        format!("occupancy={}/{}\n", self.len(), self.capacity)
    }
}

/// Wraps any [`Servant`] with a [`DedupWindow`]: redeliveries of a stamped
/// request replay the memoized reply instead of re-executing.
pub struct DedupServant {
    inner: Arc<dyn Servant>,
    window: Arc<DedupWindow>,
    hits: Mutex<Option<telemetry::Counter>>,
}

impl DedupServant {
    /// Guard `inner` with `window`.
    pub fn new(inner: Arc<dyn Servant>, window: Arc<DedupWindow>) -> Self {
        DedupServant { inner, window, hits: Mutex::new(None) }
    }

    /// Count memo replays as `dedup_hits_total` in the given recorder's
    /// metrics registry (the counter handle is pre-resolved, so the hit
    /// path costs one atomic add).
    pub fn set_telemetry(&self, telemetry: &telemetry::Telemetry) {
        *self.hits.lock() = Some(telemetry.metrics().counter("dedup_hits_total"));
    }

    /// The shared window (receivers seed it at recovery time).
    pub fn window(&self) -> &Arc<DedupWindow> {
        &self.window
    }
}

impl Servant for DedupServant {
    fn dispatch(&self, request: &Request) -> Result<Value, OrbError> {
        let Some(id) = request.delivery_id() else {
            return self.inner.dispatch(request);
        };
        if let Some(memo) = self.window.lookup(id) {
            if let Some(hits) = self.hits.lock().as_ref() {
                hits.incr();
            }
            return Ok(memo);
        }
        let result = self.inner.dispatch(request)?;
        self.window.record(id, result.clone());
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn counting_servant(hits: Arc<AtomicU32>) -> Arc<dyn Servant> {
        Arc::new(move |req: &Request| match req.operation() {
            "hit" => Ok(Value::U64(u64::from(hits.fetch_add(1, Ordering::SeqCst) + 1))),
            _ => Err(OrbError::Application("refused".into())),
        })
    }

    #[test]
    fn stamped_redelivery_replays_the_memo() {
        let hits = Arc::new(AtomicU32::new(0));
        let servant =
            DedupServant::new(counting_servant(Arc::clone(&hits)), Arc::new(DedupWindow::new(8)));
        let req = Request::new("hit").with_delivery_id("d-1");
        assert_eq!(servant.dispatch(&req).unwrap(), Value::U64(1));
        assert_eq!(servant.dispatch(&req).unwrap(), Value::U64(1), "replayed, not re-run");
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // A different id is a different logical request.
        let req2 = Request::new("hit").with_delivery_id("d-2");
        assert_eq!(servant.dispatch(&req2).unwrap(), Value::U64(2));
    }

    #[test]
    fn unstamped_requests_pass_through() {
        let hits = Arc::new(AtomicU32::new(0));
        let servant =
            DedupServant::new(counting_servant(Arc::clone(&hits)), Arc::new(DedupWindow::new(8)));
        let req = Request::new("hit");
        servant.dispatch(&req).unwrap();
        servant.dispatch(&req).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 2, "no id, no dedup claim");
    }

    #[test]
    fn errors_are_not_memoized() {
        let hits = Arc::new(AtomicU32::new(0));
        let servant =
            DedupServant::new(counting_servant(Arc::clone(&hits)), Arc::new(DedupWindow::new(8)));
        let bad = Request::new("nope").with_delivery_id("d-err");
        assert!(servant.dispatch(&bad).is_err());
        assert_eq!(servant.window().len(), 0, "a failed execution leaves no memo");
    }

    #[test]
    fn window_is_bounded_fifo() {
        let window = DedupWindow::new(2);
        window.record("a", Value::U64(1));
        window.record("b", Value::U64(2));
        window.record("c", Value::U64(3));
        assert_eq!(window.len(), 2);
        assert!(window.lookup("a").is_none(), "oldest evicted");
        assert_eq!(window.lookup("c"), Some(Value::U64(3)));
        // Re-recording an existing id refreshes without eviction.
        window.record("c", Value::U64(4));
        assert_eq!(window.lookup("b"), Some(Value::U64(2)));
        assert_eq!(window.lookup("c"), Some(Value::U64(4)));
    }

    #[test]
    fn seeding_models_wal_replay() {
        let hits = Arc::new(AtomicU32::new(0));
        let window = Arc::new(DedupWindow::new(8));
        // "Recovery": the receiver replays its log and re-seeds processed ids.
        window.seed("processed-before-crash", Value::U64(41));
        let servant = DedupServant::new(counting_servant(Arc::clone(&hits)), window);
        let req = Request::new("hit").with_delivery_id("processed-before-crash");
        assert_eq!(servant.dispatch(&req).unwrap(), Value::U64(41));
        assert_eq!(hits.load(Ordering::SeqCst), 0, "post-replay redelivery is effect-free");
    }
}
