//! A simulated CORBA-like Object Request Broker: the *distribution
//! infrastructure* substrate that the Activity Service framework of Houston,
//! Little, Robinson, Shrivastava and Wheater ("The CORBA Activity Service
//! Framework for Supporting Extended Transactions", Middleware 2001 /
//! SP&E 33(4), 2003) assumes underneath it (fig. 3 of the paper).
//!
//! The paper's framework needs four things from its middleware, all of which
//! this crate provides without an IIOP wire protocol:
//!
//! 1. **Location-transparent invocation** — objects ([`Servant`]s) are
//!    registered on [`Node`]s and invoked through [`ObjectRef`]s regardless of
//!    which node the caller sits on.
//! 2. **Implicit context propagation** — [`ServiceContext`] entries attached
//!    to a [`Request`] travel with every invocation, and
//!    [`interceptor::ClientRequestInterceptor`] /
//!    [`interceptor::ServerRequestInterceptor`] pairs let a service (such as
//!    the Activity Service) piggyback its own context transparently.
//! 3. **Unreliable delivery** — the [`network::SimulatedNetwork`] can drop,
//!    duplicate and delay messages and partition nodes, which is what forces
//!    the paper's *at-least-once* Signal delivery semantics (§3.4) and the
//!    idempotence requirement on Actions.
//! 4. **A naming service** — [`registry::NameRegistry`] binds names to object
//!    references (the paper's §2.1(ii) name-server example).
//!
//! # Example
//!
//! ```
//! use orb::{Orb, Request, Servant, Value};
//! use orb::error::OrbError;
//!
//! struct Echo;
//! impl Servant for Echo {
//!     fn dispatch(&self, request: &Request) -> Result<Value, OrbError> {
//!         Ok(request.arg("msg").cloned().unwrap_or(Value::Null))
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let orb = Orb::builder().build();
//! let node = orb.add_node("alpha")?;
//! let echo = node.activate("echo", Echo)?;
//! let reply = orb.invoke(&echo, Request::new("echo").with_arg("msg", Value::from("hi")))?;
//! assert_eq!(reply.result, Value::from("hi"));
//! # Ok(())
//! # }
//! ```

pub mod choice;
pub mod clock;
pub mod context;
pub mod dedup;
pub mod detector;
pub mod error;
pub mod interceptor;
pub mod introspect;
pub mod message;
pub mod network;
pub mod node;
pub mod object;
pub mod pool;
pub mod registry;
pub mod retry;
pub mod value;

pub use choice::{DeliverySequencer, RegistrationOrder};
pub use clock::SimClock;
pub use context::ServiceContext;
pub use dedup::{DedupServant, DedupWindow};
pub use detector::{DetectorConfig, FailureDetector, HealthStatus};
pub use error::OrbError;
pub use interceptor::{
    LamportClientInterceptor, LamportServerInterceptor, SpanClientInterceptor,
    SpanServerInterceptor,
};
pub use introspect::{Introspection, INTROSPECTION_INTERFACE};
pub use message::{Reply, Request};
pub use network::{FaultScript, NetworkConfig, PartitionWindow, SimulatedNetwork};
pub use node::{Node, Orb, OrbBuilder};
pub use retry::RetryPolicy;
pub use object::{ObjectId, ObjectRef, Servant};
pub use pool::{CancelToken, DispatchConfig, OrderedResults, TaskOutcome, WorkerPool};
pub use registry::NameRegistry;
pub use value::{Value, ValueMap};
