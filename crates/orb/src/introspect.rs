//! The live introspection plane: a read-only management servant per node.
//!
//! Following the management interfaces that made advanced CORBA services
//! operable in practice, every node can activate one [`Introspection`]
//! servant and register named **probes** — closures that render one
//! layer's current state (the OTS in-doubt set, WAL flush watermarks,
//! failure-detector standings, dedup-window occupancy, the flight-recorder
//! tail, the activity tree). Operators (and the `introspect` bench binary)
//! then query any node **over the wire**, through the same simulated ORB
//! the protocols run on:
//!
//! | operation | args | reply |
//! |---|---|---|
//! | `list` | — | comma-separated probe names |
//! | `query` | `probe` (string) | that probe's rendering |
//! | `snapshot` | — | every probe, labelled, in name order |
//!
//! Probes are strictly read-only by convention: a probe closure must only
//! render state, never mutate it, so introspection cannot perturb a
//! protocol run (the harness's byte-identity guards would catch it if it
//! did).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::OrbError;
use crate::message::Request;
use crate::node::Node;
use crate::object::{ObjectRef, Servant};
use crate::value::Value;

/// Interface name the introspection servant is activated under.
pub const INTROSPECTION_INTERFACE: &str = "Introspection";

type Probe = Arc<dyn Fn() -> String + Send + Sync>;

/// Read-only management servant: named probes over one node's state.
pub struct Introspection {
    node: String,
    probes: Mutex<BTreeMap<String, Probe>>,
}

impl Introspection {
    /// An empty introspection surface for `node`.
    pub fn new(node: &str) -> Arc<Introspection> {
        Arc::new(Introspection { node: node.to_string(), probes: Mutex::new(BTreeMap::new()) })
    }

    /// Activate a fresh introspection servant on `node` under
    /// [`INTROSPECTION_INTERFACE`], returning the servant handle (to
    /// register probes on) and its wire reference.
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::NodeNotFound`] if the owning ORB is gone.
    pub fn install(node: &Node) -> Result<(Arc<Introspection>, ObjectRef), OrbError> {
        let servant = Introspection::new(node.name());
        let object =
            node.activate_arc(INTROSPECTION_INTERFACE, Arc::clone(&servant) as Arc<dyn Servant>)?;
        Ok((servant, object))
    }

    /// Which node this surface describes.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Register (or replace) a probe. `probe` must be read-only.
    pub fn register(&self, name: &str, probe: impl Fn() -> String + Send + Sync + 'static) {
        self.probes.lock().insert(name.to_string(), Arc::new(probe));
    }

    /// Registered probe names, sorted.
    pub fn probe_names(&self) -> Vec<String> {
        self.probes.lock().keys().cloned().collect()
    }

    /// Run one probe locally.
    pub fn query(&self, name: &str) -> Option<String> {
        let probe = self.probes.lock().get(name).cloned();
        probe.map(|p| p())
    }

    /// Every probe's rendering, labelled and indented, in name order.
    pub fn snapshot(&self) -> String {
        let probes: Vec<(String, Probe)> =
            self.probes.lock().iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect();
        let mut out = String::new();
        let _ = writeln!(out, "node {}:", self.node);
        for (name, probe) in probes {
            let _ = writeln!(out, "  {name}:");
            let rendered = probe();
            if rendered.trim().is_empty() {
                let _ = writeln!(out, "    (empty)");
            } else {
                for line in rendered.lines() {
                    let _ = writeln!(out, "    {line}");
                }
            }
        }
        out
    }
}

impl Servant for Introspection {
    fn dispatch(&self, request: &Request) -> Result<Value, OrbError> {
        match request.operation() {
            "list" => Ok(Value::from(self.probe_names().join(","))),
            "query" => {
                let name = request
                    .arg("probe")
                    .and_then(Value::as_str)
                    .ok_or_else(|| OrbError::BadOperation("query needs a 'probe' arg".into()))?;
                match self.query(name) {
                    Some(rendered) => Ok(Value::from(rendered)),
                    None => Err(OrbError::BadOperation(format!(
                        "no probe '{name}' on node {}",
                        self.node
                    ))),
                }
            }
            "snapshot" => Ok(Value::from(self.snapshot())),
            other => Err(OrbError::BadOperation(format!(
                "introspection has no operation '{other}'"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Orb;

    #[test]
    fn probes_render_locally_and_over_the_wire() {
        let orb = Orb::builder().build();
        let node = orb.add_node("alpha").expect("node");
        let (servant, object) = Introspection::install(&node).expect("install");
        servant.register("wal", || "flush_lsn=7".to_string());
        servant.register("detector", || "store: Healthy\nledger: Suspect".to_string());

        // Local surface.
        assert_eq!(servant.probe_names(), vec!["detector".to_string(), "wal".to_string()]);
        assert_eq!(servant.query("wal").as_deref(), Some("flush_lsn=7"));
        assert!(servant.query("nope").is_none());
        let snap = servant.snapshot();
        assert!(snap.contains("node alpha:"), "{snap}");
        assert!(snap.contains("    flush_lsn=7"), "{snap}");

        // Over the wire, like any other servant.
        let reply = orb.invoke(&object, Request::new("list")).expect("list");
        assert_eq!(reply.result.as_str(), Some("detector,wal"));
        let reply = orb
            .invoke(&object, Request::new("query").with_arg("probe", Value::from("wal")))
            .expect("query");
        assert_eq!(reply.result.as_str(), Some("flush_lsn=7"));
        let reply = orb.invoke(&object, Request::new("snapshot")).expect("snapshot");
        assert!(reply.result.as_str().unwrap_or_default().contains("ledger: Suspect"));

        // Unknown probes and operations are errors, not panics.
        assert!(orb
            .invoke(&object, Request::new("query").with_arg("probe", Value::from("zz")))
            .is_err());
        assert!(orb.invoke(&object, Request::new("mutate")).is_err());
    }

    #[test]
    fn empty_probe_renders_placeholder() {
        let servant = Introspection::new("beta");
        servant.register("in_doubt", String::new);
        let snap = servant.snapshot();
        assert!(snap.contains("(empty)"), "{snap}");
    }
}
