//! Error type for logging and recovery operations.

use std::fmt;

use crate::record::Lsn;

/// Errors raised by the write-ahead log and replay machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogError {
    /// An underlying I/O operation failed.
    Io(String),
    /// A record failed its integrity check during a scan.
    Corrupt {
        /// Sequence number of the bad record (best effort).
        lsn: Lsn,
        /// What was wrong.
        reason: String,
    },
    /// A crash was injected at the named failpoint; the "process" must stop.
    CrashInjected(String),
    /// The log has been sealed and refuses further appends.
    Sealed,
    /// A recovery handler rejected a record.
    Handler(String),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(msg) => write!(f, "log i/o failure: {msg}"),
            LogError::Corrupt { lsn, reason } => {
                write!(f, "corrupt log record at lsn {lsn}: {reason}")
            }
            LogError::CrashInjected(point) => write!(f, "crash injected at failpoint {point:?}"),
            LogError::Sealed => write!(f, "log is sealed"),
            LogError::Handler(msg) => write!(f, "recovery handler failure: {msg}"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            LogError::Io("x".into()),
            LogError::Corrupt { lsn: Lsn::new(3), reason: "bad crc".into() },
            LogError::CrashInjected("prepare".into()),
            LogError::Sealed,
            LogError::Handler("no".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::other("disk gone");
        let e: LogError = io.into();
        assert!(matches!(e, LogError::Io(_)));
    }
}
