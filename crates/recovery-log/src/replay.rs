//! Replay: feeding a log back to a recovery handler.

use crate::checkpoint::{latest_checkpoint_record, CHECKPOINT_KIND};
use crate::error::LogError;
use crate::record::{LogRecord, Lsn};
use crate::wal::Wal;

/// A component able to rebuild its state from log records.
pub trait RecoveryHandler {
    /// Error the handler may raise for a record it cannot apply.
    type Error: std::error::Error;

    /// Restore state from a checkpoint snapshot. Called at most once, before
    /// any [`RecoveryHandler::apply`] call, when the log contains a
    /// checkpoint. The default ignores snapshots.
    ///
    /// # Errors
    ///
    /// Implementations may reject malformed snapshots.
    fn restore_checkpoint(&mut self, snapshot: &[u8]) -> Result<(), Self::Error> {
        let _ = snapshot;
        Ok(())
    }

    /// Apply one record.
    ///
    /// # Errors
    ///
    /// Implementations may reject records they cannot interpret; replay
    /// stops at the first rejection.
    fn apply(&mut self, record: &LogRecord) -> Result<(), Self::Error>;
}

/// Summary of one replay pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Records fed to the handler (checkpoint records excluded).
    pub replayed: usize,
    /// Whether a checkpoint snapshot was restored first.
    pub from_checkpoint: bool,
    /// LSN of the last record applied, if any.
    pub last_lsn: Option<Lsn>,
}

/// Drives recovery: scan the log (from the latest checkpoint if present) and
/// feed every record to the handler in order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Replayer {
    honor_checkpoints: bool,
}

impl Replayer {
    /// A replayer that starts from the latest checkpoint when one exists.
    pub fn new() -> Self {
        Replayer { honor_checkpoints: true }
    }

    /// A replayer that ignores checkpoints and replays the entire log
    /// (checkpoint records are skipped, not applied).
    pub fn full() -> Self {
        Replayer { honor_checkpoints: false }
    }

    /// [`Replayer::replay`], recorded as a `wal_replay` span on `telemetry`
    /// (attrs: records replayed, checkpoint use) plus the
    /// `wal_replays_total` / `wal_replayed_records_total` counters.
    ///
    /// # Errors
    ///
    /// Same as [`Replayer::replay`].
    pub fn replay_traced<H: RecoveryHandler>(
        &self,
        wal: &dyn Wal,
        handler: &mut H,
        telemetry: &telemetry::Telemetry,
    ) -> Result<ReplayReport, LogError> {
        let span = telemetry.is_enabled().then(|| telemetry.start_span("wal_replay"));
        let result = self.replay(wal, handler);
        if let Some(span) = span {
            match &result {
                Ok(report) => {
                    telemetry.set_attr(&span, "replayed", &report.replayed.to_string());
                    telemetry.set_attr(
                        &span,
                        "from_checkpoint",
                        &report.from_checkpoint.to_string(),
                    );
                    telemetry.metrics().incr("wal_replays_total");
                    telemetry.metrics().add("wal_replayed_records_total", report.replayed as u64);
                }
                Err(e) => telemetry.set_attr(&span, "error", &e.to_string()),
            }
            telemetry.end(&span);
        }
        result
    }

    /// Run recovery.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Handler`] wrapping the handler's failure, or a
    /// scan error from the log.
    pub fn replay<H: RecoveryHandler>(
        &self,
        wal: &dyn Wal,
        handler: &mut H,
    ) -> Result<ReplayReport, LogError> {
        let mut report = ReplayReport::default();
        // Zero-copy: records are visited in place via `scan_with` — only a
        // checkpoint snapshot (one record) is ever cloned out of the log.
        let mut from = Lsn::new(0);
        if self.honor_checkpoints {
            if let Some(cp) = latest_checkpoint_record(wal)? {
                handler
                    .restore_checkpoint(&cp.payload)
                    .map_err(|e| LogError::Handler(e.to_string()))?;
                report.from_checkpoint = true;
                from = cp.lsn.next();
            }
        }
        wal.scan_with(from, &mut |record| {
            if record.kind == CHECKPOINT_KIND {
                return Ok(());
            }
            handler.apply(record).map_err(|e| LogError::Handler(e.to_string()))?;
            report.replayed += 1;
            report.last_lsn = Some(record.lsn);
            Ok(())
        })?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::take_checkpoint;
    use crate::wal::MemWal;
    use std::convert::Infallible;

    #[derive(Default)]
    struct Sum {
        base: u64,
        total: u64,
    }
    impl RecoveryHandler for Sum {
        type Error = Infallible;
        fn restore_checkpoint(&mut self, snapshot: &[u8]) -> Result<(), Infallible> {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(snapshot);
            self.base = u64::from_be_bytes(buf);
            Ok(())
        }
        fn apply(&mut self, record: &LogRecord) -> Result<(), Infallible> {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&record.payload);
            self.total += u64::from_be_bytes(buf);
            Ok(())
        }
    }

    #[test]
    fn replays_everything_without_checkpoint() {
        let wal = MemWal::new();
        for i in 1..=4u64 {
            wal.append(1, &i.to_be_bytes()).unwrap();
        }
        let mut sum = Sum::default();
        let report = Replayer::new().replay(&wal, &mut sum).unwrap();
        assert_eq!(report.replayed, 4);
        assert!(!report.from_checkpoint);
        assert_eq!(report.last_lsn, Some(Lsn::new(4)));
        assert_eq!(sum.total, 10);
    }

    #[test]
    fn traced_replay_records_span_and_counters() {
        let tel = telemetry::Telemetry::new();
        let wal = MemWal::new();
        wal.set_telemetry(&tel);
        for i in 1..=3u64 {
            wal.append(1, &i.to_be_bytes()).unwrap();
        }
        let mut sum = Sum::default();
        let report = Replayer::new().replay_traced(&wal, &mut sum, &tel).unwrap();
        assert_eq!(report.replayed, 3);
        assert_eq!(tel.metrics().counter_value("wal_appends_total"), 3);
        assert_eq!(tel.metrics().counter_value("wal_replays_total"), 1);
        assert_eq!(tel.metrics().counter_value("wal_replayed_records_total"), 3);
        let tree = tel.span_tree();
        assert_eq!(tree.verify(), Vec::<String>::new());
        let span = tree.find("wal_replay").expect("replay span");
        assert_eq!(span.attr("replayed"), Some("3"));
        assert_eq!(span.attr("from_checkpoint"), Some("false"));
    }

    #[test]
    fn resumes_from_checkpoint() {
        let wal = MemWal::new();
        wal.append(1, &100u64.to_be_bytes()).unwrap();
        take_checkpoint(&wal, &100u64.to_be_bytes(), false).unwrap();
        wal.append(1, &5u64.to_be_bytes()).unwrap();

        let mut sum = Sum::default();
        let report = Replayer::new().replay(&wal, &mut sum).unwrap();
        assert!(report.from_checkpoint);
        assert_eq!(report.replayed, 1);
        assert_eq!(sum.base, 100);
        assert_eq!(sum.total, 5);
    }

    #[test]
    fn full_replayer_ignores_checkpoints() {
        let wal = MemWal::new();
        wal.append(1, &1u64.to_be_bytes()).unwrap();
        take_checkpoint(&wal, &99u64.to_be_bytes(), false).unwrap();
        wal.append(1, &2u64.to_be_bytes()).unwrap();

        let mut sum = Sum::default();
        let report = Replayer::full().replay(&wal, &mut sum).unwrap();
        assert!(!report.from_checkpoint);
        assert_eq!(report.replayed, 2);
        assert_eq!(sum.base, 0);
        assert_eq!(sum.total, 3);
    }

    #[test]
    fn handler_failure_stops_replay() {
        #[derive(Debug)]
        struct Nope;
        impl std::fmt::Display for Nope {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "refused")
            }
        }
        impl std::error::Error for Nope {}
        struct Fussy;
        impl RecoveryHandler for Fussy {
            type Error = Nope;
            fn apply(&mut self, _record: &LogRecord) -> Result<(), Nope> {
                Err(Nope)
            }
        }
        let wal = MemWal::new();
        wal.append(1, b"x").unwrap();
        let err = Replayer::new().replay(&wal, &mut Fussy).unwrap_err();
        assert!(matches!(err, LogError::Handler(msg) if msg.contains("refused")));
    }
}
