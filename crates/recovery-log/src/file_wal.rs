//! A file-backed write-ahead log with torn-tail recovery.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::error::LogError;
use crate::record::{LogRecord, Lsn};
use crate::wal::Wal;

/// A [`Wal`] persisting records to a single append-only file.
///
/// On open, the file is scanned; a torn or corrupt tail (e.g. from a crash
/// mid-append) is detected by the per-record checksum and discarded, keeping
/// the valid prefix — the standard WAL recovery contract.
#[derive(Debug)]
pub struct FileWal {
    inner: Mutex<FileWalInner>,
    path: PathBuf,
    appends: Mutex<Option<telemetry::Counter>>,
    syncs: Mutex<Option<telemetry::Counter>>,
}

#[derive(Debug)]
struct FileWalInner {
    file: File,
    records: Vec<LogRecord>,
    next: u64,
    // Reused encode scratch: appends and compaction encode into this one
    // buffer instead of allocating a fresh Vec per record.
    encode_buf: Vec<u8>,
}

impl FileWal {
    /// Open (creating if absent) the log at `path`, recovering its valid
    /// prefix and truncating any torn tail.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] if the file cannot be opened or resized.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, LogError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)?;
        let mut raw = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut raw)?;

        let mut records = Vec::new();
        let mut offset = 0usize;
        while offset < raw.len() {
            match LogRecord::decode(&raw[offset..]) {
                Ok((record, used)) => {
                    records.push(record);
                    offset += used;
                }
                // A bad record anywhere means everything from here on is the
                // torn tail; cut it off.
                Err(_) => break,
            }
        }
        if offset < raw.len() {
            file.set_len(offset as u64)?;
            file.seek(SeekFrom::End(0))?;
        }
        let next = records.last().map(|r| r.lsn.raw() + 1).unwrap_or(1);
        Ok(FileWal {
            inner: Mutex::new(FileWalInner { file, records, next, encode_buf: Vec::new() }),
            path,
            appends: Mutex::new(None),
            syncs: Mutex::new(None),
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Attach a telemetry recorder: every durable append bumps
    /// `wal_appends_total` and every `sync_data` bumps `wal_syncs_total`.
    pub fn set_telemetry(&self, telemetry: &telemetry::Telemetry) {
        *self.appends.lock() = Some(telemetry.metrics().counter("wal_appends_total"));
        *self.syncs.lock() = Some(telemetry.metrics().counter("wal_syncs_total"));
    }
}

impl Wal for FileWal {
    fn append(&self, kind: u32, payload: &[u8]) -> Result<Lsn, LogError> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let lsn = Lsn::new(inner.next);
        let record = LogRecord::new(lsn, kind, payload.to_vec());
        inner.encode_buf.clear();
        record.encode_into(&mut inner.encode_buf);
        inner.file.write_all(&inner.encode_buf)?;
        inner.next += 1;
        inner.records.push(record);
        if let Some(counter) = &*self.appends.lock() {
            counter.incr();
        }
        Ok(lsn)
    }

    fn append_batch(&self, records: &[(u32, &[u8])]) -> Result<Lsn, LogError> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        // One coalesced encode of the whole batch into the reused scratch
        // buffer, then a single write_all: this is the vectored write a
        // group-commit leader hands us.
        inner.encode_buf.clear();
        for (kind, payload) in records {
            let lsn = Lsn::new(inner.next);
            inner.next += 1;
            let record = LogRecord::new(lsn, *kind, payload.to_vec());
            record.encode_into(&mut inner.encode_buf);
            inner.records.push(record);
        }
        inner.file.write_all(&inner.encode_buf)?;
        let last = Lsn::new(inner.next - 1);
        if !records.is_empty() {
            if let Some(counter) = &*self.appends.lock() {
                counter.add(records.len() as u64);
            }
        }
        Ok(last)
    }

    fn scan(&self, from: Lsn) -> Result<Vec<LogRecord>, LogError> {
        Ok(self
            .inner
            .lock()
            .records
            .iter()
            .filter(|r| r.lsn >= from)
            .cloned()
            .collect())
    }

    fn scan_with(
        &self,
        from: Lsn,
        visit: &mut dyn FnMut(&LogRecord) -> Result<(), LogError>,
    ) -> Result<(), LogError> {
        let inner = self.inner.lock();
        for record in inner.records.iter().filter(|r| r.lsn >= from) {
            visit(record)?;
        }
        Ok(())
    }

    fn truncate_prefix(&self, upto: Lsn) -> Result<(), LogError> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.records.retain(|r| r.lsn >= upto);
        // Write the retained suffix once to a sibling temp file, fsync it,
        // then atomically rename over the log. A crash at any point leaves
        // either the old complete log or the new complete log — never the
        // half-rewritten file the old in-place rewrite could tear.
        let tmp_path = self.path.with_extension("compact-tmp");
        let mut tmp = File::create(&tmp_path)?;
        inner.encode_buf.clear();
        for r in &inner.records {
            r.encode_into(&mut inner.encode_buf);
        }
        tmp.write_all(&inner.encode_buf)?;
        tmp.sync_data()?;
        std::fs::rename(&tmp_path, &self.path)?;
        // Reopen: the old handle still points at the unlinked pre-compaction
        // inode; appends must land in the renamed file.
        let mut file = OpenOptions::new().read(true).append(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        inner.file = file;
        Ok(())
    }

    fn sync(&self) -> Result<(), LogError> {
        self.inner.lock().file.sync_data()?;
        if let Some(counter) = &*self.syncs.lock() {
            counter.incr();
        }
        Ok(())
    }

    fn next_lsn(&self) -> Lsn {
        Lsn::new(self.inner.lock().next)
    }

    fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    fn is_empty(&self) -> bool {
        self.inner.lock().records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        let unique = format!(
            "recovery-log-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        );
        p.push(unique);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn survives_reopen() {
        let path = temp_path("reopen");
        {
            let wal = FileWal::open(&path).unwrap();
            wal.append(1, b"alpha").unwrap();
            wal.append(2, b"beta").unwrap();
            wal.sync().unwrap();
        }
        let wal = FileWal::open(&path).unwrap();
        let records = wal.scan(Lsn::new(0)).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].payload, b"alpha");
        assert_eq!(records[1].payload, b"beta");
        // New appends continue the sequence.
        assert_eq!(wal.append(3, b"gamma").unwrap(), Lsn::new(3));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_discarded_on_open() {
        let path = temp_path("torn");
        {
            let wal = FileWal::open(&path).unwrap();
            wal.append(1, b"good-1").unwrap();
            wal.append(1, b"good-2").unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-append: write half of a record.
        {
            let half = LogRecord::new(Lsn::new(3), 1, b"torn".to_vec()).encode();
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&half[..half.len() / 2]).unwrap();
        }
        let wal = FileWal::open(&path).unwrap();
        let records = wal.scan(Lsn::new(0)).unwrap();
        assert_eq!(records.len(), 2, "torn tail must be discarded");
        // The torn bytes are gone from the file, so the next append is clean.
        assert_eq!(wal.append(1, b"good-3").unwrap(), Lsn::new(3));
        drop(wal);
        let wal = FileWal::open(&path).unwrap();
        assert_eq!(wal.scan(Lsn::new(0)).unwrap().len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_middle_record_cuts_scan_there() {
        let path = temp_path("corrupt-mid");
        {
            let wal = FileWal::open(&path).unwrap();
            wal.append(1, b"aaaa").unwrap();
            wal.append(1, b"bbbb").unwrap();
            wal.append(1, b"cccc").unwrap();
        }
        // Flip a payload bit in the middle record.
        let mut bytes = std::fs::read(&path).unwrap();
        let record_len = LogRecord::new(Lsn::new(1), 1, b"aaaa".to_vec()).encoded_len();
        bytes[record_len + 20] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let wal = FileWal::open(&path).unwrap();
        let records = wal.scan(Lsn::new(0)).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].payload, b"aaaa");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_prefix_persists() {
        let path = temp_path("truncate");
        {
            let wal = FileWal::open(&path).unwrap();
            for i in 0..10u32 {
                wal.append(i, &i.to_be_bytes()).unwrap();
            }
            wal.truncate_prefix(Lsn::new(8)).unwrap();
        }
        let wal = FileWal::open(&path).unwrap();
        let records = wal.scan(Lsn::new(0)).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].lsn, Lsn::new(8));
        assert_eq!(wal.next_lsn(), Lsn::new(11));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_batch_coalesces_and_survives_reopen() {
        let path = temp_path("batch");
        {
            let wal = FileWal::open(&path).unwrap();
            wal.append(1, b"solo").unwrap();
            let last = wal
                .append_batch(&[(2, b"aa".as_slice()), (3, b"bb".as_slice()), (4, b"cc".as_slice())])
                .unwrap();
            assert_eq!(last, Lsn::new(4));
            wal.sync().unwrap();
        }
        let wal = FileWal::open(&path).unwrap();
        let records = wal.scan(Lsn::new(0)).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[3].kind, 4);
        assert_eq!(records[3].payload, b"cc");
        assert_eq!(wal.next_lsn(), Lsn::new(5));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_prefix_leaves_no_temp_file_and_appends_survive() {
        let path = temp_path("truncate-atomic");
        let wal = FileWal::open(&path).unwrap();
        for i in 0..6u32 {
            wal.append(i, &i.to_be_bytes()).unwrap();
        }
        wal.truncate_prefix(Lsn::new(4)).unwrap();
        assert!(
            !path.with_extension("compact-tmp").exists(),
            "compaction temp file must be renamed away"
        );
        // Appends after compaction must land in the renamed file, not the
        // unlinked pre-compaction inode.
        wal.append(9, b"post").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let wal = FileWal::open(&path).unwrap();
        let records = wal.scan(Lsn::new(0)).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].lsn, Lsn::new(4));
        assert_eq!(records[3].payload, b"post");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn len_is_cheap_and_matches_scan() {
        let path = temp_path("len");
        let wal = FileWal::open(&path).unwrap();
        assert!(wal.is_empty());
        for i in 0..5u32 {
            wal.append(i, b"x").unwrap();
        }
        assert_eq!(wal.len(), wal.scan(Lsn::new(0)).unwrap().len());
        wal.truncate_prefix(Lsn::new(3)).unwrap();
        assert_eq!(wal.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_is_a_valid_log() {
        let path = temp_path("empty");
        let wal = FileWal::open(&path).unwrap();
        assert!(wal.is_empty());
        assert_eq!(wal.next_lsn(), Lsn::new(1));
        assert_eq!(wal.path(), path.as_path());
        std::fs::remove_file(&path).unwrap();
    }
}
