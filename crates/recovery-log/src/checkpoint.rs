//! Checkpointing: bounding replay work by recording a stable prefix.
//!
//! A checkpoint is itself a log record (kind [`CHECKPOINT_KIND`]) whose
//! payload is a component-provided snapshot. Replay then starts from the
//! last checkpoint instead of the log head, and the prefix before it can be
//! compacted away.

use crate::error::LogError;
use crate::record::{LogRecord, Lsn};
use crate::wal::Wal;

/// Reserved record kind for checkpoints. Component kind spaces must avoid it.
pub const CHECKPOINT_KIND: u32 = u32::MAX;

/// Write a checkpoint record carrying `snapshot`, then (optionally) compact
/// the log prefix preceding it.
///
/// Returns the checkpoint's LSN.
///
/// # Errors
///
/// Propagates append/compaction failures from the log.
pub fn take_checkpoint(wal: &dyn Wal, snapshot: &[u8], compact: bool) -> Result<Lsn, LogError> {
    // Forced write: the checkpoint must be durable before the prefix it
    // supersedes may be compacted away. Under a group-commit log this is a
    // barrier covering exactly the checkpoint's LSN.
    let lsn = wal.append_durable(CHECKPOINT_KIND, snapshot)?;
    if compact {
        wal.truncate_prefix(lsn)?;
    }
    Ok(lsn)
}

/// Locate the most recent checkpoint record in the log, cloning only that
/// one record (its snapshot payload) — the zero-copy path replay uses
/// before streaming the tail with [`Wal::scan_with`].
///
/// # Errors
///
/// Propagates scan failures from the log.
pub fn latest_checkpoint_record(wal: &dyn Wal) -> Result<Option<LogRecord>, LogError> {
    let mut checkpoint: Option<LogRecord> = None;
    wal.scan_with(Lsn::new(0), &mut |record| {
        if record.kind == CHECKPOINT_KIND {
            checkpoint = Some(record.clone());
        }
        Ok(())
    })?;
    Ok(checkpoint)
}

/// Locate the most recent checkpoint in the log, returning the checkpoint
/// record (with its snapshot payload) and the records after it.
///
/// When no checkpoint exists, returns `None` and the full record list.
/// Callers that only need to *visit* the tail should prefer
/// [`latest_checkpoint_record`] + [`Wal::scan_with`], which clone nothing
/// but the snapshot.
///
/// # Errors
///
/// Propagates scan failures from the log.
pub fn latest_checkpoint(
    wal: &dyn Wal,
) -> Result<(Option<LogRecord>, Vec<LogRecord>), LogError> {
    match latest_checkpoint_record(wal)? {
        Some(cp) => {
            let tail = wal.scan(cp.lsn.next())?;
            Ok((Some(cp), tail))
        }
        None => Ok((None, wal.scan(Lsn::new(0))?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::MemWal;

    #[test]
    fn checkpoint_splits_log() {
        let wal = MemWal::new();
        wal.append(1, b"a").unwrap();
        wal.append(1, b"b").unwrap();
        let cp = take_checkpoint(&wal, b"snapshot-1", false).unwrap();
        wal.append(1, b"c").unwrap();

        let (checkpoint, tail) = latest_checkpoint(&wal).unwrap();
        let checkpoint = checkpoint.unwrap();
        assert_eq!(checkpoint.lsn, cp);
        assert_eq!(checkpoint.payload, b"snapshot-1");
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].payload, b"c");
    }

    #[test]
    fn compacting_checkpoint_drops_prefix() {
        let wal = MemWal::new();
        for _ in 0..10 {
            wal.append(1, b"old").unwrap();
        }
        take_checkpoint(&wal, b"snap", true).unwrap();
        wal.append(1, b"new").unwrap();
        assert_eq!(wal.len(), 2, "checkpoint + one new record");
    }

    #[test]
    fn latest_of_several_checkpoints_wins() {
        let wal = MemWal::new();
        take_checkpoint(&wal, b"one", false).unwrap();
        wal.append(1, b"x").unwrap();
        take_checkpoint(&wal, b"two", false).unwrap();
        wal.append(1, b"y").unwrap();
        let (checkpoint, tail) = latest_checkpoint(&wal).unwrap();
        assert_eq!(checkpoint.unwrap().payload, b"two");
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].payload, b"y");
    }

    #[test]
    fn no_checkpoint_returns_full_log() {
        let wal = MemWal::new();
        wal.append(1, b"a").unwrap();
        let (checkpoint, tail) = latest_checkpoint(&wal).unwrap();
        assert!(checkpoint.is_none());
        assert_eq!(tail.len(), 1);
    }
}
