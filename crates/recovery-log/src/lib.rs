//! Write-ahead logging, crash injection and replay: the persistence
//! substrate behind §3.4 of the paper ("Treatment of failure and recovery").
//!
//! The paper leaves persistence strategy to implementers but itemises what
//! recovery must achieve: replaying application logic, rebinding the
//! activity structure, restoring application object consistency, and
//! recovering Actions and SignalSets. This crate supplies the mechanisms the
//! `ots` and `activity-service` crates build those guarantees on:
//!
//! * [`record::LogRecord`] — checksummed, length-prefixed records with
//!   caller-defined kinds;
//! * [`wal::Wal`] — the append/scan/truncate interface, with an in-memory
//!   implementation ([`wal::MemWal`]) and a file-backed one
//!   ([`file_wal::FileWal`]) that tolerates torn tails;
//! * [`group_commit::GroupCommitWal`] — leader/follower group commit over
//!   any sink: concurrent appenders stage into a shared batch, one leader
//!   performs a single coalesced write + sync per batch, with
//!   deterministic (timer-free) flush triggers and a `flush_lsn` barrier;
//! * [`crash::FailpointSet`] and [`crash::CrashingWal`] — deterministic
//!   crash injection at named protocol steps or after N appends;
//! * [`replay::Replayer`] — scans a log and feeds records to a
//!   [`replay::RecoveryHandler`];
//! * [`checkpoint`] — prefix truncation bookkeeping.
//!
//! # Example
//!
//! ```
//! use recovery_log::wal::{MemWal, Wal};
//! use recovery_log::replay::{RecoveryHandler, Replayer};
//! use recovery_log::record::LogRecord;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wal = MemWal::new();
//! wal.append(1, b"begin tx-7")?;
//! wal.append(2, b"commit tx-7")?;
//!
//! struct Collect(Vec<u32>);
//! impl RecoveryHandler for Collect {
//!     type Error = std::convert::Infallible;
//!     fn apply(&mut self, record: &LogRecord) -> Result<(), Self::Error> {
//!         self.0.push(record.kind);
//!         Ok(())
//!     }
//! }
//! let mut handler = Collect(Vec::new());
//! let report = Replayer::new().replay(&wal, &mut handler)?;
//! assert_eq!(report.replayed, 2);
//! assert_eq!(handler.0, vec![1, 2]);
//! # Ok(())
//! # }
//! ```

pub mod checkpoint;
pub mod crash;
pub mod error;
pub mod file_wal;
pub mod group_commit;
pub mod record;
pub mod replay;
pub mod wal;

pub use crash::{CrashingWal, FailpointSet};
pub use error::LogError;
pub use file_wal::FileWal;
pub use group_commit::{GroupCommitConfig, GroupCommitWal};
pub use record::{LogRecord, Lsn};
pub use replay::{RecoveryHandler, Replayer};
pub use wal::{MemWal, Wal};
