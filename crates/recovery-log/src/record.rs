//! Log records: checksummed, length-prefixed, kind-tagged byte payloads.

use std::fmt;

use bytes::{Buf, BufMut};

use crate::error::LogError;

/// Magic bytes opening every encoded record.
const MAGIC: u16 = 0xA5C7;
/// Fixed header size: magic (2) + kind (4) + lsn (8) + payload len (4).
const HEADER_LEN: usize = 2 + 4 + 8 + 4;
/// Trailing checksum size.
const CRC_LEN: usize = 4;

/// A log sequence number: dense, starting at 1, strictly increasing per log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(u64);

impl Lsn {
    /// Wrap a raw sequence number.
    pub const fn new(raw: u64) -> Self {
        Lsn(raw)
    }

    /// The raw sequence number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The next sequence number.
    #[must_use]
    pub const fn next(self) -> Self {
        Lsn(self.0 + 1)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One durable record: a caller-defined `kind` discriminant plus an opaque
/// payload, stamped with the [`Lsn`] the log assigned on append.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Sequence number assigned by the log.
    pub lsn: Lsn,
    /// Caller-defined record kind (the `ots` and `activity-service` crates
    /// each define their own kind spaces).
    pub kind: u32,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

impl LogRecord {
    /// Build a record; normally the log itself assigns the [`Lsn`].
    pub fn new(lsn: Lsn, kind: u32, payload: impl Into<Vec<u8>>) -> Self {
        LogRecord { lsn, kind, payload: payload.into() }
    }

    /// Encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.payload.len() + CRC_LEN
    }

    /// Encode to the on-disk format:
    /// `magic u16 | kind u32 | lsn u64 | len u32 | payload | crc32`.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf
    }

    /// Append the encoded record to `buf` without allocating.
    ///
    /// `buf` is not cleared: callers batching several records into one
    /// write buffer call this repeatedly, and hot paths keep one reused
    /// buffer per log (clear + encode_into) instead of a fresh `Vec` per
    /// append.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.reserve(self.encoded_len());
        let start = buf.len();
        buf.put_u16(MAGIC);
        buf.put_u32(self.kind);
        buf.put_u64(self.lsn.raw());
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        let crc = crc32(&buf[start..]);
        buf.put_u32(crc);
    }

    /// Decode one record from the front of `input`, returning the record and
    /// the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Corrupt`] for truncated input, a bad magic, or a
    /// checksum mismatch. Truncation errors carry `lsn == Lsn::new(0)` when
    /// the header itself is incomplete.
    pub fn decode(input: &[u8]) -> Result<(LogRecord, usize), LogError> {
        if input.len() < HEADER_LEN {
            return Err(LogError::Corrupt {
                lsn: Lsn::new(0),
                reason: format!("truncated header: {} bytes", input.len()),
            });
        }
        let mut cursor = input;
        let magic = cursor.get_u16();
        if magic != MAGIC {
            return Err(LogError::Corrupt {
                lsn: Lsn::new(0),
                reason: format!("bad magic {magic:#06x}"),
            });
        }
        let kind = cursor.get_u32();
        let lsn = Lsn::new(cursor.get_u64());
        let len = cursor.get_u32() as usize;
        let total = HEADER_LEN + len + CRC_LEN;
        if input.len() < total {
            return Err(LogError::Corrupt {
                lsn,
                reason: format!("truncated body: need {total} bytes, have {}", input.len()),
            });
        }
        let payload = cursor[..len].to_vec();
        cursor.advance(len);
        let stored_crc = cursor.get_u32();
        let actual_crc = crc32(&input[..HEADER_LEN + len]);
        if stored_crc != actual_crc {
            return Err(LogError::Corrupt {
                lsn,
                reason: format!("crc mismatch: stored {stored_crc:#010x}, actual {actual_crc:#010x}"),
            });
        }
        Ok((LogRecord { lsn, kind, payload }, total))
    }
}

/// Standard CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
pub fn crc32(data: &[u8]) -> u32 {
    // Table computed on first use; 1 KiB, cheap to build.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_ordering_and_next() {
        assert!(Lsn::new(1) < Lsn::new(2));
        assert_eq!(Lsn::new(1).next(), Lsn::new(2));
        assert_eq!(Lsn::default().raw(), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = LogRecord::new(Lsn::new(42), 7, b"hello".to_vec());
        let encoded = r.encode();
        assert_eq!(encoded.len(), r.encoded_len());
        let (decoded, consumed) = LogRecord::decode(&encoded).unwrap();
        assert_eq!(decoded, r);
        assert_eq!(consumed, encoded.len());
    }

    #[test]
    fn empty_payload_roundtrip() {
        let r = LogRecord::new(Lsn::new(1), 0, Vec::new());
        let (decoded, _) = LogRecord::decode(&r.encode()).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn decode_consumes_only_one_record() {
        let a = LogRecord::new(Lsn::new(1), 1, b"a".to_vec());
        let b = LogRecord::new(Lsn::new(2), 2, b"bb".to_vec());
        let mut stream = a.encode();
        stream.extend_from_slice(&b.encode());
        let (first, used) = LogRecord::decode(&stream).unwrap();
        assert_eq!(first, a);
        let (second, _) = LogRecord::decode(&stream[used..]).unwrap();
        assert_eq!(second, b);
    }

    #[test]
    fn encode_into_appends_and_matches_encode() {
        let a = LogRecord::new(Lsn::new(1), 1, b"a".to_vec());
        let b = LogRecord::new(Lsn::new(2), 2, b"bb".to_vec());
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        b.encode_into(&mut buf);
        let mut expected = a.encode();
        expected.extend_from_slice(&b.encode());
        assert_eq!(buf, expected, "batched encode_into must byte-match per-record encode");
        let (first, used) = LogRecord::decode(&buf).unwrap();
        assert_eq!(first, a);
        let (second, _) = LogRecord::decode(&buf[used..]).unwrap();
        assert_eq!(second, b);
    }

    #[test]
    fn corrupt_crc_detected() {
        let mut encoded = LogRecord::new(Lsn::new(1), 1, b"data".to_vec()).encode();
        let last = encoded.len() - 1;
        encoded[last] ^= 0xFF;
        assert!(matches!(LogRecord::decode(&encoded), Err(LogError::Corrupt { .. })));
    }

    #[test]
    fn flipped_payload_bit_detected() {
        let mut encoded = LogRecord::new(Lsn::new(1), 1, b"data".to_vec()).encode();
        encoded[20] ^= 0x01; // inside the payload
        assert!(matches!(LogRecord::decode(&encoded), Err(LogError::Corrupt { .. })));
    }

    #[test]
    fn truncations_detected() {
        let encoded = LogRecord::new(Lsn::new(9), 3, b"payload".to_vec()).encode();
        for cut in 0..encoded.len() {
            assert!(
                LogRecord::decode(&encoded[..cut]).is_err(),
                "prefix {cut} should fail"
            );
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut encoded = LogRecord::new(Lsn::new(1), 1, b"x".to_vec()).encode();
        encoded[0] = 0;
        assert!(matches!(
            LogRecord::decode(&encoded),
            Err(LogError::Corrupt { reason, .. }) if reason.contains("magic")
        ));
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
