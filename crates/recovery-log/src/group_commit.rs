//! Leader/follower group commit: one coalesced write + one `sync_data`
//! per batch of concurrent appenders.
//!
//! The per-record durability path (`append` + `sync` on [`crate::FileWal`])
//! serializes every committer behind its own `sync_data`. Under concurrent
//! coordinators that is one fsync *per decision record* — the dominant cost
//! of 2PC commit latency. [`GroupCommitWal`] wraps any [`Wal`] sink and
//! turns N concurrent durability barriers into one:
//!
//! * appenders stage records into a shared write buffer and return
//!   immediately (the record rides the next batch);
//! * a durability barrier ([`Wal::append_durable`], [`Wal::flush_lsn`],
//!   [`Wal::sync`]) elects the first arriving waiter as *leader*: it takes
//!   the whole staged batch, hands it to the sink as one
//!   [`Wal::append_batch`] (one coalesced encode + `write_all` on
//!   [`crate::FileWal`]) followed by a single [`Wal::sync`], then wakes
//!   every follower whose LSN the batch covered;
//! * plain appends also flush when the staged batch crosses the
//!   count or byte threshold in [`GroupCommitConfig`].
//!
//! There are **no wall-clock timers**: every flush is triggered by an
//! explicit barrier or a deterministic threshold, so runs under `SimClock`
//! and the simulation harness stay reproducible. Waiting uses a condvar
//! keyed purely on batch completion, never on time.
//!
//! # Durability contract
//!
//! Records are durable once the batch containing them has been flushed.
//! [`Wal::scan`]/[`Wal::scan_with`] force a flush first, so the base-trait
//! rule — only durable records are visible to scans — is preserved. A crash
//! (real or injected in the sink) loses the staged-but-unflushed tail;
//! every LSN acked by `append_durable`/`flush_lsn` is guaranteed to be in
//! the sink. After a flush failure the wal is poisoned: the staged tail is
//! discarded and every subsequent operation returns the original error
//! (a dead process stays dead), until [`GroupCommitWal::recover_from_sink`]
//! re-adopts the sink's surviving state — the "restart".

use std::sync::{Condvar, Mutex};

use crate::error::LogError;
use crate::record::{LogRecord, Lsn};
use crate::wal::Wal;

/// Fixed header + checksum overhead per staged record, mirrored from the
/// record encoding so the byte threshold tracks on-disk size.
const RECORD_OVERHEAD: usize = 2 + 4 + 8 + 4 + 4;

/// Deterministic flush triggers for [`GroupCommitWal`]. No timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Flush once this many records are staged.
    pub max_batch_records: usize,
    /// Flush once the staged batch's encoded size reaches this many bytes.
    pub max_batch_bytes: usize,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig { max_batch_records: 64, max_batch_bytes: 256 * 1024 }
    }
}

#[derive(Debug)]
struct GroupState {
    /// Staged records in LSN order; contiguous, ending at `next - 1`.
    staged: Vec<(u32, Vec<u8>)>,
    /// Encoded size of the staged batch.
    staged_bytes: usize,
    /// Next LSN to assign (mirrors the sink's counter: the sink only ever
    /// sees our flush batches, in order).
    next: u64,
    /// Every LSN `<= durable` is flushed and synced into the sink.
    durable: u64,
    /// Whether a leader currently owns a batch flush.
    flushing: bool,
    /// First flush failure; all later operations return a clone of it.
    poisoned: Option<LogError>,
}

struct GroupTelemetry {
    syncs: telemetry::Counter,
    metrics: telemetry::MetricsRegistry,
}

/// A group-committing [`Wal`] decorator (leader/follower batching over any
/// sink, typically [`crate::FileWal`]). See the module docs for the
/// protocol and durability contract.
pub struct GroupCommitWal<W> {
    inner: W,
    config: GroupCommitConfig,
    state: Mutex<GroupState>,
    flushed: Condvar,
    telemetry: Mutex<Option<GroupTelemetry>>,
}

impl<W: Wal> GroupCommitWal<W> {
    /// Wrap `inner` with default flush thresholds.
    pub fn new(inner: W) -> Self {
        Self::with_config(inner, GroupCommitConfig::default())
    }

    /// Wrap `inner` with explicit flush thresholds.
    pub fn with_config(inner: W, config: GroupCommitConfig) -> Self {
        let next = inner.next_lsn().raw();
        GroupCommitWal {
            inner,
            config,
            state: Mutex::new(GroupState {
                staged: Vec::new(),
                staged_bytes: 0,
                next,
                durable: next - 1,
                flushing: false,
                poisoned: None,
            }),
            flushed: Condvar::new(),
            telemetry: Mutex::new(None),
        }
    }

    /// Attach a telemetry recorder: every batch flush bumps
    /// `wal_syncs_total` and records `wal_group_size` (records per batch)
    /// and `wal_batch_bytes` (encoded bytes per batch) histogram
    /// observations. Appends are counted by the sink's own recorder.
    pub fn set_telemetry(&self, telemetry: &telemetry::Telemetry) {
        *self.telemetry.lock().unwrap() = Some(GroupTelemetry {
            syncs: telemetry.metrics().counter("wal_syncs_total"),
            metrics: telemetry.metrics().clone(),
        });
    }

    /// The wrapped sink (e.g. to reopen its file after a simulated crash).
    pub fn inner(&self) -> &W {
        &self.inner
    }

    /// Unwrap, returning the sink. Staged-but-unflushed records are lost —
    /// the same tear a crash produces.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Highest LSN known durable in the sink. Records above this watermark
    /// are staged (or lost, if the wal is poisoned).
    pub fn durable_lsn(&self) -> Lsn {
        Lsn::new(self.state.lock().unwrap().durable)
    }

    /// Number of staged-but-unflushed records.
    pub fn staged_len(&self) -> usize {
        self.state.lock().unwrap().staged.len()
    }

    /// Render the durability pipeline's watermarks for the introspection
    /// plane: the durable LSN and the depth of the staged (group-commit)
    /// batch behind it.
    #[must_use]
    pub fn introspect(&self) -> String {
        let state = self.state.lock().unwrap();
        format!(
            "durable_lsn={} staged={} staged_bytes={} next_lsn={}\n",
            state.durable,
            state.staged.len(),
            state.staged_bytes,
            state.next,
        )
    }

    /// Simulate a crash-and-restart: discard the staged tail (a real crash
    /// loses the in-memory write buffer), clear any poison, and re-adopt
    /// the sink's surviving state as the durable truth — exactly what
    /// reopening the sink after a process death yields.
    pub fn recover_from_sink(&self) {
        let mut state = self.state.lock().unwrap();
        state.staged.clear();
        state.staged_bytes = 0;
        state.poisoned = None;
        state.next = self.inner.next_lsn().raw();
        state.durable = state.next - 1;
    }

    /// Wait (or lead a flush) until every LSN `<= lsn` is durable.
    fn ensure_durable(&self, lsn: u64) -> Result<(), LogError> {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.durable >= lsn {
                return Ok(());
            }
            if let Some(err) = &state.poisoned {
                return Err(err.clone());
            }
            if state.flushing {
                // Follower: a leader owns the in-flight batch; it will wake
                // us when the batch lands (or poisons the log).
                state = self.flushed.wait(state).unwrap();
                continue;
            }
            // Leader: take the whole staged batch — everything up to
            // next - 1 — so every waiter it covers is woken at once.
            state.flushing = true;
            let batch = std::mem::take(&mut state.staged);
            let batch_bytes = std::mem::replace(&mut state.staged_bytes, 0);
            let batch_last = state.next - 1;
            drop(state);
            let result = self.flush_batch(&batch);
            state = self.state.lock().unwrap();
            state.flushing = false;
            match result {
                Ok(()) => {
                    state.durable = batch_last;
                    if let Some(tel) = &*self.telemetry.lock().unwrap() {
                        tel.syncs.incr();
                        tel.metrics.observe_count("wal_group_size", batch.len() as u64);
                        tel.metrics.observe_count("wal_batch_bytes", batch_bytes as u64);
                    }
                }
                Err(e) => {
                    // The batch (or its barrier) failed: the staged tail is
                    // torn off and the wal stays dead until recovery.
                    state.poisoned = Some(e);
                }
            }
            self.flushed.notify_all();
        }
    }

    /// One coalesced sink write + one sync for a taken batch.
    fn flush_batch(&self, batch: &[(u32, Vec<u8>)]) -> Result<(), LogError> {
        if !batch.is_empty() {
            let refs: Vec<(u32, &[u8])> =
                batch.iter().map(|(kind, payload)| (*kind, payload.as_slice())).collect();
            self.inner.append_batch(&refs)?;
        }
        self.inner.sync()
    }

    /// Stage one record, returning its LSN and whether a threshold flush is
    /// due.
    fn stage(&self, kind: u32, payload: &[u8]) -> Result<(u64, bool), LogError> {
        let mut state = self.state.lock().unwrap();
        if let Some(err) = &state.poisoned {
            return Err(err.clone());
        }
        let lsn = state.next;
        state.next += 1;
        state.staged.push((kind, payload.to_vec()));
        state.staged_bytes += RECORD_OVERHEAD + payload.len();
        let threshold_hit = state.staged.len() >= self.config.max_batch_records
            || state.staged_bytes >= self.config.max_batch_bytes;
        Ok((lsn, threshold_hit))
    }
}

impl<W: Wal> Wal for GroupCommitWal<W> {
    fn append(&self, kind: u32, payload: &[u8]) -> Result<Lsn, LogError> {
        let (lsn, threshold_hit) = self.stage(kind, payload)?;
        if threshold_hit {
            self.ensure_durable(lsn)?;
        }
        Ok(Lsn::new(lsn))
    }

    fn append_durable(&self, kind: u32, payload: &[u8]) -> Result<Lsn, LogError> {
        let (lsn, _) = self.stage(kind, payload)?;
        self.ensure_durable(lsn)?;
        Ok(Lsn::new(lsn))
    }

    fn append_batch(&self, records: &[(u32, &[u8])]) -> Result<Lsn, LogError> {
        let mut last = Lsn::new(self.next_lsn().raw() - 1);
        let mut flush_to = None;
        for (kind, payload) in records {
            let (lsn, threshold_hit) = self.stage(*kind, payload)?;
            last = Lsn::new(lsn);
            if threshold_hit {
                flush_to = Some(lsn);
            }
        }
        if let Some(lsn) = flush_to {
            self.ensure_durable(lsn)?;
        }
        Ok(last)
    }

    fn flush_lsn(&self, lsn: Lsn) -> Result<(), LogError> {
        let appended = self.state.lock().unwrap().next - 1;
        self.ensure_durable(lsn.raw().min(appended))
    }

    fn scan(&self, from: Lsn) -> Result<Vec<LogRecord>, LogError> {
        self.sync()?;
        self.inner.scan(from)
    }

    fn scan_with(
        &self,
        from: Lsn,
        visit: &mut dyn FnMut(&LogRecord) -> Result<(), LogError>,
    ) -> Result<(), LogError> {
        self.sync()?;
        self.inner.scan_with(from, visit)
    }

    fn truncate_prefix(&self, upto: Lsn) -> Result<(), LogError> {
        self.sync()?;
        self.inner.truncate_prefix(upto)
    }

    fn sync(&self) -> Result<(), LogError> {
        let appended = self.state.lock().unwrap().next - 1;
        self.ensure_durable(appended)
    }

    fn next_lsn(&self) -> Lsn {
        Lsn::new(self.state.lock().unwrap().next)
    }

    fn len(&self) -> usize {
        // Retained in the sink plus staged: both O(1) with the sink's own
        // len override.
        let staged = self.state.lock().unwrap().staged.len();
        self.inner.len() + staged
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<W: Wal + std::fmt::Debug> std::fmt::Debug for GroupCommitWal<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().unwrap();
        f.debug_struct("GroupCommitWal")
            .field("inner", &self.inner)
            .field("config", &self.config)
            .field("next", &state.next)
            .field("durable", &state.durable)
            .field("staged", &state.staged.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashingWal;
    use crate::wal::MemWal;
    use std::sync::Arc;

    #[test]
    fn appends_stage_until_a_barrier_flushes_them() {
        let wal = GroupCommitWal::new(MemWal::new());
        assert_eq!(wal.append(1, b"a").unwrap(), Lsn::new(1));
        assert_eq!(wal.append(2, b"b").unwrap(), Lsn::new(2));
        assert_eq!(wal.staged_len(), 2);
        assert_eq!(wal.durable_lsn(), Lsn::new(0));
        assert_eq!(wal.len(), 2, "staged records count toward len");
        // The barrier flushes the whole batch in one go.
        assert_eq!(wal.append_durable(3, b"c").unwrap(), Lsn::new(3));
        assert_eq!(wal.staged_len(), 0);
        assert_eq!(wal.durable_lsn(), Lsn::new(3));
        assert_eq!(wal.inner().len(), 3);
    }

    #[test]
    fn scan_forces_a_flush_so_only_durable_records_are_visible() {
        let wal = GroupCommitWal::new(MemWal::new());
        wal.append(1, b"a").unwrap();
        wal.append(2, b"b").unwrap();
        let records = wal.scan(Lsn::new(0)).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(wal.durable_lsn(), Lsn::new(2));
    }

    #[test]
    fn count_threshold_triggers_a_flush() {
        let config = GroupCommitConfig { max_batch_records: 3, max_batch_bytes: usize::MAX };
        let wal = GroupCommitWal::with_config(MemWal::new(), config);
        wal.append(1, b"a").unwrap();
        wal.append(1, b"b").unwrap();
        assert_eq!(wal.staged_len(), 2);
        wal.append(1, b"c").unwrap();
        assert_eq!(wal.staged_len(), 0, "third append crosses the count threshold");
        assert_eq!(wal.durable_lsn(), Lsn::new(3));
    }

    #[test]
    fn byte_threshold_triggers_a_flush() {
        let config = GroupCommitConfig { max_batch_records: usize::MAX, max_batch_bytes: 64 };
        let wal = GroupCommitWal::with_config(MemWal::new(), config);
        wal.append(1, &[0u8; 10]).unwrap();
        assert_eq!(wal.staged_len(), 1);
        wal.append(1, &[0u8; 40]).unwrap();
        assert_eq!(wal.staged_len(), 0, "second append crosses the byte threshold");
    }

    #[test]
    fn flush_lsn_is_a_selective_barrier() {
        let wal = GroupCommitWal::new(MemWal::new());
        wal.append(1, b"a").unwrap();
        wal.flush_lsn(Lsn::new(1)).unwrap();
        assert_eq!(wal.durable_lsn(), Lsn::new(1));
        // A barrier past the end clamps to the last appended record.
        wal.append(1, b"b").unwrap();
        wal.flush_lsn(Lsn::new(99)).unwrap();
        assert_eq!(wal.durable_lsn(), Lsn::new(2));
        // An already-durable barrier is a no-op.
        wal.flush_lsn(Lsn::new(1)).unwrap();
    }

    #[test]
    fn lsns_match_the_sink_after_flushes() {
        let wal = GroupCommitWal::new(MemWal::new());
        for i in 0..10u32 {
            wal.append(i, &i.to_be_bytes()).unwrap();
            if i % 3 == 0 {
                wal.sync().unwrap();
            }
        }
        wal.sync().unwrap();
        let records = wal.inner().scan(Lsn::new(0)).unwrap();
        assert_eq!(records.len(), 10);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.lsn, Lsn::new(i as u64 + 1), "sink LSNs must match staged LSNs");
            assert_eq!(r.kind, i as u32);
        }
        assert_eq!(wal.next_lsn(), wal.inner().next_lsn());
    }

    #[test]
    fn wrapping_a_nonempty_sink_continues_its_lsns() {
        let sink = MemWal::new();
        sink.append(1, b"pre").unwrap();
        let wal = GroupCommitWal::new(sink);
        assert_eq!(wal.durable_lsn(), Lsn::new(1));
        assert_eq!(wal.append_durable(2, b"post").unwrap(), Lsn::new(2));
        assert_eq!(wal.inner().len(), 2);
    }

    #[test]
    fn a_failed_flush_poisons_the_wal_and_recovery_readopts_the_sink() {
        // The sink crashes on its 3rd append: the staged batch tears.
        let wal = GroupCommitWal::new(CrashingWal::new(MemWal::new(), 2));
        wal.append(1, b"a").unwrap();
        wal.append(1, b"b").unwrap();
        wal.append(1, b"c").unwrap();
        let err = wal.append_durable(1, b"d");
        assert!(matches!(err, Err(LogError::CrashInjected(_))));
        // Poisoned: every subsequent operation reports the crash.
        assert!(matches!(wal.append(1, b"e"), Err(LogError::CrashInjected(_))));
        assert!(matches!(wal.sync(), Err(LogError::CrashInjected(_))));
        // "Restart": the sink survived with the torn prefix; re-adopt it.
        wal.inner().defuse();
        wal.recover_from_sink();
        assert_eq!(wal.durable_lsn(), Lsn::new(2), "two appends reached the sink");
        assert_eq!(wal.append_durable(1, b"f").unwrap(), Lsn::new(3));
        assert_eq!(wal.inner().len(), 3);
    }

    #[test]
    fn a_failed_sync_keeps_acked_records_and_loses_no_acked_lsn() {
        // Writes land, the barrier itself crashes: the torn window between
        // write_all and sync_data.
        let wal = GroupCommitWal::new(CrashingWal::with_sync_crash(MemWal::new(), 1));
        wal.append_durable(1, b"acked").unwrap(); // first sync passes
        wal.append(1, b"staged").unwrap();
        let err = wal.append_durable(1, b"never-acked");
        assert!(matches!(err, Err(LogError::CrashInjected(ref s)) if s == "wal.sync"));
        let acked = wal.durable_lsn();
        assert_eq!(acked, Lsn::new(1));
        // Every acked LSN is present in the sink.
        let survived: Vec<u64> =
            wal.inner().scan(Lsn::new(0)).unwrap().iter().map(|r| r.lsn.raw()).collect();
        assert!(survived.contains(&acked.raw()));
    }

    #[test]
    fn concurrent_durable_appenders_share_flushes() {
        let wal = Arc::new(GroupCommitWal::new(MemWal::new()));
        let tel = telemetry::Telemetry::new();
        wal.set_telemetry(&tel);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let w = Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..50u32 {
                        w.append(t, &i.to_be_bytes()).unwrap();
                        w.append_durable(t, &i.to_be_bytes()).unwrap();
                    }
                });
            }
        });
        wal.sync().unwrap();
        let records = wal.inner().scan(Lsn::new(0)).unwrap();
        assert_eq!(records.len(), 800);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.lsn, Lsn::new(i as u64 + 1), "dense LSNs under concurrency");
        }
        // Group commit must have coalesced at least some barriers: there
        // were 400 append_durable barriers; strictly fewer syncs would
        // prove grouping, but scheduling may serialize them all, so only
        // the upper bound is asserted (the deterministic single-thread
        // grouping proof lives in the telemetry test below).
        let syncs = tel.metrics().counter_value("wal_syncs_total");
        assert!(syncs <= 401, "at most one sync per barrier, got {syncs}");
    }

    #[test]
    fn telemetry_records_sync_count_and_group_size() {
        let wal = GroupCommitWal::new(MemWal::new());
        let tel = telemetry::Telemetry::new();
        wal.set_telemetry(&tel);
        for _ in 0..5 {
            wal.append(1, b"ride-the-batch").unwrap();
        }
        wal.append_durable(2, b"decision").unwrap();
        assert_eq!(tel.metrics().counter_value("wal_syncs_total"), 1);
        assert_eq!(tel.metrics().histogram_count("wal_group_size"), 1);
        assert_eq!(tel.metrics().histogram_count("wal_batch_bytes"), 1);
        let text = tel.metrics().render_prometheus();
        assert!(text.contains("wal_group_size_sum 6"), "one batch of 6 records:\n{text}");
    }
}
