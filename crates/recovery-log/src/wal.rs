//! The write-ahead log interface and its in-memory implementation.

use parking_lot::Mutex;

use crate::error::LogError;
use crate::record::{LogRecord, Lsn};

/// A write-ahead log: append-only, scannable, prefix-truncatable.
///
/// Implementations must assign dense, strictly increasing [`Lsn`]s starting
/// at 1 and must make a record visible to [`Wal::scan`] only once it is
/// durable to the implementation's standard (in-memory logs are "durable" as
/// soon as the append returns; [`crate::FileWal`] after the bytes hit the
/// file).
pub trait Wal: Send + Sync {
    /// Append a record, returning its assigned [`Lsn`].
    ///
    /// # Errors
    ///
    /// Implementations may fail with [`LogError::Io`], [`LogError::Sealed`]
    /// or an injected [`LogError::CrashInjected`].
    fn append(&self, kind: u32, payload: &[u8]) -> Result<Lsn, LogError>;

    /// Append a record and force its durability before returning (the
    /// *forced* write of the 2PC forcing discipline: callers use this for
    /// decision records and plain [`Wal::append`] for records that may ride
    /// a later batch).
    ///
    /// The default is append-then-sync; batching logs override it with a
    /// group-commit barrier covering exactly this record's LSN.
    ///
    /// # Errors
    ///
    /// Propagates append and sync failures.
    fn append_durable(&self, kind: u32, payload: &[u8]) -> Result<Lsn, LogError> {
        let lsn = self.append(kind, payload)?;
        self.sync()?;
        Ok(lsn)
    }

    /// Append several records at once, returning the [`Lsn`] of the *last*
    /// one (records receive dense consecutive LSNs). An empty batch appends
    /// nothing and returns the LSN of the most recent record.
    ///
    /// The default loops [`Wal::append`]; file-backed logs override it with
    /// one coalesced encode + `write_all`. Durability is NOT implied — pair
    /// with [`Wal::sync`] or [`Wal::flush_lsn`].
    ///
    /// # Errors
    ///
    /// Propagates the first append failure; records before it were
    /// appended (the same torn-prefix contract a crash leaves on disk).
    fn append_batch(&self, records: &[(u32, &[u8])]) -> Result<Lsn, LogError> {
        let mut last = Lsn::new(self.next_lsn().raw().saturating_sub(1));
        for (kind, payload) in records {
            last = self.append(*kind, payload)?;
        }
        Ok(last)
    }

    /// Durability barrier: force everything up to and including `lsn`.
    /// A no-op when that prefix is already durable.
    ///
    /// The default syncs the whole log (correct, if coarser than needed);
    /// group-commit logs override it to wait only for the covering batch.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] on sync failure.
    fn flush_lsn(&self, lsn: Lsn) -> Result<(), LogError> {
        let _ = lsn;
        self.sync()
    }

    /// Return every durable record at or after `from`, in LSN order.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] if the log cannot be read. Torn or corrupt
    /// *tails* are not errors: the valid prefix is returned (file logs
    /// truncate the scan at the first bad record).
    fn scan(&self, from: Lsn) -> Result<Vec<LogRecord>, LogError>;

    /// Visit every durable record at or after `from`, in LSN order, without
    /// materialising (or cloning) the record list. Replay paths use this so
    /// recovery is zero-copy over the log's retained records.
    ///
    /// Implementations may hold internal locks across the visits: `visit`
    /// must not call back into the same log.
    ///
    /// # Errors
    ///
    /// Propagates scan failures and the first error `visit` returns.
    fn scan_with(
        &self,
        from: Lsn,
        visit: &mut dyn FnMut(&LogRecord) -> Result<(), LogError>,
    ) -> Result<(), LogError> {
        for record in self.scan(from)? {
            visit(&record)?;
        }
        Ok(())
    }

    /// Drop all records with `lsn < upto` (checkpoint compaction).
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] if the compaction cannot be persisted.
    fn truncate_prefix(&self, upto: Lsn) -> Result<(), LogError>;

    /// Force durability of everything appended so far.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] on sync failure.
    fn sync(&self) -> Result<(), LogError>;

    /// The LSN that the next append will receive.
    fn next_lsn(&self) -> Lsn;

    /// Number of currently retained records.
    fn len(&self) -> usize {
        self.scan(Lsn::new(0)).map(|r| r.len()).unwrap_or(0)
    }

    /// Whether the log retains no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-memory [`Wal`] for tests, benchmarks and volatile deployments.
#[derive(Debug, Default)]
pub struct MemWal {
    inner: Mutex<MemWalInner>,
    appends: Mutex<Option<telemetry::Counter>>,
}

#[derive(Debug, Default)]
struct MemWalInner {
    records: Vec<LogRecord>,
    next: u64,
    sealed: bool,
}

impl MemWal {
    /// An empty in-memory log.
    pub fn new() -> Self {
        MemWal {
            inner: Mutex::new(MemWalInner { records: Vec::new(), next: 1, sealed: false }),
            appends: Mutex::new(None),
        }
    }

    /// Attach a telemetry recorder: every durable append bumps
    /// `wal_appends_total`.
    pub fn set_telemetry(&self, telemetry: &telemetry::Telemetry) {
        *self.appends.lock() = Some(telemetry.metrics().counter("wal_appends_total"));
    }

    /// Seal the log: further appends fail with [`LogError::Sealed`]. Used to
    /// model a "dead" process whose log survives.
    pub fn seal(&self) {
        self.inner.lock().sealed = true;
    }

    /// Reopen a sealed log (the "restarted process" picks the log back up).
    pub fn unseal(&self) {
        self.inner.lock().sealed = false;
    }
}

impl Wal for MemWal {
    fn append(&self, kind: u32, payload: &[u8]) -> Result<Lsn, LogError> {
        let mut inner = self.inner.lock();
        if inner.sealed {
            return Err(LogError::Sealed);
        }
        let lsn = Lsn::new(inner.next);
        inner.next += 1;
        inner.records.push(LogRecord::new(lsn, kind, payload.to_vec()));
        drop(inner);
        if let Some(counter) = &*self.appends.lock() {
            counter.incr();
        }
        Ok(lsn)
    }

    fn append_batch(&self, records: &[(u32, &[u8])]) -> Result<Lsn, LogError> {
        let mut inner = self.inner.lock();
        if inner.sealed {
            return Err(LogError::Sealed);
        }
        for (kind, payload) in records {
            let lsn = Lsn::new(inner.next);
            inner.next += 1;
            inner.records.push(LogRecord::new(lsn, *kind, payload.to_vec()));
        }
        let last = Lsn::new(inner.next - 1);
        drop(inner);
        if !records.is_empty() {
            if let Some(counter) = &*self.appends.lock() {
                counter.add(records.len() as u64);
            }
        }
        Ok(last)
    }

    fn scan(&self, from: Lsn) -> Result<Vec<LogRecord>, LogError> {
        Ok(self
            .inner
            .lock()
            .records
            .iter()
            .filter(|r| r.lsn >= from)
            .cloned()
            .collect())
    }

    fn scan_with(
        &self,
        from: Lsn,
        visit: &mut dyn FnMut(&LogRecord) -> Result<(), LogError>,
    ) -> Result<(), LogError> {
        let inner = self.inner.lock();
        for record in inner.records.iter().filter(|r| r.lsn >= from) {
            visit(record)?;
        }
        Ok(())
    }

    fn truncate_prefix(&self, upto: Lsn) -> Result<(), LogError> {
        self.inner.lock().records.retain(|r| r.lsn >= upto);
        Ok(())
    }

    fn sync(&self) -> Result<(), LogError> {
        Ok(())
    }

    fn next_lsn(&self) -> Lsn {
        Lsn::new(self.inner.lock().next)
    }

    fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    fn is_empty(&self) -> bool {
        self.inner.lock().records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_assign_dense_lsns() {
        let wal = MemWal::new();
        assert!(wal.is_empty());
        assert_eq!(wal.append(1, b"a").unwrap(), Lsn::new(1));
        assert_eq!(wal.append(2, b"b").unwrap(), Lsn::new(2));
        assert_eq!(wal.next_lsn(), Lsn::new(3));
        assert_eq!(wal.len(), 2);
    }

    #[test]
    fn scan_from_midpoint() {
        let wal = MemWal::new();
        for i in 0..5u32 {
            wal.append(i, &[i as u8]).unwrap();
        }
        let tail = wal.scan(Lsn::new(3)).unwrap();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].lsn, Lsn::new(3));
    }

    #[test]
    fn truncate_prefix_drops_old_records() {
        let wal = MemWal::new();
        for i in 0..5u32 {
            wal.append(i, b"x").unwrap();
        }
        wal.truncate_prefix(Lsn::new(4)).unwrap();
        let remaining = wal.scan(Lsn::new(0)).unwrap();
        assert_eq!(remaining.len(), 2);
        assert_eq!(remaining[0].lsn, Lsn::new(4));
        // LSNs keep counting even after truncation.
        assert_eq!(wal.append(9, b"y").unwrap(), Lsn::new(6));
    }

    #[test]
    fn sealed_log_rejects_appends_but_still_scans() {
        let wal = MemWal::new();
        wal.append(1, b"a").unwrap();
        wal.seal();
        assert!(matches!(wal.append(1, b"b"), Err(LogError::Sealed)));
        assert_eq!(wal.scan(Lsn::new(0)).unwrap().len(), 1);
        wal.unseal();
        assert!(wal.append(1, b"b").is_ok());
    }

    #[test]
    fn append_durable_is_append_plus_sync() {
        let wal = MemWal::new();
        assert_eq!(wal.append_durable(1, b"d").unwrap(), Lsn::new(1));
        assert_eq!(wal.len(), 1);
        assert_eq!(wal.scan(Lsn::new(0)).unwrap()[0].payload, b"d");
    }

    #[test]
    fn append_batch_assigns_dense_lsns() {
        let wal = MemWal::new();
        wal.append(9, b"pre").unwrap();
        let last = wal
            .append_batch(&[(1, b"a".as_slice()), (2, b"b".as_slice()), (3, b"c".as_slice())])
            .unwrap();
        assert_eq!(last, Lsn::new(4));
        assert_eq!(wal.next_lsn(), Lsn::new(5));
        let records = wal.scan(Lsn::new(2)).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].kind, 1);
        assert_eq!(records[2].kind, 3);
        // An empty batch appends nothing and reports the last assigned LSN.
        assert_eq!(wal.append_batch(&[]).unwrap(), Lsn::new(4));
        // Sealed logs refuse batches like they refuse appends.
        wal.seal();
        assert!(matches!(wal.append_batch(&[(1, b"x".as_slice())]), Err(LogError::Sealed)));
    }

    #[test]
    fn scan_with_visits_in_order_and_stops_on_error() {
        let wal = MemWal::new();
        for i in 0..5u32 {
            wal.append(i, &[i as u8]).unwrap();
        }
        let mut seen = Vec::new();
        wal.scan_with(Lsn::new(3), &mut |r| {
            seen.push(r.lsn.raw());
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![3, 4, 5]);
        let mut visits = 0;
        let err = wal.scan_with(Lsn::new(0), &mut |_| {
            visits += 1;
            if visits == 2 {
                Err(LogError::Handler("enough".into()))
            } else {
                Ok(())
            }
        });
        assert!(matches!(err, Err(LogError::Handler(_))));
        assert_eq!(visits, 2, "the visitor error must stop the scan");
    }

    #[test]
    fn concurrent_appends_never_lose_records() {
        let wal = std::sync::Arc::new(MemWal::new());
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let w = std::sync::Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..250u32 {
                        w.append(t, &i.to_be_bytes()).unwrap();
                    }
                });
            }
        });
        let records = wal.scan(Lsn::new(0)).unwrap();
        assert_eq!(records.len(), 1000);
        // LSNs are dense and strictly increasing.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.lsn, Lsn::new(i as u64 + 1));
        }
    }
}
