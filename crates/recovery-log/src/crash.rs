//! Deterministic crash injection.
//!
//! Two mechanisms:
//!
//! * [`FailpointSet`] — named failpoints armed to fire after N passages;
//!   protocol code calls [`FailpointSet::hit`] at interesting steps
//!   ("ots.before_commit_record", "activity.after_signal") and gets a
//!   [`LogError::CrashInjected`] back when the armed count is reached. Tests
//!   use this to build crash matrices over every protocol step (§3.4's
//!   recovery requirements).
//! * [`CrashingWal`] — a [`Wal`] decorator that fails after a configured
//!   number of appends (tests that want a *torn* record on disk append
//!   half an encoding to the [`crate::FileWal`]'s file directly).
//!
//! # Failpoint-site audit (the workspace-wide registry)
//!
//! Every [`FailpointSet::hit`] call site in the workspace uses a named
//! constant from its crate's `failpoints` module, and the set itself
//! *observes* every site that passes through it (armed or not), so a
//! simulation harness can discover the arm-able sites of a protocol run
//! instead of hardcoding strings (see [`FailpointSet::observed_sites`]).
//! The full list, audited against the actual call sites by
//! `harness::registry` tests:
//!
//! | site | crate | protocol step |
//! |---|---|---|
//! | `ots.before_prepare`           | `ots` | before phase one solicits any vote |
//! | `ots.after_prepare`            | `ots` | after every vote is collected, before the decision |
//! | `ots.before_decision`          | `ots` | before the commit decision record is forced |
//! | `ots.after_decision`           | `ots` | decision durable, before any phase-two delivery |
//! | `ots.before_completion_record` | `ots` | phase two delivered, before the completion record |
//! | `ots.recovery.after_prepared`  | `ots` | participant forced its prepared record, before the vote returns |
//! | `ots.recovery.before_apply`    | `ots` | outcome known to the participant, before it applies and records it |
//! | `ots.recovery.before_resolve`  | `ots` | before an in-doubt participant interrogates `replay_completion` |
//! | `activity.before_get_signal`   | `activity-service` | before the coordinator asks the set for a signal |
//! | `activity.before_transmit`     | `activity-service` | signal obtained, before fan-out to actions |
//! | `activity.before_outcome`      | `activity-service` | protocol ended, before the collated outcome is read |
//! | `activity.reaper.before_complete` | `activity-service` | orphan selected, before it is completed `FailOnly` |
//!
//! `wal.append` and `wal.sync` are not in the table: they are the synthetic
//! site names [`CrashingWal`] reports for its append-counting and
//! sync-counting crashes and have no `hit` call site to audit.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::error::LogError;
use crate::record::{LogRecord, Lsn};
use crate::wal::Wal;

/// A set of named failpoints shared across components.
///
/// Cloning shares the set.
#[derive(Debug, Clone, Default)]
pub struct FailpointSet {
    // name → remaining passages before firing (0 = fire now).
    armed: Arc<Mutex<HashMap<String, u32>>>,
    // every site name that has ever passed through `hit` — the
    // discoverable registry of arm-able sites for this set's components.
    observed: Arc<Mutex<BTreeSet<String>>>,
    // optional flight-recorder mirror: passages land in the node's black
    // box (kind `failpoint`), fired crashes flagged. Checked via the
    // recorder's own gate before any formatting.
    recorder: Arc<OnceLock<telemetry::FlightRecorder>>,
}

impl FailpointSet {
    /// An empty set; all failpoints disarmed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm `name` to fire on the `after`-th passage (0 = the very next one).
    pub fn arm(&self, name: impl Into<String>, after: u32) {
        self.armed.lock().insert(name.into(), after);
    }

    /// Disarm `name`. Returns whether it was armed.
    pub fn disarm(&self, name: &str) -> bool {
        self.armed.lock().remove(name).is_some()
    }

    /// Disarm everything.
    pub fn clear(&self) {
        self.armed.lock().clear();
    }

    /// Record a passage through failpoint `name`.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::CrashInjected`] when the armed passage count is
    /// reached; the failpoint stays armed at zero so every subsequent hit
    /// also crashes (a dead process stays dead until the test "restarts" it
    /// by disarming).
    pub fn hit(&self, name: &str) -> Result<(), LogError> {
        {
            let mut observed = self.observed.lock();
            if !observed.contains(name) {
                observed.insert(name.to_owned());
            }
        }
        let mut armed = self.armed.lock();
        let outcome = match armed.get_mut(name) {
            None => Ok(()),
            Some(0) => Err(LogError::CrashInjected(name.to_owned())),
            Some(n) => {
                *n -= 1;
                Ok(())
            }
        };
        drop(armed);
        if let Some(recorder) = self.recorder.get() {
            let fired = outcome.is_err();
            recorder.record(telemetry::RecordKind::Failpoint, || {
                if fired {
                    format!("{name} FIRED (crash injected)")
                } else {
                    format!("{name} passed")
                }
            });
        }
        outcome
    }

    /// Mirror every future passage into `recorder` (kind `failpoint`).
    /// Write-once so the hot path reads it with a single atomic load
    /// (no lock even when attached-but-disabled); later calls are ignored.
    pub fn set_recorder(&self, recorder: telemetry::FlightRecorder) {
        let _ = self.recorder.set(recorder);
    }

    /// Whether `name` is currently armed.
    pub fn is_armed(&self, name: &str) -> bool {
        self.armed.lock().contains_key(name)
    }

    /// Every site name that has passed through [`FailpointSet::hit`] on
    /// this (shared) set, sorted. A fault-free probe run of a workload
    /// therefore *discovers* the arm-able sites of every component wired to
    /// the set — the registry a simulation harness sweeps over instead of
    /// hardcoding site strings.
    pub fn observed_sites(&self) -> Vec<String> {
        self.observed.lock().iter().cloned().collect()
    }

    /// Forget the observed-site registry (the armed table is untouched).
    pub fn clear_observed(&self) {
        self.observed.lock().clear();
    }
}

/// A [`Wal`] decorator that injects a crash after a configured number of
/// successful appends, or (with [`CrashingWal::with_sync_crash`]) after a
/// configured number of successful syncs — the "between buffer write and
/// `sync_data`" window a group-commit crash matrix needs to reach.
#[derive(Debug)]
pub struct CrashingWal<W> {
    inner: W,
    remaining: Mutex<Option<u32>>,
    sync_remaining: Mutex<Option<u32>>,
}

impl<W: Wal> CrashingWal<W> {
    /// Wrap `inner`, crashing on the append after `appends_before_crash`
    /// successful ones.
    pub fn new(inner: W, appends_before_crash: u32) -> Self {
        CrashingWal {
            inner,
            remaining: Mutex::new(Some(appends_before_crash)),
            sync_remaining: Mutex::new(None),
        }
    }

    /// Wrap `inner`, crashing on the sync after `syncs_before_crash`
    /// successful ones; appends keep succeeding. Writes reach the inner log
    /// but their durability barrier fails — exactly the torn window between
    /// a group-commit leader's coalesced `write_all` and its `sync_data`.
    pub fn with_sync_crash(inner: W, syncs_before_crash: u32) -> Self {
        CrashingWal {
            inner,
            remaining: Mutex::new(None),
            sync_remaining: Mutex::new(Some(syncs_before_crash)),
        }
    }

    /// Disable any pending crash (the log "survives").
    pub fn defuse(&self) {
        *self.remaining.lock() = None;
        *self.sync_remaining.lock() = None;
    }

    /// Access the wrapped log (e.g. to reopen after the "crash").
    pub fn inner(&self) -> &W {
        &self.inner
    }

    /// Unwrap, returning the inner log.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Wal> Wal for CrashingWal<W> {
    fn append(&self, kind: u32, payload: &[u8]) -> Result<Lsn, LogError> {
        {
            let mut remaining = self.remaining.lock();
            match remaining.as_mut() {
                Some(0) => return Err(LogError::CrashInjected("wal.append".into())),
                Some(n) => *n -= 1,
                None => {}
            }
        }
        self.inner.append(kind, payload)
    }

    fn scan(&self, from: Lsn) -> Result<Vec<LogRecord>, LogError> {
        self.inner.scan(from)
    }

    fn scan_with(
        &self,
        from: Lsn,
        visit: &mut dyn FnMut(&LogRecord) -> Result<(), LogError>,
    ) -> Result<(), LogError> {
        self.inner.scan_with(from, visit)
    }

    fn truncate_prefix(&self, upto: Lsn) -> Result<(), LogError> {
        self.inner.truncate_prefix(upto)
    }

    fn sync(&self) -> Result<(), LogError> {
        {
            let mut remaining = self.sync_remaining.lock();
            match remaining.as_mut() {
                Some(0) => return Err(LogError::CrashInjected("wal.sync".into())),
                Some(n) => *n -= 1,
                None => {}
            }
        }
        self.inner.sync()
    }

    fn next_lsn(&self) -> Lsn {
        self.inner.next_lsn()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::MemWal;

    #[test]
    fn unarmed_failpoints_pass() {
        let fp = FailpointSet::new();
        for _ in 0..100 {
            fp.hit("anything").unwrap();
        }
    }

    #[test]
    fn armed_failpoint_fires_after_n_passages() {
        let fp = FailpointSet::new();
        fp.arm("step", 2);
        fp.hit("step").unwrap();
        fp.hit("step").unwrap();
        assert!(matches!(fp.hit("step"), Err(LogError::CrashInjected(_))));
        // Stays dead.
        assert!(fp.hit("step").is_err());
        assert!(fp.disarm("step"));
        fp.hit("step").unwrap();
    }

    #[test]
    fn clones_share_state() {
        let fp = FailpointSet::new();
        let fp2 = fp.clone();
        fp.arm("x", 0);
        assert!(fp2.is_armed("x"));
        assert!(fp2.hit("x").is_err());
        fp2.clear();
        assert!(fp.hit("x").is_ok());
    }

    #[test]
    fn hits_are_observed_as_discoverable_sites() {
        let fp = FailpointSet::new();
        fp.hit("b.second").unwrap();
        fp.hit("a.first").unwrap();
        fp.hit("b.second").unwrap();
        fp.arm("c.armed-only", 3);
        // Arming alone does not observe: only a real passage registers the
        // site (an armed-but-unreachable name is exactly the orphan the
        // audit test hunts for).
        assert_eq!(fp.observed_sites(), vec!["a.first".to_string(), "b.second".to_string()]);
        // Clones share the registry.
        let fp2 = fp.clone();
        fp2.hit("c.armed-only").unwrap();
        assert_eq!(fp.observed_sites().len(), 3);
        fp.clear_observed();
        assert!(fp2.observed_sites().is_empty());
    }

    #[test]
    fn sync_crash_mode_tears_the_durability_barrier() {
        let wal = CrashingWal::with_sync_crash(MemWal::new(), 1);
        wal.append_durable(1, b"a").unwrap(); // first sync passes
        let err = wal.append_durable(1, b"b"); // second sync crashes
        assert!(matches!(err, Err(LogError::CrashInjected(ref s)) if s == "wal.sync"));
        // The write reached the log even though its barrier failed: the
        // record is present but was never acked durable.
        assert_eq!(wal.len(), 2);
        // Stays dead until defused.
        assert!(wal.sync().is_err());
        wal.defuse();
        wal.append_durable(1, b"c").unwrap();
        assert_eq!(wal.len(), 3);
    }

    #[test]
    fn crashing_wal_counts_appends() {
        let wal = CrashingWal::new(MemWal::new(), 2);
        wal.append(1, b"a").unwrap();
        wal.append(1, b"b").unwrap();
        assert!(matches!(wal.append(1, b"c"), Err(LogError::CrashInjected(_))));
        // The first two records survived the crash.
        assert_eq!(wal.scan(Lsn::new(0)).unwrap().len(), 2);
        wal.defuse();
        wal.append(1, b"c").unwrap();
        assert_eq!(wal.into_inner().scan(Lsn::new(0)).unwrap().len(), 3);
    }
}
