//! Compensation planning and execution — the fig. 2 failure path.

use std::collections::BTreeMap;

use orb::Value;

use crate::error::WorkflowError;
use crate::graph::WorkflowGraph;
use crate::task::{TaskInput, TaskRegistry, TaskResult};

/// One planned compensation: undo `task` by running `compensation`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompensationStep {
    /// The completed task being undone.
    pub task: String,
    /// The registered compensation task to run.
    pub compensation: String,
}

/// Record of one executed compensation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompensationRecord {
    /// The planned step.
    pub step: CompensationStep,
    /// Whether the compensation body reported success.
    pub success: bool,
}

/// Plan which compensations to run after a failure: completed tasks that
/// declare a compensation, newest-first (the reverse-execution rule sagas
/// and fig. 2 share).
pub fn plan(graph: &WorkflowGraph, completed_in_order: &[String]) -> Vec<CompensationStep> {
    completed_in_order
        .iter()
        .rev()
        .filter_map(|task| {
            graph.node(task).and_then(|spec| {
                spec.compensation.as_ref().map(|compensation| CompensationStep {
                    task: task.clone(),
                    compensation: compensation.clone(),
                })
            })
        })
        .collect()
}

/// Execute a compensation plan. Each compensation body receives the
/// workflow parameters and, as its single upstream input, the output the
/// compensated task produced ("it is only application programmers who
/// possess sufficient information about the role of data within the
/// application ... to be able to compensate").
///
/// Compensation failures do not stop the sweep — every step runs, and the
/// records say which succeeded.
///
/// # Errors
///
/// [`WorkflowError::MissingBody`] when a planned compensation has no
/// registered body (detected before anything runs).
pub fn execute(
    plan: &[CompensationStep],
    registry: &TaskRegistry,
    params: &Value,
    outputs: &BTreeMap<String, Value>,
) -> Result<Vec<CompensationRecord>, WorkflowError> {
    execute_traced(plan, registry, params, outputs, None)
}

/// [`execute`], but each step additionally records a `compensate:{task}`
/// span (under the caller's ambient span) and bumps
/// `wf_compensations_total{status=...}` on the given recorder.
///
/// # Errors
///
/// Same as [`execute`].
pub fn execute_traced(
    plan: &[CompensationStep],
    registry: &TaskRegistry,
    params: &Value,
    outputs: &BTreeMap<String, Value>,
    telemetry: Option<&telemetry::Telemetry>,
) -> Result<Vec<CompensationRecord>, WorkflowError> {
    // Validate the whole plan first so a missing body cannot strand a
    // half-compensated workflow.
    for step in plan {
        if registry.body(&step.compensation).is_none() {
            return Err(WorkflowError::MissingBody(step.compensation.clone()));
        }
    }
    let mut records = Vec::with_capacity(plan.len());
    for step in plan {
        let body = registry.body(&step.compensation).expect("validated above");
        let mut upstream = BTreeMap::new();
        if let Some(output) = outputs.get(&step.task) {
            upstream.insert(step.task.clone(), output.clone());
        }
        let input = TaskInput { params: params.clone(), upstream };
        let span = telemetry.map(|t| {
            let span = t.start_span(&format!("compensate:{}", step.task));
            t.set_attr(&span, "compensation", &step.compensation);
            t.set_attr(&span, telemetry::MSC_FROM, "coordinator");
            t.set_attr(
                &span,
                telemetry::MSC_NOTE,
                &format!("compensate {} via {}", step.task, step.compensation),
            );
            span
        });
        let TaskResult { success, .. } = body.execute(&input);
        if let (Some(t), Some(span)) = (telemetry, span.as_ref()) {
            let status = if success { "ok" } else { "failed" };
            t.set_attr(span, "outcome", status);
            t.end(span);
            t.metrics().incr(&format!("wf_compensations_total{{status=\"{status}\"}}"));
        }
        records.push(CompensationRecord { step: step.clone(), success });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn graph_with_compensations() -> WorkflowGraph {
        let mut g = WorkflowGraph::new();
        for t in ["t1", "t2", "t3", "t4"] {
            g.add_task(t).unwrap();
        }
        g.set_compensation("t2", "undo-t2").unwrap();
        g.set_compensation("t3", "undo-t3").unwrap();
        g
    }

    #[test]
    fn plan_is_reverse_order_and_filtered() {
        let g = graph_with_compensations();
        let completed = vec!["t1".to_string(), "t2".to_string(), "t3".to_string()];
        let plan = plan(&g, &completed);
        assert_eq!(
            plan,
            vec![
                CompensationStep { task: "t3".into(), compensation: "undo-t3".into() },
                CompensationStep { task: "t2".into(), compensation: "undo-t2".into() },
            ],
            "t1 has no compensation; order is newest-first"
        );
    }

    #[test]
    fn execute_feeds_each_compensation_its_tasks_output() {
        let g = graph_with_compensations();
        let completed = vec!["t2".to_string()];
        let steps = plan(&g, &completed);

        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let seen2 = Arc::clone(&seen);
        let mut registry = TaskRegistry::new();
        registry.register("undo-t2", move |input: &TaskInput| {
            let original = input.upstream.get("t2").and_then(Value::as_str).unwrap_or("?");
            seen2.lock().push(original.to_owned());
            TaskResult::ok(Value::Null)
        });

        let mut outputs = BTreeMap::new();
        outputs.insert("t2".to_string(), Value::from("booking-42"));
        let records = execute(&steps, &registry, &Value::Null, &outputs).unwrap();
        assert_eq!(records.len(), 1);
        assert!(records[0].success);
        assert_eq!(*seen.lock(), vec!["booking-42"]);
    }

    #[test]
    fn missing_body_aborts_before_running_anything() {
        let g = graph_with_compensations();
        let completed = vec!["t2".to_string(), "t3".to_string()];
        let steps = plan(&g, &completed);
        let ran = Arc::new(Mutex::new(0u32));
        let ran2 = Arc::clone(&ran);
        let mut registry = TaskRegistry::new();
        registry.register("undo-t3", move |_i: &TaskInput| {
            *ran2.lock() += 1;
            TaskResult::ok(Value::Null)
        });
        // undo-t2 missing.
        let err = execute(&steps, &registry, &Value::Null, &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, WorkflowError::MissingBody(name) if name == "undo-t2"));
        assert_eq!(*ran.lock(), 0, "nothing may run when the plan is unexecutable");
    }

    #[test]
    fn failed_compensations_do_not_stop_the_sweep() {
        let g = graph_with_compensations();
        let completed = vec!["t2".to_string(), "t3".to_string()];
        let steps = plan(&g, &completed);
        let mut registry = TaskRegistry::new();
        registry.register("undo-t3", |_i: &TaskInput| TaskResult::failed("stuck"));
        registry.register("undo-t2", |_i: &TaskInput| TaskResult::ok(Value::Null));
        let records = execute(&steps, &registry, &Value::Null, &BTreeMap::new()).unwrap();
        assert_eq!(records.len(), 2);
        assert!(!records[0].success);
        assert!(records[1].success);
    }
}
