//! Task controllers: the OPENflow coordination objects (§4.4).
//!
//! "Associated with each task is a transactional task controller object.
//! The purpose of a task controller is to receive notifications of outputs
//! of other task controllers and use this information to determine when its
//! associated task can be started."

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use activity_service::{ActionError, Outcome, Signal};
use orb::Value;
use parking_lot::Mutex;
use tx_models::common::{SIG_OUTCOME, SIG_OUTCOME_ACK};

use crate::graph::{JoinKind, NodeSpec};

/// Collects dependency outcomes for one task and decides when it may start.
pub struct TaskController {
    task: String,
    dependencies: Vec<String>,
    join: JoinKind,
    received: Mutex<HashMap<String, (bool, Value)>>,
}

impl std::fmt::Debug for TaskController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskController")
            .field("task", &self.task)
            .field("dependencies", &self.dependencies)
            .field("received", &self.received.lock().len())
            .finish()
    }
}

impl TaskController {
    /// A controller for `task` with the given node spec.
    pub fn new(task: impl Into<String>, spec: &NodeSpec) -> Arc<Self> {
        Arc::new(TaskController {
            task: task.into(),
            dependencies: spec.dependencies.clone(),
            join: spec.join,
            received: Mutex::new(HashMap::new()),
        })
    }

    /// The controlled task's name.
    pub fn task(&self) -> &str {
        &self.task
    }

    /// Record a dependency's outcome (idempotent per source: redelivery
    /// keeps the first notification).
    pub fn note_outcome(&self, source: &str, success: bool, output: Value) {
        self.received
            .lock()
            .entry(source.to_owned())
            .or_insert((success, output));
    }

    /// Whether the task may start now.
    pub fn is_ready(&self) -> bool {
        if self.dependencies.is_empty() {
            return true;
        }
        let received = self.received.lock();
        match self.join {
            JoinKind::All => self
                .dependencies
                .iter()
                .all(|d| received.get(d).is_some_and(|(ok, _)| *ok)),
            JoinKind::Any => self
                .dependencies
                .iter()
                .any(|d| received.get(d).is_some_and(|(ok, _)| *ok)),
        }
    }

    /// Whether the task can *never* start (a required dependency failed).
    pub fn is_doomed(&self) -> bool {
        if self.dependencies.is_empty() {
            return false;
        }
        let received = self.received.lock();
        match self.join {
            JoinKind::All => self
                .dependencies
                .iter()
                .any(|d| received.get(d).is_some_and(|(ok, _)| !*ok)),
            JoinKind::Any => {
                self.dependencies.len() == received.len()
                    && received.values().all(|(ok, _)| !*ok)
            }
        }
    }

    /// Successful upstream outputs, keyed by task name.
    pub fn inputs(&self) -> BTreeMap<String, Value> {
        self.received
            .lock()
            .iter()
            .filter(|(_, (ok, _))| *ok)
            .map(|(name, (_, output))| (name.clone(), output.clone()))
            .collect()
    }
}

/// Adapts a controller into an Action registered with ONE dependency's
/// Completed SignalSet: "whenever a child activity is started the parent
/// activity registers an Action with it that is used to deliver the
/// 'outcome' Signal".
pub struct DependencyWatch {
    source: String,
    controller: Arc<TaskController>,
}

impl DependencyWatch {
    /// Watch `source` on behalf of `controller`'s task.
    pub fn new(source: impl Into<String>, controller: Arc<TaskController>) -> Arc<Self> {
        Arc::new(DependencyWatch { source: source.into(), controller })
    }
}

impl activity_service::Action for DependencyWatch {
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        if signal.name() != SIG_OUTCOME {
            return Err(ActionError::new(format!("unexpected signal {:?}", signal.name())));
        }
        let payload = signal
            .data()
            .as_map()
            .ok_or_else(|| ActionError::new("outcome payload must be a map"))?;
        let success = payload.get("success").and_then(Value::as_bool).unwrap_or(false);
        let result = payload.get("result").cloned().unwrap_or(Value::Null);
        self.controller.note_outcome(&self.source, success, result);
        Ok(Outcome::new(SIG_OUTCOME_ACK))
    }

    fn name(&self) -> &str {
        self.controller.task()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(deps: &[&str], join: JoinKind) -> NodeSpec {
        NodeSpec {
            dependencies: deps.iter().map(|d| (*d).to_owned()).collect(),
            join,
            compensation: None,
            retries: 0,
        }
    }

    #[test]
    fn no_dependencies_means_always_ready() {
        let c = TaskController::new("root", &spec(&[], JoinKind::All));
        assert!(c.is_ready());
        assert!(!c.is_doomed());
    }

    #[test]
    fn all_join_waits_for_everyone() {
        let c = TaskController::new("d", &spec(&["b", "c"], JoinKind::All));
        assert!(!c.is_ready());
        c.note_outcome("b", true, Value::from(1i64));
        assert!(!c.is_ready());
        c.note_outcome("c", true, Value::from(2i64));
        assert!(c.is_ready());
        let inputs = c.inputs();
        assert_eq!(inputs["b"].as_i64(), Some(1));
        assert_eq!(inputs["c"].as_i64(), Some(2));
    }

    #[test]
    fn all_join_dooms_on_any_failure() {
        let c = TaskController::new("d", &spec(&["b", "c"], JoinKind::All));
        c.note_outcome("b", false, Value::Null);
        assert!(c.is_doomed());
        assert!(!c.is_ready());
        // Failed outputs are not offered as inputs.
        assert!(c.inputs().is_empty());
    }

    #[test]
    fn any_join_fires_on_first_success() {
        let c = TaskController::new("d", &spec(&["b", "c"], JoinKind::Any));
        c.note_outcome("b", false, Value::Null);
        assert!(!c.is_ready());
        assert!(!c.is_doomed(), "c might still succeed");
        c.note_outcome("c", true, Value::from(5i64));
        assert!(c.is_ready());
    }

    #[test]
    fn any_join_dooms_when_all_fail() {
        let c = TaskController::new("d", &spec(&["b", "c"], JoinKind::Any));
        c.note_outcome("b", false, Value::Null);
        c.note_outcome("c", false, Value::Null);
        assert!(c.is_doomed());
    }

    #[test]
    fn redelivered_notifications_keep_the_first() {
        let c = TaskController::new("d", &spec(&["b"], JoinKind::All));
        c.note_outcome("b", true, Value::from(1i64));
        c.note_outcome("b", false, Value::from(2i64));
        assert!(c.is_ready());
        assert_eq!(c.inputs()["b"].as_i64(), Some(1));
    }

    #[test]
    fn dependency_watch_translates_outcome_signals() {
        use activity_service::Action;
        let c = TaskController::new("d", &spec(&["b"], JoinKind::All));
        let watch = DependencyWatch::new("b", Arc::clone(&c));
        let mut payload = orb::ValueMap::new();
        payload.insert("success".into(), Value::Bool(true));
        payload.insert("result".into(), Value::from("out"));
        let signal = Signal::new(SIG_OUTCOME, "Completed").with_data(Value::Map(payload));
        let ack = watch.process_signal(&signal).unwrap();
        assert_eq!(ack.name(), SIG_OUTCOME_ACK);
        assert!(c.is_ready());
        assert!(watch.process_signal(&Signal::new("bogus", "x")).is_err());
        let malformed = Signal::new(SIG_OUTCOME, "x").with_data(Value::from(1i64));
        assert!(watch.process_signal(&malformed).is_err());
    }
}
