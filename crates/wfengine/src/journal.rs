//! Workflow journalling: resume a half-finished workflow after a crash.
//!
//! OPENflow — the system §4.4's coordination scheme comes from — is a
//! *transactional* workflow system: task controllers are persistent
//! objects, so a workflow survives the failure of the engine driving it.
//! This module supplies that durability: task outcomes are journalled to a
//! [`Wal`] as they happen, and [`WorkflowJournal::replay`] pre-loads a new
//! run's controllers so completed work is not re-executed.

use orb::{Value, ValueMap};
use recovery_log::{Lsn, Wal};
use std::sync::Arc;

use crate::error::WorkflowError;

/// Record kind: a task finished (payload: workflow, task, success, output).
pub const KIND_WF_TASK_DONE: u32 = 0x0501;

/// One journalled task outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalledOutcome {
    /// Task name.
    pub task: String,
    /// Whether the body reported success.
    pub success: bool,
    /// The task's output.
    pub output: Value,
}

/// Append-only journal for one (named) workflow over a shared log.
#[derive(Clone)]
pub struct WorkflowJournal {
    workflow: String,
    wal: Arc<dyn Wal>,
}

impl std::fmt::Debug for WorkflowJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkflowJournal").field("workflow", &self.workflow).finish()
    }
}

impl WorkflowJournal {
    /// A journal for the workflow instance named `workflow`.
    pub fn new(workflow: impl Into<String>, wal: Arc<dyn Wal>) -> Self {
        WorkflowJournal { workflow: workflow.into(), wal }
    }

    /// The journalled workflow's name.
    pub fn workflow(&self) -> &str {
        &self.workflow
    }

    /// Record a task outcome durably.
    ///
    /// # Errors
    ///
    /// [`WorkflowError::Activity`] when the log append fails.
    pub fn record(&self, task: &str, success: bool, output: &Value) -> Result<(), WorkflowError> {
        let mut m = ValueMap::new();
        m.insert("workflow".into(), Value::from(self.workflow.as_str()));
        m.insert("task".into(), Value::from(task));
        m.insert("success".into(), Value::Bool(success));
        m.insert("output".into(), output.clone());
        // One durability barrier per outcome: under a group-commit log
        // concurrent tasks finishing together share a single sync.
        self.wal
            .append_durable(KIND_WF_TASK_DONE, &Value::Map(m).encode())
            .map_err(|e| WorkflowError::Activity(e.to_string()))?;
        Ok(())
    }

    /// Read back every outcome journalled for this workflow, in order.
    /// Re-journalled tasks (at-least-once writes) keep the first entry.
    ///
    /// # Errors
    ///
    /// [`WorkflowError::Activity`] when the log cannot be read or a record
    /// is malformed.
    pub fn replay(&self) -> Result<Vec<JournalledOutcome>, WorkflowError> {
        let mut outcomes: Vec<JournalledOutcome> = Vec::new();
        // Stream records in place: only this workflow's payloads are decoded
        // and nothing is cloned out of the log.
        self.wal
            .scan_with(Lsn::new(0), &mut |record| {
                if record.kind != KIND_WF_TASK_DONE {
                    return Ok(());
                }
                let v = Value::decode(&record.payload)
                    .map_err(|e| recovery_log::LogError::Handler(e.to_string()))?;
                let m = v.as_map().ok_or_else(|| {
                    recovery_log::LogError::Handler("journal record must be a map".into())
                })?;
                if m.get("workflow").and_then(Value::as_str) != Some(self.workflow.as_str()) {
                    return Ok(());
                }
                let task = m.get("task").and_then(Value::as_str).ok_or_else(|| {
                    recovery_log::LogError::Handler("journal record missing task".into())
                })?;
                if outcomes.iter().any(|o| o.task == task) {
                    return Ok(());
                }
                outcomes.push(JournalledOutcome {
                    task: task.to_owned(),
                    success: m.get("success").and_then(Value::as_bool).unwrap_or(false),
                    output: m.get("output").cloned().unwrap_or(Value::Null),
                });
                Ok(())
            })
            .map_err(|e| WorkflowError::Activity(e.to_string()))?;
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recovery_log::MemWal;

    #[test]
    fn record_and_replay_roundtrip() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let journal = WorkflowJournal::new("order-1", Arc::clone(&wal));
        journal.record("a", true, &Value::from(1i64)).unwrap();
        journal.record("b", false, &Value::from("reason")).unwrap();
        let outcomes = journal.replay().unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].task, "a");
        assert!(outcomes[0].success);
        assert_eq!(outcomes[1].output.as_str(), Some("reason"));
    }

    #[test]
    fn journals_are_per_workflow() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let j1 = WorkflowJournal::new("wf-1", Arc::clone(&wal));
        let j2 = WorkflowJournal::new("wf-2", Arc::clone(&wal));
        j1.record("a", true, &Value::Null).unwrap();
        j2.record("b", true, &Value::Null).unwrap();
        assert_eq!(j1.replay().unwrap().len(), 1);
        assert_eq!(j2.replay().unwrap().len(), 1);
        assert_eq!(j2.replay().unwrap()[0].task, "b");
    }

    #[test]
    fn duplicate_records_keep_the_first() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let journal = WorkflowJournal::new("wf", Arc::clone(&wal));
        journal.record("a", true, &Value::from(1i64)).unwrap();
        journal.record("a", false, &Value::from(2i64)).unwrap();
        let outcomes = journal.replay().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].success);
    }
}
