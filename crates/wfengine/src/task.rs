//! Tasks: the executable bodies of workflow nodes.

use std::collections::BTreeMap;
use std::sync::Arc;

use orb::Value;

/// What a task receives when started: the workflow's launch parameters plus
/// each upstream dependency's output (keyed by task name) — the
/// `application_specific_data` of the paper's `start` signal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskInput {
    /// Workflow-wide launch parameters.
    pub params: Value,
    /// Outputs of completed upstream tasks.
    pub upstream: BTreeMap<String, Value>,
}

/// What a task produces — the `application_specific_data` of the paper's
/// `outcome` signal.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskResult {
    /// Whether the task succeeded.
    pub success: bool,
    /// The task's output (available to downstream tasks).
    pub output: Value,
}

impl TaskResult {
    /// A successful result carrying `output`.
    pub fn ok(output: Value) -> Self {
        TaskResult { success: true, output }
    }

    /// A failed result carrying a reason.
    pub fn failed(reason: impl Into<String>) -> Self {
        TaskResult { success: false, output: Value::Str(reason.into()) }
    }
}

/// An executable workflow step.
pub trait Task: Send + Sync {
    /// Run the step. Infallible at the Rust level: domain failures are
    /// expressed through [`TaskResult::success`], which is what drives the
    /// workflow's failure/compensation paths.
    fn execute(&self, input: &TaskInput) -> TaskResult;
}

impl<F> Task for F
where
    F: Fn(&TaskInput) -> TaskResult + Send + Sync,
{
    fn execute(&self, input: &TaskInput) -> TaskResult {
        self(input)
    }
}

/// A registry of task bodies, keyed by the names a
/// [`crate::graph::WorkflowGraph`] or script uses.
#[derive(Clone, Default)]
pub struct TaskRegistry {
    bodies: BTreeMap<String, Arc<dyn Task>>,
}

impl std::fmt::Debug for TaskRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskRegistry").field("tasks", &self.names()).finish()
    }
}

impl TaskRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `body` under `name`, replacing any previous binding.
    pub fn register<T: Task + 'static>(&mut self, name: impl Into<String>, body: T) {
        self.bodies.insert(name.into(), Arc::new(body));
    }

    /// Look up a body.
    pub fn body(&self, name: &str) -> Option<Arc<dyn Task>> {
        self.bodies.get(name).cloned()
    }

    /// Sorted names of registered bodies.
    pub fn names(&self) -> Vec<String> {
        self.bodies.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_tasks() {
        let t = |input: &TaskInput| TaskResult::ok(input.params.clone());
        let result = t.execute(&TaskInput { params: Value::from(3i64), upstream: BTreeMap::new() });
        assert!(result.success);
        assert_eq!(result.output.as_i64(), Some(3));
    }

    #[test]
    fn result_constructors() {
        assert!(TaskResult::ok(Value::Null).success);
        let failed = TaskResult::failed("no capacity");
        assert!(!failed.success);
        assert_eq!(failed.output.as_str(), Some("no capacity"));
    }

    #[test]
    fn registry_lookup() {
        let mut reg = TaskRegistry::new();
        reg.register("a", |_: &TaskInput| TaskResult::ok(Value::Null));
        assert!(reg.body("a").is_some());
        assert!(reg.body("b").is_none());
        assert_eq!(reg.names(), vec!["a"]);
    }
}
