//! Workflow definition graphs: tasks, dependencies, join conditions,
//! compensation bindings.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::error::WorkflowError;

/// When a task with several dependencies becomes ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinKind {
    /// All dependencies must complete successfully.
    #[default]
    All,
    /// Any single successful dependency suffices.
    Any,
}

/// One node of the workflow definition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeSpec {
    /// Names of tasks this one waits for.
    pub dependencies: Vec<String>,
    /// Join condition over the dependencies.
    pub join: JoinKind,
    /// Name of the compensation task to run (in reverse completion order)
    /// when a later task fails — the `tc1` of fig. 2.
    pub compensation: Option<String>,
    /// How many times a failed body is re-executed before the failure
    /// counts (0 = no retries).
    pub retries: u32,
}

/// A validated, acyclic workflow definition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkflowGraph {
    nodes: BTreeMap<String, NodeSpec>,
}

impl WorkflowGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task with no dependencies.
    ///
    /// # Errors
    ///
    /// [`WorkflowError::DuplicateTask`].
    pub fn add_task(&mut self, name: impl Into<String>) -> Result<(), WorkflowError> {
        let name = name.into();
        if self.nodes.contains_key(&name) {
            return Err(WorkflowError::DuplicateTask(name));
        }
        self.nodes.insert(name, NodeSpec::default());
        Ok(())
    }

    /// Declare that `task` waits for `on`.
    ///
    /// # Errors
    ///
    /// [`WorkflowError::UnknownTask`] when either side is undefined.
    pub fn add_dependency(&mut self, task: &str, on: &str) -> Result<(), WorkflowError> {
        if !self.nodes.contains_key(on) {
            return Err(WorkflowError::UnknownTask(on.to_owned()));
        }
        let node = self
            .nodes
            .get_mut(task)
            .ok_or_else(|| WorkflowError::UnknownTask(task.to_owned()))?;
        if !node.dependencies.contains(&on.to_owned()) {
            node.dependencies.push(on.to_owned());
        }
        Ok(())
    }

    /// Set `task`'s join condition.
    ///
    /// # Errors
    ///
    /// [`WorkflowError::UnknownTask`].
    pub fn set_join(&mut self, task: &str, join: JoinKind) -> Result<(), WorkflowError> {
        self.nodes
            .get_mut(task)
            .ok_or_else(|| WorkflowError::UnknownTask(task.to_owned()))?
            .join = join;
        Ok(())
    }

    /// Allow `retries` re-executions of a failing body before the failure
    /// is accepted.
    ///
    /// # Errors
    ///
    /// [`WorkflowError::UnknownTask`].
    pub fn set_retries(&mut self, task: &str, retries: u32) -> Result<(), WorkflowError> {
        self.nodes
            .get_mut(task)
            .ok_or_else(|| WorkflowError::UnknownTask(task.to_owned()))?
            .retries = retries;
        Ok(())
    }

    /// Bind a compensation task (run when a downstream failure requires
    /// undoing `task`).
    ///
    /// # Errors
    ///
    /// [`WorkflowError::UnknownTask`].
    pub fn set_compensation(
        &mut self,
        task: &str,
        compensation: impl Into<String>,
    ) -> Result<(), WorkflowError> {
        self.nodes
            .get_mut(task)
            .ok_or_else(|| WorkflowError::UnknownTask(task.to_owned()))?
            .compensation = Some(compensation.into());
        Ok(())
    }

    /// The node spec for `task`.
    pub fn node(&self, task: &str) -> Option<&NodeSpec> {
        self.nodes.get(task)
    }

    /// All task names, sorted.
    pub fn task_names(&self) -> Vec<String> {
        self.nodes.keys().cloned().collect()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Tasks with no dependencies (the entry points).
    pub fn roots(&self) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|(_, spec)| spec.dependencies.is_empty())
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Tasks that directly depend on `task`.
    pub fn dependents(&self, task: &str) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|(_, spec)| spec.dependencies.iter().any(|d| d == task))
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Validate the graph: every dependency resolves and there is no cycle.
    /// Returns a topological order.
    ///
    /// # Errors
    ///
    /// [`WorkflowError::UnknownTask`] or [`WorkflowError::Cycle`].
    pub fn validate(&self) -> Result<Vec<String>, WorkflowError> {
        // Kahn's algorithm over the (already name-checked) edges.
        let mut in_degree: HashMap<&str, usize> = HashMap::new();
        for (name, spec) in &self.nodes {
            in_degree.entry(name.as_str()).or_insert(0);
            for dep in &spec.dependencies {
                if !self.nodes.contains_key(dep) {
                    return Err(WorkflowError::UnknownTask(dep.clone()));
                }
                *in_degree.entry(name.as_str()).or_insert(0) += 1;
            }
        }
        let mut ready: BTreeSet<&str> = in_degree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(&next) = ready.iter().next() {
            ready.remove(next);
            order.push(next.to_owned());
            for dependent in self.dependents(next) {
                let d = in_degree.get_mut(dependent.as_str()).expect("known node");
                *d -= 1;
                if *d == 0 {
                    let (key, _) = self.nodes.get_key_value(&dependent).expect("known node");
                    ready.insert(key.as_str());
                }
            }
        }
        if order.len() != self.nodes.len() {
            let stuck = self
                .nodes
                .keys()
                .find(|n| !order.contains(n))
                .cloned()
                .unwrap_or_default();
            return Err(WorkflowError::Cycle(stuck));
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> WorkflowGraph {
        // a → (b ∥ c) → d : the fig. 10 shape.
        let mut g = WorkflowGraph::new();
        for t in ["a", "b", "c", "d"] {
            g.add_task(t).unwrap();
        }
        g.add_dependency("b", "a").unwrap();
        g.add_dependency("c", "a").unwrap();
        g.add_dependency("d", "b").unwrap();
        g.add_dependency("d", "c").unwrap();
        g
    }

    #[test]
    fn structure_queries() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.roots(), vec!["a"]);
        let mut deps = g.dependents("a");
        deps.sort();
        assert_eq!(deps, vec!["b", "c"]);
        assert_eq!(g.node("d").unwrap().dependencies, vec!["b", "c"]);
        assert!(g.node("ghost").is_none());
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.validate().unwrap();
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        assert!(pos("a") < pos("b"));
        assert!(pos("a") < pos("c"));
        assert!(pos("b") < pos("d"));
        assert!(pos("c") < pos("d"));
    }

    #[test]
    fn cycles_detected() {
        let mut g = WorkflowGraph::new();
        g.add_task("x").unwrap();
        g.add_task("y").unwrap();
        g.add_dependency("x", "y").unwrap();
        g.add_dependency("y", "x").unwrap();
        assert!(matches!(g.validate(), Err(WorkflowError::Cycle(_))));
        // Self-loop too.
        let mut g = WorkflowGraph::new();
        g.add_task("x").unwrap();
        g.add_dependency("x", "x").unwrap();
        assert!(matches!(g.validate(), Err(WorkflowError::Cycle(_))));
    }

    #[test]
    fn duplicate_and_unknown_tasks_rejected() {
        let mut g = WorkflowGraph::new();
        g.add_task("a").unwrap();
        assert!(matches!(g.add_task("a"), Err(WorkflowError::DuplicateTask(_))));
        assert!(matches!(g.add_dependency("a", "ghost"), Err(WorkflowError::UnknownTask(_))));
        assert!(matches!(g.add_dependency("ghost", "a"), Err(WorkflowError::UnknownTask(_))));
        assert!(matches!(g.set_compensation("ghost", "c"), Err(WorkflowError::UnknownTask(_))));
        assert!(matches!(g.set_join("ghost", JoinKind::Any), Err(WorkflowError::UnknownTask(_))));
    }

    #[test]
    fn compensation_and_join_bindings() {
        let mut g = diamond();
        g.set_compensation("b", "undo-b").unwrap();
        g.set_join("d", JoinKind::Any).unwrap();
        assert_eq!(g.node("b").unwrap().compensation.as_deref(), Some("undo-b"));
        assert_eq!(g.node("d").unwrap().join, JoinKind::Any);
    }

    #[test]
    fn duplicate_dependencies_are_deduplicated() {
        let mut g = diamond();
        g.add_dependency("d", "b").unwrap();
        assert_eq!(g.node("d").unwrap().dependencies, vec!["b", "c"]);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = WorkflowGraph::new();
        assert!(g.is_empty());
        assert!(g.validate().unwrap().is_empty());
    }
}
