//! Error type for workflow definition and execution.

use std::fmt;

/// Errors raised while building, parsing or running a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkflowError {
    /// A task name appears twice in the definition.
    DuplicateTask(String),
    /// A dependency references an undefined task.
    UnknownTask(String),
    /// The dependency graph contains a cycle through this task.
    Cycle(String),
    /// The script failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// No executable body was registered for a defined task.
    MissingBody(String),
    /// The underlying activity machinery failed.
    Activity(String),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::DuplicateTask(name) => write!(f, "duplicate task {name:?}"),
            WorkflowError::UnknownTask(name) => write!(f, "unknown task {name:?}"),
            WorkflowError::Cycle(name) => write!(f, "dependency cycle through {name:?}"),
            WorkflowError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            WorkflowError::MissingBody(name) => {
                write!(f, "no body registered for task {name:?}")
            }
            WorkflowError::Activity(msg) => write!(f, "activity failure: {msg}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

impl From<activity_service::ActivityError> for WorkflowError {
    fn from(e: activity_service::ActivityError) -> Self {
        WorkflowError::Activity(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            WorkflowError::DuplicateTask("a".into()),
            WorkflowError::UnknownTask("a".into()),
            WorkflowError::Cycle("a".into()),
            WorkflowError::Parse { line: 3, message: "bad".into() },
            WorkflowError::MissingBody("a".into()),
            WorkflowError::Activity("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
