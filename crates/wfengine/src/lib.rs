//! An OPENflow-style transactional workflow engine over the Activity
//! Service — the paper's §4.4 and reference \[15\].
//!
//! "Transactional workflow systems with scripting facilities for expressing
//! the composition of an activity (a business process) offer a flexible way
//! of building application specific extended transactions."
//!
//! * [`graph::WorkflowGraph`] — tasks, dependencies, join conditions and
//!   compensation bindings;
//! * [`script`] — the scripting facility (`task hotel after restaurant,
//!   theatre; compensate restaurant with unbook;`);
//! * [`task`] — executable bodies, bound by name in a
//!   [`task::TaskRegistry`];
//! * [`controller::TaskController`] — the OPENflow task-controller objects
//!   that "receive notifications of outputs of other task controllers and
//!   use this information to determine when its associated task can be
//!   started";
//! * [`engine::WorkflowEngine`] — schedules over the Activity Service: one
//!   child activity per task, fig. 10 `outcome` signals to dependents, and
//!   the fig. 2 compensation sweep on failure ([`compensate`]).
//!
//! # Example
//!
//! ```
//! use orb::Value;
//! use wfengine::{script, TaskInput, TaskRegistry, TaskResult, WorkflowEngine};
//! use activity_service::ActivityService;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = script::parse("task quote;\ntask order after quote;")?;
//! let mut registry = TaskRegistry::new();
//! registry.register("quote", |_: &TaskInput| TaskResult::ok(Value::from(99i64)));
//! registry.register("order", |input: &TaskInput| {
//!     TaskResult::ok(input.upstream["quote"].clone())
//! });
//! let engine = WorkflowEngine::new(graph, registry)?;
//! let report = engine.run(&ActivityService::new(), "purchase", Value::Null)?;
//! assert!(report.succeeded());
//! # Ok(())
//! # }
//! ```

pub mod compensate;
pub mod controller;
pub mod engine;
pub mod error;
pub mod graph;
pub mod journal;
pub mod script;
pub mod task;

pub use compensate::{CompensationRecord, CompensationStep};
pub use controller::{DependencyWatch, TaskController};
pub use engine::{FailurePolicy, WorkflowEngine, WorkflowReport};
pub use error::WorkflowError;
pub use graph::{JoinKind, NodeSpec, WorkflowGraph};
pub use journal::{JournalledOutcome, WorkflowJournal};
pub use task::{Task, TaskInput, TaskRegistry, TaskResult};
