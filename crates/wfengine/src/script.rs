//! A small scripting DSL for workflow composition.
//!
//! The paper motivates workflow systems "with scripting facilities for
//! expressing the composition of the activity with compensation"; this is
//! that facility. Grammar (one statement per line, `#` comments):
//!
//! ```text
//! task <name>;
//! task <name> after <dep>[, <dep>...] [any];
//! compensate <name> with <compensation-task>;
//! retry <name> <attempts>;
//! ```
//!
//! # Example
//!
//! ```
//! let graph = wfengine::script::parse(
//!     "task taxi;\n\
//!      task restaurant after taxi;\n\
//!      task theatre after taxi;\n\
//!      task hotel after restaurant, theatre;\n\
//!      compensate restaurant with unbook_restaurant;",
//! )?;
//! assert_eq!(graph.roots(), vec!["taxi"]);
//! # Ok::<(), wfengine::WorkflowError>(())
//! ```

use crate::error::WorkflowError;
use crate::graph::{JoinKind, WorkflowGraph};

/// Parse a workflow script into a validated [`WorkflowGraph`].
///
/// # Errors
///
/// [`WorkflowError::Parse`] with the offending line number, or any graph
/// validation error (duplicates, unknown names, cycles).
pub fn parse(script: &str) -> Result<WorkflowGraph, WorkflowError> {
    let mut graph = WorkflowGraph::new();
    // (line, task, deps, any) resolved after all tasks are declared.
    let mut edges: Vec<(usize, String, Vec<String>, bool)> = Vec::new();
    let mut compensations: Vec<(usize, String, String)> = Vec::new();
    let mut retries: Vec<(usize, String, u32)> = Vec::new();

    for (idx, raw_line) in script.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let statement = line.strip_suffix(';').ok_or_else(|| WorkflowError::Parse {
            line: line_no,
            message: "statement must end with ';'".into(),
        })?;
        let mut words = statement.split_whitespace();
        match words.next() {
            Some("task") => {
                let name = words.next().ok_or_else(|| WorkflowError::Parse {
                    line: line_no,
                    message: "task needs a name".into(),
                })?;
                validate_name(name, line_no)?;
                graph.add_task(name)?;
                let rest: Vec<&str> = words.collect();
                if rest.is_empty() {
                    continue;
                }
                if rest[0] != "after" {
                    return Err(WorkflowError::Parse {
                        line: line_no,
                        message: format!("expected 'after', found {:?}", rest[0]),
                    });
                }
                let mut deps_part = rest[1..].join(" ");
                let any = deps_part.ends_with(" any") || deps_part == "any";
                if any {
                    deps_part = deps_part.trim_end_matches("any").trim().to_owned();
                }
                let deps: Vec<String> = deps_part
                    .split(',')
                    .map(|d| d.trim().to_owned())
                    .filter(|d| !d.is_empty())
                    .collect();
                if deps.is_empty() {
                    return Err(WorkflowError::Parse {
                        line: line_no,
                        message: "'after' needs at least one dependency".into(),
                    });
                }
                for dep in &deps {
                    validate_name(dep, line_no)?;
                }
                edges.push((line_no, name.to_owned(), deps, any));
            }
            Some("compensate") => {
                let task = words.next().ok_or_else(|| WorkflowError::Parse {
                    line: line_no,
                    message: "compensate needs a task name".into(),
                })?;
                match (words.next(), words.next(), words.next()) {
                    (Some("with"), Some(compensation), None) => {
                        validate_name(task, line_no)?;
                        validate_name(compensation, line_no)?;
                        compensations.push((line_no, task.to_owned(), compensation.to_owned()));
                    }
                    _ => {
                        return Err(WorkflowError::Parse {
                            line: line_no,
                            message: "expected 'compensate <task> with <compensation>'".into(),
                        })
                    }
                }
            }
            Some("retry") => {
                let task = words.next().ok_or_else(|| WorkflowError::Parse {
                    line: line_no,
                    message: "retry needs a task name".into(),
                })?;
                let count = words
                    .next()
                    .and_then(|n| n.parse::<u32>().ok())
                    .ok_or_else(|| WorkflowError::Parse {
                        line: line_no,
                        message: "retry needs a numeric attempt count".into(),
                    })?;
                if words.next().is_some() {
                    return Err(WorkflowError::Parse {
                        line: line_no,
                        message: "expected 'retry <task> <attempts>'".into(),
                    });
                }
                validate_name(task, line_no)?;
                retries.push((line_no, task.to_owned(), count));
            }
            Some(other) => {
                return Err(WorkflowError::Parse {
                    line: line_no,
                    message: format!("unknown statement {other:?}"),
                })
            }
            None => unreachable!("blank lines were skipped"),
        }
    }

    for (line, task, deps, any) in edges {
        for dep in deps {
            graph.add_dependency(&task, &dep).map_err(|e| match e {
                WorkflowError::UnknownTask(name) => WorkflowError::Parse {
                    line,
                    message: format!("unknown task {name:?}"),
                },
                other => other,
            })?;
        }
        if any {
            graph.set_join(&task, JoinKind::Any)?;
        }
    }
    for (line, task, count) in retries {
        graph.set_retries(&task, count).map_err(|e| match e {
            WorkflowError::UnknownTask(name) => WorkflowError::Parse {
                line,
                message: format!("unknown task {name:?}"),
            },
            other => other,
        })?;
    }
    for (line, task, compensation) in compensations {
        graph.set_compensation(&task, compensation).map_err(|e| match e {
            WorkflowError::UnknownTask(name) => WorkflowError::Parse {
                line,
                message: format!("unknown task {name:?}"),
            },
            other => other,
        })?;
    }

    graph.validate()?;
    Ok(graph)
}

fn validate_name(name: &str, line: usize) -> Result<(), WorkflowError> {
    let valid = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if valid {
        Ok(())
    } else {
        Err(WorkflowError::Parse { line, message: format!("invalid name {name:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_travel_workflow() {
        let graph = parse(
            "# The fig. 1 booking pipeline
             task taxi;
             task restaurant after taxi;
             task theatre after taxi;
             task hotel after restaurant, theatre;
             compensate restaurant with unbook_restaurant;
             compensate theatre with unbook_theatre;",
        )
        .unwrap();
        assert_eq!(graph.len(), 4);
        assert_eq!(graph.roots(), vec!["taxi"]);
        assert_eq!(graph.node("hotel").unwrap().dependencies, vec!["restaurant", "theatre"]);
        assert_eq!(
            graph.node("restaurant").unwrap().compensation.as_deref(),
            Some("unbook_restaurant")
        );
    }

    #[test]
    fn any_join_parses() {
        let graph = parse(
            "task a;
             task b;
             task c after a, b any;",
        )
        .unwrap();
        assert_eq!(graph.node("c").unwrap().join, JoinKind::Any);
    }

    #[test]
    fn forward_references_are_fine() {
        // Dependencies may name tasks declared later.
        let graph = parse(
            "task second after first;
             task first;",
        )
        .unwrap();
        assert_eq!(graph.roots(), vec!["first"]);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse("task a;\nbanana b;").unwrap_err();
        assert_eq!(err, WorkflowError::Parse { line: 2, message: "unknown statement \"banana\"".into() });

        let err = parse("task a").unwrap_err();
        assert!(matches!(err, WorkflowError::Parse { line: 1, .. }));

        let err = parse("task a;\ntask b after ;").unwrap_err();
        assert!(matches!(err, WorkflowError::Parse { line: 2, .. }));

        let err = parse("task a;\ncompensate a;").unwrap_err();
        assert!(matches!(err, WorkflowError::Parse { line: 2, .. }));

        let err = parse("task b after ghost;\ntask a;").unwrap_err();
        assert!(matches!(err, WorkflowError::Parse { line: 1, .. }));

        let err = parse("task spaced name;").unwrap_err();
        assert!(matches!(err, WorkflowError::Parse { line: 1, .. }));
    }

    #[test]
    fn cycles_rejected_after_parse() {
        let err = parse(
            "task a after b;
             task b after a;",
        )
        .unwrap_err();
        assert!(matches!(err, WorkflowError::Cycle(_)));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let graph = parse("\n# comment only\n\ntask a; # trailing\n").unwrap();
        assert_eq!(graph.len(), 1);
    }
}
