//! The workflow engine: schedules tasks over the Activity Service using the
//! fig. 10 coordination signals, with fig. 2 compensation on failure.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use activity_service::{Activity, ActivityService, CompletionStatus};
use orb::detector::FailureDetector;
use orb::{Value, ValueMap};
use telemetry::Telemetry;
use tx_models::workflow_signals::{CompletedSignalSet, COMPLETED_SET};

use crate::compensate::{self, CompensationRecord};
use crate::controller::{DependencyWatch, TaskController};
use crate::journal::WorkflowJournal;
use crate::error::WorkflowError;
use crate::graph::WorkflowGraph;
use crate::task::{TaskInput, TaskRegistry, TaskResult};

/// What the engine does when a task fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Stop scheduling and compensate every completed task that declares a
    /// compensation (fig. 2's tc1), newest first.
    #[default]
    CompensateAndStop,
    /// Keep scheduling whatever remains startable (failed dependencies doom
    /// their All-join dependents); no automatic compensation.
    ContinuePossible,
}

/// Run a body, re-executing on failure up to `retries` extra times.
/// Returns the final result and how many attempts were made.
fn execute_with_retries(
    body: &dyn crate::task::Task,
    input: &TaskInput,
    retries: u32,
) -> (TaskResult, u32) {
    let mut attempts = 1;
    let mut result = body.execute(input);
    for _ in 0..retries {
        if result.success {
            break;
        }
        attempts += 1;
        result = body.execute(input);
    }
    (result, attempts)
}

/// Result of one workflow run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowReport {
    /// Tasks that completed successfully, in completion order.
    pub completed: Vec<String>,
    /// Their outputs.
    pub outputs: BTreeMap<String, Value>,
    /// Tasks whose bodies reported failure.
    pub failed: Vec<String>,
    /// Tasks that never became startable.
    pub skipped: Vec<String>,
    /// Compensations executed (CompensateAndStop only).
    pub compensations: Vec<CompensationRecord>,
}

impl WorkflowReport {
    /// Whether every task completed successfully.
    pub fn succeeded(&self) -> bool {
        self.failed.is_empty() && self.skipped.is_empty()
    }
}

/// Executes a [`WorkflowGraph`] whose node names are bound to bodies in a
/// [`TaskRegistry`].
pub struct WorkflowEngine {
    graph: WorkflowGraph,
    registry: TaskRegistry,
    policy: FailurePolicy,
    detector: Option<FailureDetector>,
    telemetry: Option<Telemetry>,
}

impl std::fmt::Debug for WorkflowEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkflowEngine")
            .field("tasks", &self.graph.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl WorkflowEngine {
    /// Build an engine, validating the graph (acyclic, resolvable) and that
    /// every task *and declared compensation* has a registered body.
    ///
    /// # Errors
    ///
    /// [`WorkflowError::Cycle`] / [`WorkflowError::UnknownTask`] from graph
    /// validation; [`WorkflowError::MissingBody`] for unbound names.
    pub fn new(graph: WorkflowGraph, registry: TaskRegistry) -> Result<Self, WorkflowError> {
        graph.validate()?;
        for task in graph.task_names() {
            if registry.body(&task).is_none() {
                return Err(WorkflowError::MissingBody(task));
            }
            if let Some(compensation) = &graph.node(&task).expect("listed").compensation {
                if registry.body(compensation).is_none() {
                    return Err(WorkflowError::MissingBody(compensation.clone()));
                }
            }
        }
        Ok(WorkflowEngine {
            graph,
            registry,
            policy: FailurePolicy::default(),
            detector: None,
            telemetry: None,
        })
    }

    /// Override the failure policy.
    #[must_use]
    pub fn with_policy(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attach a participant [`FailureDetector`] keyed by task name. A ready
    /// task whose participant is quarantined is *not* executed: it fails
    /// immediately, so [`FailurePolicy::CompensateAndStop`] compensates the
    /// completed prefix right away and [`FailurePolicy::ContinuePossible`]
    /// reroutes around it (Any-joins fall through to healthy alternatives)
    /// instead of burning the task's full retry budget on a dead
    /// participant. Executed results feed the detector back.
    #[must_use]
    pub fn with_detector(mut self, detector: FailureDetector) -> Self {
        self.detector = Some(detector);
        self
    }

    /// Attach a telemetry recorder: each run opens a `workflow:{name}` span,
    /// each finished task a `task:{name}` child (tagged with its attempt
    /// count and outcome), and each compensation a `compensate:{task}` child.
    /// Give the [`ActivityService`] the same recorder and the activity spans
    /// interleave into the same tree.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The engine's graph.
    pub fn graph(&self) -> &WorkflowGraph {
        &self.graph
    }

    /// Run the workflow single-threaded (deterministic scheduling: ready
    /// tasks run in name order).
    ///
    /// # Errors
    ///
    /// Activity-machinery failures only; task failures land in the report.
    pub fn run(
        &self,
        service: &ActivityService,
        name: &str,
        params: Value,
    ) -> Result<WorkflowReport, WorkflowError> {
        self.run_inner(service, name, params, false, None)
    }

    /// Run with a durable journal: every task outcome is logged before the
    /// workflow proceeds, and a crashed run resumed with the SAME journal
    /// skips already-completed tasks (their journalled outputs feed the
    /// dependents). Compensation sweeps are not journalled — a resume after
    /// a failure re-plans them from the journalled completions.
    ///
    /// # Errors
    ///
    /// Same as [`WorkflowEngine::run`], plus journal I/O failures.
    pub fn run_journaled(
        &self,
        service: &ActivityService,
        name: &str,
        params: Value,
        journal: &WorkflowJournal,
    ) -> Result<WorkflowReport, WorkflowError> {
        self.run_inner(service, name, params, false, Some(journal))
    }

    /// Like [`WorkflowEngine::run`] but executes each ready batch of task
    /// bodies on concurrent threads (batch-synchronous parallelism); all
    /// activity machinery stays on the calling thread.
    ///
    /// # Errors
    ///
    /// Same as [`WorkflowEngine::run`].
    pub fn run_parallel(
        &self,
        service: &ActivityService,
        name: &str,
        params: Value,
    ) -> Result<WorkflowReport, WorkflowError> {
        self.run_inner(service, name, params, true, None)
    }

    fn run_inner(
        &self,
        service: &ActivityService,
        name: &str,
        params: Value,
        parallel: bool,
        journal: Option<&WorkflowJournal>,
    ) -> Result<WorkflowReport, WorkflowError> {
        // The `workflow:{name}` span wraps the whole run so every exit path
        // (including activity-machinery errors) closes it.
        let scope = self.telemetry.as_ref().filter(|t| t.is_enabled()).map(|t| {
            let span = t.start_span(&format!("workflow:{name}"));
            t.set_attr(&span, "tasks", &self.graph.len().to_string());
            t.enter(span);
            (t, span)
        });
        let result = self.run_exec(service, name, params, parallel, journal);
        if let Some((t, span)) = scope {
            match &result {
                Ok(report) => {
                    t.set_attr(&span, "completed", &report.completed.len().to_string());
                    t.set_attr(&span, "failed", &report.failed.len().to_string());
                    let outcome = if report.succeeded() { "success" } else { "failed" };
                    t.set_attr(&span, "outcome", outcome);
                }
                Err(e) => t.set_attr(&span, "error", &e.to_string()),
            }
            t.exit();
            t.end(&span);
        }
        result
    }

    fn run_exec(
        &self,
        service: &ActivityService,
        name: &str,
        params: Value,
        parallel: bool,
        journal: Option<&WorkflowJournal>,
    ) -> Result<WorkflowReport, WorkflowError> {
        let tel = self.telemetry.as_ref().filter(|t| t.is_enabled());
        let workflow = service.begin(name)?;
        let mut controllers: BTreeMap<String, Arc<TaskController>> = BTreeMap::new();
        for task in self.graph.task_names() {
            let spec = self.graph.node(&task).expect("listed");
            controllers.insert(task.clone(), TaskController::new(task, spec));
        }

        let mut pending: BTreeSet<String> = self.graph.task_names().into_iter().collect();
        let mut report = WorkflowReport {
            completed: Vec::new(),
            outputs: BTreeMap::new(),
            failed: Vec::new(),
            skipped: Vec::new(),
            compensations: Vec::new(),
        };

        // Resume: journalled outcomes count as already executed — feed the
        // dependents' controllers and skip re-execution.
        let mut prior_failure = false;
        if let Some(journal) = journal {
            for outcome in journal.replay()? {
                if !pending.remove(&outcome.task) {
                    continue; // stale entry for a task no longer defined
                }
                for dependent in self.graph.dependents(&outcome.task) {
                    controllers[&dependent].note_outcome(
                        &outcome.task,
                        outcome.success,
                        outcome.output.clone(),
                    );
                }
                if outcome.success {
                    report.outputs.insert(outcome.task.clone(), outcome.output);
                    report.completed.push(outcome.task);
                } else {
                    report.failed.push(outcome.task);
                    prior_failure = true;
                }
            }
        }

        'schedule: loop {
            if prior_failure && self.policy == FailurePolicy::CompensateAndStop {
                break;
            }
            let ready: Vec<String> = pending
                .iter()
                .filter(|t| controllers[*t].is_ready())
                .cloned()
                .collect();
            if ready.is_empty() {
                break;
            }
            for task in &ready {
                pending.remove(task);
            }

            // Quarantined participants fail fast instead of executing: the
            // detector has given up on them for now, so the policy reroutes
            // (ContinuePossible) or compensates (CompensateAndStop) without
            // burning their retry budgets. Skip decisions are computed once
            // per task (`should_skip` claims half-open probe slots).
            let (ready, quarantined): (Vec<String>, Vec<String>) = match &self.detector {
                Some(detector) => ready.into_iter().partition(|t| !detector.should_skip(t)),
                None => (ready, Vec::new()),
            };

            // Execute the batch's bodies (concurrently when asked); the
            // signalling below stays on this thread.
            let mut results: Vec<(String, TaskResult, u32)> = if parallel && ready.len() > 1 {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = ready
                        .iter()
                        .map(|task| {
                            let body = self.registry.body(task).expect("validated");
                            let retries = self.graph.node(task).expect("listed").retries;
                            let input = TaskInput {
                                params: params.clone(),
                                upstream: controllers[task].inputs(),
                            };
                            let task = task.clone();
                            scope.spawn(move || {
                                let (result, attempts) =
                                    execute_with_retries(&*body, &input, retries);
                                (task, result, attempts)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("task body panicked")).collect()
                })
            } else {
                ready
                    .iter()
                    .map(|task| {
                        let body = self.registry.body(task).expect("validated");
                        let retries = self.graph.node(task).expect("listed").retries;
                        let input = TaskInput {
                            params: params.clone(),
                            upstream: controllers[task].inputs(),
                        };
                        let (result, attempts) = execute_with_retries(&*body, &input, retries);
                        (task.clone(), result, attempts)
                    })
                    .collect()
            };

            // Feed the detector from *executed* results only, then append
            // the quarantine failures (after the executed batch, so its
            // successes still reach the journal and report before a
            // CompensateAndStop break).
            if let Some(detector) = &self.detector {
                for (task, result, _) in &results {
                    if result.success {
                        detector.record_success(task);
                    } else {
                        detector.record_failure(task);
                    }
                }
            }
            results.extend(quarantined.into_iter().map(|task| {
                let result = TaskResult::failed(format!("participant {task} quarantined"));
                (task, result, 0)
            }));

            for (task, result, attempts) in results {
                // The `task:{name}` span covers journaling plus the fig. 10
                // outcome exchange (the Completed child activity itself
                // parents under the workflow activity, per fig. 4).
                let status = if result.success { "ok" } else { "failed" };
                let task_scope = tel.map(|t| {
                    let span = t.start_span(&format!("task:{task}"));
                    t.set_attr(&span, "attempts", &attempts.to_string());
                    t.set_attr(&span, "outcome", status);
                    t.enter(span);
                    (t, span)
                });
                let notified = (|| {
                    if let Some(journal) = journal {
                        journal.record(&task, result.success, &result.output)?;
                    }
                    self.notify_completion(&workflow, &task, &result, &controllers)
                })();
                if let Some((t, span)) = task_scope {
                    if let Err(e) = &notified {
                        t.set_attr(&span, "error", &e.to_string());
                    }
                    t.exit();
                    t.end(&span);
                    t.metrics().incr(&format!("wf_tasks_total{{status=\"{status}\"}}"));
                    t.metrics().add("wf_task_attempts_total", u64::from(attempts));
                }
                notified?;
                if result.success {
                    report.outputs.insert(task.clone(), result.output);
                    report.completed.push(task);
                } else {
                    report.failed.push(task);
                    if self.policy == FailurePolicy::CompensateAndStop {
                        break 'schedule;
                    }
                }
            }

            // Doomed tasks (a required dependency failed) are skipped.
            let doomed: Vec<String> = pending
                .iter()
                .filter(|t| controllers[*t].is_doomed())
                .cloned()
                .collect();
            for task in doomed {
                pending.remove(&task);
                report.skipped.push(task);
            }
        }

        report.skipped.extend(pending);
        report.skipped.sort();

        if !report.failed.is_empty() && self.policy == FailurePolicy::CompensateAndStop {
            let plan = compensate::plan(&self.graph, &report.completed);
            let comp_scope = tel.map(|t| {
                let span = t.start_span("compensation");
                t.set_attr(&span, "planned", &plan.len().to_string());
                t.enter(span);
                (t, span)
            });
            let executed =
                compensate::execute_traced(&plan, &self.registry, &params, &report.outputs, tel);
            if let Some((t, span)) = comp_scope {
                if let Err(e) = &executed {
                    t.set_attr(&span, "error", &e.to_string());
                }
                t.exit();
                t.end(&span);
            }
            report.compensations = executed?;
        }

        if report.failed.is_empty() {
            service.complete()?;
        } else {
            service.complete_with_status(CompletionStatus::FailOnly)?;
        }
        Ok(report)
    }

    /// Drive the fig. 10 outcome exchange for one finished task: a child
    /// activity whose Completed SignalSet notifies every dependent's
    /// controller.
    fn notify_completion(
        &self,
        workflow: &Activity,
        task: &str,
        result: &TaskResult,
        controllers: &BTreeMap<String, Arc<TaskController>>,
    ) -> Result<(), WorkflowError> {
        let child = workflow.begin_child(task)?;
        if let Some(t) = self.telemetry.as_ref().filter(|t| t.is_enabled()) {
            // The Completed dispatch then shows up as a `signal_set:` span
            // (with its `transmit:` fan-out) under the ambient task span.
            child.coordinator().set_telemetry(t.clone());
        }
        let mut payload = ValueMap::new();
        payload.insert("task".into(), Value::from(task));
        child
            .coordinator()
            .add_signal_set(Box::new(CompletedSignalSet::new(result.output.clone())))?;
        child.set_completion_signal_set(COMPLETED_SET);
        for dependent in self.graph.dependents(task) {
            let controller = Arc::clone(&controllers[&dependent]);
            child
                .coordinator()
                .register_action(COMPLETED_SET, DependencyWatch::new(task, controller) as _);
        }
        let status = if result.success {
            CompletionStatus::Success
        } else {
            CompletionStatus::FailOnly
        };
        child.complete_with_status(status)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::JoinKind;
    use crate::script;
    use parking_lot::Mutex;

    fn diamond_graph() -> WorkflowGraph {
        script::parse(
            "task a;
             task b after a;
             task c after a;
             task d after b, c;",
        )
        .unwrap()
    }

    fn recording_registry(
        names: &[&str],
        log: &Arc<Mutex<Vec<String>>>,
    ) -> TaskRegistry {
        let mut registry = TaskRegistry::new();
        for name in names {
            let log = Arc::clone(log);
            let name_owned = (*name).to_owned();
            registry.register(*name, move |_i: &TaskInput| {
                log.lock().push(name_owned.clone());
                TaskResult::ok(Value::from(name_owned.as_str()))
            });
        }
        registry
    }

    #[test]
    fn diamond_runs_in_dependency_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let registry = recording_registry(&["a", "b", "c", "d"], &log);
        let engine = WorkflowEngine::new(diamond_graph(), registry).unwrap();
        let service = ActivityService::new();
        let report = engine.run(&service, "diamond", Value::Null).unwrap();
        assert!(report.succeeded());
        assert_eq!(report.completed, vec!["a", "b", "c", "d"]);
        let order = log.lock().clone();
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        assert!(pos("a") < pos("b") && pos("a") < pos("c") && pos("b") < pos("d"));
    }

    #[test]
    fn parallel_run_matches_sequential_results() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let registry = recording_registry(&["a", "b", "c", "d"], &log);
        let engine = WorkflowEngine::new(diamond_graph(), registry).unwrap();
        let service = ActivityService::new();
        let report = engine.run_parallel(&service, "diamond", Value::Null).unwrap();
        assert!(report.succeeded());
        assert_eq!(report.outputs.len(), 4);
    }

    #[test]
    fn upstream_outputs_flow_downstream() {
        let graph = script::parse("task price;\ntask invoice after price;").unwrap();
        let mut registry = TaskRegistry::new();
        registry.register("price", |_i: &TaskInput| TaskResult::ok(Value::from(42i64)));
        registry.register("invoice", |input: &TaskInput| {
            let price = input.upstream.get("price").and_then(Value::as_i64).unwrap();
            TaskResult::ok(Value::from(price * 2))
        });
        let engine = WorkflowEngine::new(graph, registry).unwrap();
        let service = ActivityService::new();
        let report = engine.run(&service, "billing", Value::Null).unwrap();
        assert_eq!(report.outputs["invoice"].as_i64(), Some(84));
    }

    #[test]
    fn fig2_failure_compensates_completed_tasks_in_reverse() {
        // t1 → t2 → t3 → t4; t4 fails; tc compensates t2 and t3 newest-first.
        let graph = script::parse(
            "task t1;
             task t2 after t1;
             task t3 after t2;
             task t4 after t3;
             compensate t2 with undo_t2;
             compensate t3 with undo_t3;",
        )
        .unwrap();
        let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let mut registry = recording_registry(&["t1", "t2", "t3"], &log);
        registry.register("t4", |_i: &TaskInput| TaskResult::failed("hotel full"));
        for undo in ["undo_t2", "undo_t3"] {
            let log = Arc::clone(&log);
            let undo_owned = undo.to_owned();
            registry.register(undo, move |_i: &TaskInput| {
                log.lock().push(undo_owned.clone());
                TaskResult::ok(Value::Null)
            });
        }
        let engine = WorkflowEngine::new(graph, registry).unwrap();
        let service = ActivityService::new();
        let report = engine.run(&service, "trip", Value::Null).unwrap();
        assert_eq!(report.failed, vec!["t4"]);
        assert_eq!(report.completed, vec!["t1", "t2", "t3"]);
        assert_eq!(report.compensations.len(), 2);
        assert_eq!(report.compensations[0].step.task, "t3");
        assert_eq!(report.compensations[1].step.task, "t2");
        assert_eq!(
            *log.lock(),
            vec!["t1", "t2", "t3", "undo_t3", "undo_t2"],
            "compensation is newest-first after the forward path"
        );
        assert!(!report.succeeded());
    }

    #[test]
    fn quarantined_task_fails_fast_and_compensates_the_completed_prefix() {
        use orb::detector::{DetectorConfig, FailureDetector};
        use orb::SimClock;

        let graph = script::parse(
            "task t1;
             task t2 after t1;
             compensate t1 with undo_t1;",
        )
        .unwrap();
        let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let mut registry = recording_registry(&["t1", "t2"], &log);
        {
            let log = Arc::clone(&log);
            registry.register("undo_t1", move |_i: &TaskInput| {
                log.lock().push("undo_t1".into());
                TaskResult::ok(Value::Null)
            });
        }
        let detector = FailureDetector::with_config(
            SimClock::new(),
            DetectorConfig {
                suspect_after: 1,
                quarantine_after: 2,
                probe_interval: std::time::Duration::from_secs(1),
            },
        );
        detector.record_failure("t2");
        detector.record_failure("t2");
        let engine = WorkflowEngine::new(graph, registry).unwrap().with_detector(detector);
        let service = ActivityService::new();
        let report = engine.run(&service, "trip", Value::Null).unwrap();
        assert_eq!(report.failed, vec!["t2"]);
        assert_eq!(report.compensations.len(), 1);
        assert_eq!(
            *log.lock(),
            vec!["t1", "undo_t1"],
            "t2's body never executed; t1 compensated immediately"
        );
    }

    #[test]
    fn detector_reroutes_around_a_quarantined_branch_under_continue_policy() {
        use orb::detector::{DetectorConfig, FailureDetector};
        use orb::SimClock;

        let graph = script::parse(
            "task a;
             task bad after a;
             task ok after a;
             task tail after ok;",
        )
        .unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        let registry = recording_registry(&["a", "bad", "ok", "tail"], &log);
        let detector = FailureDetector::with_config(
            SimClock::new(),
            DetectorConfig {
                suspect_after: 1,
                quarantine_after: 1,
                probe_interval: std::time::Duration::from_secs(1),
            },
        );
        detector.record_failure("bad");
        let engine = WorkflowEngine::new(graph, registry)
            .unwrap()
            .with_policy(FailurePolicy::ContinuePossible)
            .with_detector(detector.clone());
        let service = ActivityService::new();
        let report = engine.run(&service, "route", Value::Null).unwrap();
        assert_eq!(report.failed, vec!["bad"]);
        assert_eq!(report.completed, vec!["a", "ok", "tail"], "healthy branch still ran");
        assert!(!log.lock().contains(&"bad".to_owned()), "quarantined body not executed");
        // Executed successes rehabilitate their participants.
        assert_eq!(detector.suspicion("a"), 0);
    }

    #[test]
    fn continue_policy_skips_doomed_branches_only() {
        //      a
        //    /   \
        //  bad    ok
        //   |      |
        // child   tail
        let graph = script::parse(
            "task a;
             task bad after a;
             task ok after a;
             task child after bad;
             task tail after ok;",
        )
        .unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut registry = recording_registry(&["a", "ok", "tail", "child"], &log);
        registry.register("bad", |_i: &TaskInput| TaskResult::failed("nope"));
        let engine = WorkflowEngine::new(graph, registry)
            .unwrap()
            .with_policy(FailurePolicy::ContinuePossible);
        let service = ActivityService::new();
        let report = engine.run(&service, "partial", Value::Null).unwrap();
        assert_eq!(report.failed, vec!["bad"]);
        assert_eq!(report.skipped, vec!["child"]);
        assert!(report.completed.contains(&"tail".to_string()));
        assert!(report.compensations.is_empty());
    }

    #[test]
    fn any_join_proceeds_past_a_failed_alternative() {
        let mut graph = script::parse(
            "task theatre;
             task cinema;
             task dinner after theatre, cinema any;",
        )
        .unwrap();
        graph.set_join("dinner", JoinKind::Any).unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut registry = recording_registry(&["cinema", "dinner"], &log);
        registry.register("theatre", |_i: &TaskInput| TaskResult::failed("sold out"));
        let engine = WorkflowEngine::new(graph, registry)
            .unwrap()
            .with_policy(FailurePolicy::ContinuePossible);
        let service = ActivityService::new();
        let report = engine.run(&service, "evening", Value::Null).unwrap();
        assert!(report.completed.contains(&"dinner".to_string()));
        assert_eq!(report.failed, vec!["theatre"]);
    }

    #[test]
    fn missing_bodies_rejected_eagerly() {
        let graph = script::parse("task a;\ncompensate a with undo_a;").unwrap();
        let mut registry = TaskRegistry::new();
        registry.register("a", |_i: &TaskInput| TaskResult::ok(Value::Null));
        // undo_a unbound.
        assert!(matches!(
            WorkflowEngine::new(graph, registry),
            Err(WorkflowError::MissingBody(name)) if name == "undo_a"
        ));

        let graph = script::parse("task a;").unwrap();
        assert!(matches!(
            WorkflowEngine::new(graph, TaskRegistry::new()),
            Err(WorkflowError::MissingBody(_))
        ));
    }

    #[test]
    fn empty_workflow_succeeds_trivially() {
        let engine = WorkflowEngine::new(WorkflowGraph::new(), TaskRegistry::new()).unwrap();
        let service = ActivityService::new();
        let report = engine.run(&service, "empty", Value::Null).unwrap();
        assert!(report.succeeded());
        assert!(report.completed.is_empty());
    }

    #[test]
    fn workflow_activity_tree_mirrors_execution() {
        let graph = script::parse("task a;\ntask b after a;").unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        let registry = recording_registry(&["a", "b"], &log);
        let engine = WorkflowEngine::new(graph, registry).unwrap();
        let service = ActivityService::new();
        engine.run(&service, "wf", Value::Null).unwrap();
        let roots = service.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name(), "wf");
        let child_names: Vec<String> =
            roots[0].children().iter().map(|c| c.name().to_owned()).collect();
        assert_eq!(child_names, vec!["a", "b"]);
    }
}

#[cfg(test)]
mod retry_tests {
    use super::*;
    use crate::script;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn flaky_task_recovers_within_its_retry_budget() {
        let graph = script::parse(
            "task flaky;
             retry flaky 3;",
        )
        .unwrap();
        let attempts = Arc::new(Mutex::new(0u32));
        let attempts2 = Arc::clone(&attempts);
        let mut registry = TaskRegistry::new();
        registry.register("flaky", move |_i: &TaskInput| {
            let mut a = attempts2.lock();
            *a += 1;
            if *a < 3 {
                TaskResult::failed("transient")
            } else {
                TaskResult::ok(Value::Null)
            }
        });
        let engine = WorkflowEngine::new(graph, registry).unwrap();
        let service = ActivityService::new();
        let report = engine.run(&service, "retry-wf", Value::Null).unwrap();
        assert!(report.succeeded());
        assert_eq!(*attempts.lock(), 3, "two retries after the first failure");
    }

    #[test]
    fn exhausted_retries_still_fail() {
        let graph = script::parse(
            "task hopeless;
             retry hopeless 2;",
        )
        .unwrap();
        let attempts = Arc::new(Mutex::new(0u32));
        let attempts2 = Arc::clone(&attempts);
        let mut registry = TaskRegistry::new();
        registry.register("hopeless", move |_i: &TaskInput| {
            *attempts2.lock() += 1;
            TaskResult::failed("permanent")
        });
        let engine = WorkflowEngine::new(graph, registry).unwrap();
        let service = ActivityService::new();
        let report = engine.run(&service, "retry-wf", Value::Null).unwrap();
        assert_eq!(report.failed, vec!["hopeless"]);
        assert_eq!(*attempts.lock(), 3, "initial attempt + 2 retries");
    }

    #[test]
    fn retry_statement_parse_errors() {
        assert!(script::parse("task a;\nretry a;").is_err());
        assert!(script::parse("task a;\nretry a lots;").is_err());
        assert!(script::parse("task a;\nretry a 2 extra;").is_err());
        assert!(script::parse("retry ghost 2;\ntask a;").is_err());
        let graph = script::parse("task a;\nretry a 4;").unwrap();
        assert_eq!(graph.node("a").unwrap().retries, 4);
    }
}

#[cfg(test)]
mod journal_tests {
    use super::*;
    use crate::journal::WorkflowJournal;
    use crate::script;
    use parking_lot::Mutex;
    use recovery_log::{MemWal, Wal};
    use std::sync::Arc;

    /// A registry whose `crash_at` task panics the first time (simulating a
    /// dying engine) and works thereafter.
    fn crashy_registry(
        executed: &Arc<Mutex<Vec<String>>>,
        crash_armed: &Arc<Mutex<bool>>,
    ) -> TaskRegistry {
        let mut registry = TaskRegistry::new();
        for name in ["extract", "transform", "load"] {
            let executed = Arc::clone(executed);
            let crash_armed = Arc::clone(crash_armed);
            let name_owned = name.to_owned();
            registry.register(name, move |input: &TaskInput| {
                if name_owned == "transform" && *crash_armed.lock() {
                    // The "crash": engine thread dies mid-workflow.
                    panic!("engine crash injected");
                }
                executed.lock().push(name_owned.clone());
                let upstream_sum: i64 = input
                    .upstream
                    .values()
                    .filter_map(Value::as_i64)
                    .sum();
                TaskResult::ok(Value::I64(upstream_sum + 1))
            });
        }
        registry
    }

    #[test]
    fn journaled_run_resumes_after_a_crash() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let graph = script::parse(
            "task extract;
             task transform after extract;
             task load after transform;",
        )
        .unwrap();
        let executed = Arc::new(Mutex::new(Vec::new()));
        let crash_armed = Arc::new(Mutex::new(true));

        // --- run 1: crashes inside `transform`. ---
        {
            let registry = crashy_registry(&executed, &crash_armed);
            let engine = WorkflowEngine::new(graph.clone(), registry).unwrap();
            let journal = WorkflowJournal::new("etl-1", Arc::clone(&wal));
            let service = ActivityService::new();
            let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = engine.run_journaled(&service, "etl-1", Value::Null, &journal);
            }));
            assert!(crashed.is_err(), "the injected crash must fire");
        }
        assert_eq!(*executed.lock(), vec!["extract"], "only extract ran before the crash");

        // --- run 2: same journal; extract is NOT re-executed. ---
        *crash_armed.lock() = false;
        let registry = crashy_registry(&executed, &crash_armed);
        let engine = WorkflowEngine::new(graph, registry).unwrap();
        let journal = WorkflowJournal::new("etl-1", Arc::clone(&wal));
        let service = ActivityService::new();
        let report = engine.run_journaled(&service, "etl-1", Value::Null, &journal).unwrap();
        assert!(report.succeeded());
        assert_eq!(
            *executed.lock(),
            vec!["extract", "transform", "load"],
            "each task executed exactly once across both incarnations"
        );
        // The journalled extract output flowed into transform on resume.
        assert_eq!(report.outputs["transform"].as_i64(), Some(2));
        assert_eq!(report.outputs["load"].as_i64(), Some(3));
    }

    #[test]
    fn resumed_failure_is_not_rerun_under_compensate_policy() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let graph = script::parse(
            "task a;
             task b after a;
             compensate a with undo_a;",
        )
        .unwrap();
        let journal = WorkflowJournal::new("wf", Arc::clone(&wal));
        // Pre-populate the journal as if a previous run completed `a` and
        // failed `b`.
        journal.record("a", true, &Value::from(1i64)).unwrap();
        journal.record("b", false, &Value::from("boom")).unwrap();

        let undone = Arc::new(Mutex::new(0u32));
        let undone2 = Arc::clone(&undone);
        let mut registry = TaskRegistry::new();
        registry.register("a", |_i: &TaskInput| panic!("a must not re-run"));
        registry.register("b", |_i: &TaskInput| panic!("b must not re-run"));
        registry.register("undo_a", move |_i: &TaskInput| {
            *undone2.lock() += 1;
            TaskResult::ok(Value::Null)
        });
        let engine = WorkflowEngine::new(graph, registry).unwrap();
        let service = ActivityService::new();
        let report = engine.run_journaled(&service, "wf", Value::Null, &journal).unwrap();
        assert_eq!(report.failed, vec!["b"]);
        assert_eq!(report.completed, vec!["a"]);
        assert_eq!(*undone.lock(), 1, "compensation re-planned from the journal");
    }

    #[test]
    fn fresh_journal_behaves_like_plain_run() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let graph = script::parse("task only;").unwrap();
        let mut registry = TaskRegistry::new();
        registry.register("only", |_i: &TaskInput| TaskResult::ok(Value::from(7i64)));
        let engine = WorkflowEngine::new(graph, registry).unwrap();
        let journal = WorkflowJournal::new("wf-x", Arc::clone(&wal));
        let service = ActivityService::new();
        let report = engine.run_journaled(&service, "wf-x", Value::Null, &journal).unwrap();
        assert!(report.succeeded());
        // The outcome is durable.
        assert_eq!(journal.replay().unwrap().len(), 1);
    }
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;
    use crate::script;
    use telemetry::Telemetry;

    #[test]
    fn task_spans_join_the_activity_tree() {
        let graph = script::parse("task a;\ntask b after a;").unwrap();
        let mut registry = TaskRegistry::new();
        registry.register("a", |_i: &TaskInput| TaskResult::ok(Value::Null));
        registry.register("b", |_i: &TaskInput| TaskResult::ok(Value::Null));
        let tel = Telemetry::new();
        let engine = WorkflowEngine::new(graph, registry).unwrap().with_telemetry(tel.clone());
        let service = ActivityService::new();
        service.set_telemetry(tel.clone());
        let report = engine.run(&service, "wf", Value::Null).unwrap();
        assert!(report.succeeded());

        let tree = tel.span_tree();
        assert_eq!(tree.verify(), Vec::<String>::new());
        let roots = tree.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "workflow:wf");
        assert_eq!(roots[0].attr("outcome"), Some("success"));
        let wf_activity = tree.children(roots[0].context.span_id)[0];
        assert_eq!(wf_activity.name, "activity:wf");
        let names: Vec<&str> = tree
            .children(wf_activity.context.span_id)
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, vec!["task:a", "task:b"]);
        // Each task span covers its fig. 10 outcome exchange: the Completed
        // SignalSet run nests underneath.
        let task_a = tree.find("task:a").unwrap();
        let exchanges: Vec<&str> = tree
            .children(task_a.context.span_id)
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert!(exchanges.contains(&"signal_set:CompletedSignalSet"), "{exchanges:?}");
        assert_eq!(task_a.attr("attempts"), Some("1"));
        assert_eq!(tel.metrics().counter_value("wf_tasks_total{status=\"ok\"}"), 2);
    }

    #[test]
    fn compensation_sweep_is_traced() {
        let graph =
            script::parse("task t1;\ntask t2 after t1;\ncompensate t1 with undo_t1;").unwrap();
        let mut registry = TaskRegistry::new();
        registry.register("t1", |_i: &TaskInput| TaskResult::ok(Value::Null));
        registry.register("t2", |_i: &TaskInput| TaskResult::failed("hotel full"));
        registry.register("undo_t1", |_i: &TaskInput| TaskResult::ok(Value::Null));
        let tel = Telemetry::new();
        let engine = WorkflowEngine::new(graph, registry).unwrap().with_telemetry(tel.clone());
        let service = ActivityService::new();
        let report = engine.run(&service, "trip", Value::Null).unwrap();
        assert_eq!(report.compensations.len(), 1);

        let tree = tel.span_tree();
        assert_eq!(tree.verify(), Vec::<String>::new());
        let root = &tree.roots()[0];
        assert_eq!(root.name, "workflow:trip");
        assert_eq!(root.attr("outcome"), Some("failed"));
        let sweep = tree.find("compensation").expect("sweep span recorded");
        let steps = tree.children(sweep.context.span_id);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].name, "compensate:t1");
        assert_eq!(steps[0].attr("outcome"), Some("ok"));
        assert_eq!(steps[0].attr("compensation"), Some("undo_t1"));
        assert_eq!(tel.metrics().counter_value("wf_compensations_total{status=\"ok\"}"), 1);
        assert_eq!(tel.metrics().counter_value("wf_tasks_total{status=\"failed\"}"), 1);
    }

    #[test]
    fn retry_attempts_land_in_the_task_span() {
        let graph = script::parse("task flaky;\nretry flaky 3;").unwrap();
        let attempts = Arc::new(parking_lot::Mutex::new(0u32));
        let attempts2 = Arc::clone(&attempts);
        let mut registry = TaskRegistry::new();
        registry.register("flaky", move |_i: &TaskInput| {
            let mut a = attempts2.lock();
            *a += 1;
            if *a < 3 { TaskResult::failed("transient") } else { TaskResult::ok(Value::Null) }
        });
        let tel = Telemetry::new();
        let engine = WorkflowEngine::new(graph, registry).unwrap().with_telemetry(tel.clone());
        let service = ActivityService::new();
        let report = engine.run(&service, "retry-wf", Value::Null).unwrap();
        assert!(report.succeeded());
        let tree = tel.span_tree();
        assert_eq!(tree.find("task:flaky").unwrap().attr("attempts"), Some("3"));
        assert_eq!(tel.metrics().counter_value("wf_task_attempts_total"), 3);
    }
}

