//! Fault schedules: the *discrete, enumerable* unit of chaos.
//!
//! A schedule is a small list of [`FaultEvent`]s — arm this failpoint, drop
//! that remote message — rather than probabilistic fault rates. Discrete
//! events make runs replayable (the same schedule produces the same
//! execution) and shrinkable (removing one event leaves every other event's
//! meaning unchanged, because scenarios run the network with zero
//! probabilistic fault rates and scripted faults never consult the PRNG).

use std::fmt;

use orb::FaultScript;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recovery_log::FailpointSet;

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Arm the named failpoint to fire on its `after`-th passage
    /// (0 = the very next hit). The crashed component stays dead until the
    /// scenario "restarts" it.
    ArmFailpoint {
        /// Site name, e.g. `ots.before_decision`.
        site: String,
        /// Passages allowed before the crash fires.
        after: u32,
    },
    /// Silently drop the `nth` remote message (0-based, counted across the
    /// whole run; local same-node calls do not consume numbers).
    DropMessage {
        /// Remote-message sequence number.
        nth: u64,
    },
    /// Deliver the `nth` remote message twice.
    DuplicateMessage {
        /// Remote-message sequence number.
        nth: u64,
    },
    /// Isolate `node` from every other node during the virtual-time window
    /// `[from_us, until_us)` (microseconds). The partition heals itself
    /// once the clock passes `until_us` — scenarios apply these through
    /// [`orb::SimulatedNetwork::schedule_partition`], so activation is a
    /// pure function of the virtual clock and the event stays replayable.
    Partition {
        /// The node cut off from the rest of the network.
        node: String,
        /// Window start, µs of virtual time (inclusive).
        from_us: u64,
        /// Window end, µs of virtual time (exclusive) — the heal instant.
        until_us: u64,
    },
    /// Crash the process owning the named failpoint site (armed exactly
    /// like [`FaultEvent::ArmFailpoint`]) and later re-run its restart /
    /// recovery path. Scenarios that support restarts rebuild the
    /// component from its surviving WAL and drive in-doubt resolution;
    /// the distinct arm lets schedules say "this crash is recovered from"
    /// rather than "this component stays dead".
    Restart {
        /// Site name, e.g. `ots.recovery.after_prepared`.
        site: String,
        /// Passages allowed before the crash fires.
        after: u32,
    },
}

impl fmt::Display for FaultEvent {
    /// Renders as a copy-pasteable Rust constructor expression, so a
    /// minimized schedule can be pasted straight into a regression test.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::ArmFailpoint { site, after } => write!(
                f,
                "FaultEvent::ArmFailpoint {{ site: {site:?}.into(), after: {after} }}"
            ),
            FaultEvent::DropMessage { nth } => {
                write!(f, "FaultEvent::DropMessage {{ nth: {nth} }}")
            }
            FaultEvent::DuplicateMessage { nth } => {
                write!(f, "FaultEvent::DuplicateMessage {{ nth: {nth} }}")
            }
            FaultEvent::Partition { node, from_us, until_us } => write!(
                f,
                "FaultEvent::Partition {{ node: {node:?}.into(), from_us: {from_us}, until_us: {until_us} }}"
            ),
            FaultEvent::Restart { site, after } => write!(
                f,
                "FaultEvent::Restart {{ site: {site:?}.into(), after: {after} }}"
            ),
        }
    }
}

/// An ordered list of fault events applied to one scenario run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The fault-free schedule (a probe run).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A schedule running exactly `events`.
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        FaultSchedule { events }
    }

    /// The events, in order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is fault-free.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The schedule with event `index` removed (the shrinking step).
    #[must_use]
    pub fn without_event(&self, index: usize) -> Self {
        let mut events = self.events.clone();
        events.remove(index);
        FaultSchedule { events }
    }

    /// Arm every [`FaultEvent::ArmFailpoint`] and [`FaultEvent::Restart`]
    /// event into `failpoints` (both crash a component; they differ in
    /// whether the scenario later re-runs its recovery path).
    pub fn arm_into(&self, failpoints: &FailpointSet) {
        for event in &self.events {
            match event {
                FaultEvent::ArmFailpoint { site, after }
                | FaultEvent::Restart { site, after } => {
                    failpoints.arm(site.clone(), *after);
                }
                _ => {}
            }
        }
    }

    /// Apply every [`FaultEvent::Partition`] event as a scheduled window on
    /// `network`: the node is severed from everyone else while the virtual
    /// clock is inside `[from_us, until_us)`, then the window self-heals.
    pub fn apply_partitions(&self, network: &orb::SimulatedNetwork) {
        for event in &self.events {
            if let FaultEvent::Partition { node, from_us, until_us } = event {
                network.schedule_partition(
                    std::time::Duration::from_micros(*from_us),
                    std::time::Duration::from_micros(*until_us),
                    &[&[node.as_str()]],
                );
            }
        }
    }

    /// How many *transient* faults this schedule injects: message drops.
    /// Duplicates are excluded — a redelivered message can violate
    /// effect-once accounting but can never prevent termination, so it does
    /// not count against a retry budget. Feeds
    /// [`crate::oracle::Observation::transient_faults`].
    pub fn transient_fault_count(&self) -> u32 {
        self.events
            .iter()
            .filter(|e| matches!(e, FaultEvent::DropMessage { .. }))
            .count() as u32
    }

    /// How many *hard* faults this schedule injects: armed crash
    /// failpoints (stay-dead and restart flavours) and partitions. Any hard
    /// fault voids the bounded-fault liveness claim — a partitioned or
    /// crashed component can legitimately miss its retry budget. Feeds
    /// [`crate::oracle::Observation::hard_faults`].
    pub fn hard_fault_count(&self) -> u32 {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    FaultEvent::ArmFailpoint { .. }
                        | FaultEvent::Restart { .. }
                        | FaultEvent::Partition { .. }
                )
            })
            .count() as u32
    }

    /// The message-level events as an [`orb::FaultScript`] for
    /// `SimulatedNetwork::install_script`.
    pub fn to_fault_script(&self) -> FaultScript {
        let mut script = FaultScript::new();
        for event in &self.events {
            match event {
                FaultEvent::DropMessage { nth } => script = script.drop_nth(*nth),
                FaultEvent::DuplicateMessage { nth } => script = script.duplicate_nth(*nth),
                FaultEvent::ArmFailpoint { .. }
                | FaultEvent::Partition { .. }
                | FaultEvent::Restart { .. } => {}
            }
        }
        script
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FaultSchedule::from_events(vec![")?;
        for event in &self.events {
            writeln!(f, "    {event},")?;
        }
        write!(f, "])")
    }
}

/// The space a seed is mapped into: which failpoint sites exist (discovered
/// by a fault-free probe run via `FailpointSet::observed_sites`) and how
/// many remote messages the fault-free run sends.
#[derive(Debug, Clone, Default)]
pub struct ScheduleSpace {
    /// Arm-able failpoint sites.
    pub sites: Vec<String>,
    /// Remote messages sent by the fault-free run (message faults target
    /// sequence numbers up to twice this, so retries are reachable too).
    pub remote_messages: u64,
    /// Largest number of events in one generated schedule.
    pub max_events: usize,
    /// Nodes eligible for [`FaultEvent::Partition`] windows. Empty for
    /// scenarios that do not expose their topology — the generator then
    /// never emits partition arms and old seeds replay unchanged.
    pub partition_nodes: Vec<String>,
    /// Sites eligible for [`FaultEvent::Restart`] (crash-then-recover)
    /// arms. Empty for scenarios without a restart path.
    pub restart_sites: Vec<String>,
}

/// Deterministically derive a schedule from `seed`. The same seed and space
/// always produce the same schedule.
///
/// When the space has no partition nodes and no restart sites, the event
/// choices (and the PRNG draws behind them) are identical to what earlier
/// versions of this generator produced, so existing per-seed schedules —
/// and the sweep fingerprints built on them — are stable.
pub fn generate(seed: u64, space: &ScheduleSpace) -> FaultSchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let max = space.max_events.max(1) as u64;
    let count = rng.gen_range(1..=max);
    let mut events = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let have_sites = !space.sites.is_empty();
        let have_messages = space.remote_messages > 0;
        let have_partitions = !space.partition_nodes.is_empty();
        let have_restarts = !space.restart_sites.is_empty();
        // Fast path: the legacy two-way choice, drawing exactly the PRNG
        // values the original generator drew.
        if !have_partitions && !have_restarts {
            let pick_site = match (have_sites, have_messages) {
                (true, true) => rng.gen_range(0..2u32) == 0,
                (true, false) => true,
                (false, true) => false,
                (false, false) => break,
            };
            if pick_site {
                let site =
                    space.sites[rng.gen_range(0..space.sites.len() as u64) as usize].clone();
                let after = rng.gen_range(0..3u32);
                events.push(FaultEvent::ArmFailpoint { site, after });
            } else {
                let nth = rng.gen_range(0..space.remote_messages * 2);
                if rng.gen_range(0..2u32) == 0 {
                    events.push(FaultEvent::DropMessage { nth });
                } else {
                    events.push(FaultEvent::DuplicateMessage { nth });
                }
            }
            continue;
        }
        // Extended choice set: pick uniformly among the offered kinds.
        let mut kinds: Vec<u8> = Vec::with_capacity(4);
        if have_sites {
            kinds.push(0);
        }
        if have_messages {
            kinds.push(1);
        }
        if have_partitions {
            kinds.push(2);
        }
        if have_restarts {
            kinds.push(3);
        }
        if kinds.is_empty() {
            break;
        }
        match kinds[rng.gen_range(0..kinds.len() as u64) as usize] {
            0 => {
                let site =
                    space.sites[rng.gen_range(0..space.sites.len() as u64) as usize].clone();
                let after = rng.gen_range(0..3u32);
                events.push(FaultEvent::ArmFailpoint { site, after });
            }
            1 => {
                let nth = rng.gen_range(0..space.remote_messages * 2);
                if rng.gen_range(0..2u32) == 0 {
                    events.push(FaultEvent::DropMessage { nth });
                } else {
                    events.push(FaultEvent::DuplicateMessage { nth });
                }
            }
            2 => {
                let node = space.partition_nodes
                    [rng.gen_range(0..space.partition_nodes.len() as u64) as usize]
                    .clone();
                let from_us = rng.gen_range(0..800u64);
                let until_us = from_us + rng.gen_range(100..1500u64);
                events.push(FaultEvent::Partition { node, from_us, until_us });
            }
            _ => {
                let site = space.restart_sites
                    [rng.gen_range(0..space.restart_sites.len() as u64) as usize]
                    .clone();
                let after = rng.gen_range(0..3u32);
                events.push(FaultEvent::Restart { site, after });
            }
        }
    }
    FaultSchedule::from_events(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ScheduleSpace {
        ScheduleSpace {
            sites: vec!["a.one".into(), "b.two".into()],
            remote_messages: 4,
            max_events: 4,
            ..ScheduleSpace::default()
        }
    }

    fn partitioned_space() -> ScheduleSpace {
        ScheduleSpace {
            partition_nodes: vec!["participant".into(), "coordinator".into()],
            restart_sites: vec!["ots.recovery.after_prepared".into()],
            ..space()
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for seed in 0..50 {
            let a = generate(seed, &space());
            let b = generate(seed, &space());
            assert_eq!(a, b);
            assert!(!a.is_empty());
            assert!(a.len() <= 4);
        }
        assert_ne!(generate(1, &space()), generate(2, &space()));
    }

    #[test]
    fn empty_space_yields_empty_schedule() {
        let s = generate(
            7,
            &ScheduleSpace { max_events: 4, ..ScheduleSpace::default() },
        );
        assert!(s.is_empty());
    }

    #[test]
    fn extended_space_reaches_partition_and_restart_arms() {
        let space = partitioned_space();
        let mut saw_partition = false;
        let mut saw_restart = false;
        for seed in 0..200 {
            let schedule = generate(seed, &space);
            assert_eq!(generate(seed, &space), schedule, "still deterministic");
            for event in schedule.events() {
                match event {
                    FaultEvent::Partition { from_us, until_us, .. } => {
                        saw_partition = true;
                        assert!(until_us > from_us, "window must be non-empty");
                    }
                    FaultEvent::Restart { .. } => saw_restart = true,
                    _ => {}
                }
            }
        }
        assert!(saw_partition, "generator never emitted a partition arm");
        assert!(saw_restart, "generator never emitted a restart arm");
    }

    #[test]
    fn legacy_spaces_generate_exactly_the_old_schedules() {
        // The extended generator must be a strict superset: with no
        // partition nodes or restart sites, every seed maps to the same
        // schedule the two-way generator produced, keeping historical
        // sweep fingerprints valid.
        for seed in 0..100 {
            let schedule = generate(seed, &space());
            assert!(schedule.events().iter().all(|e| matches!(
                e,
                FaultEvent::ArmFailpoint { .. }
                    | FaultEvent::DropMessage { .. }
                    | FaultEvent::DuplicateMessage { .. }
            )));
        }
    }

    #[test]
    fn restarts_arm_failpoints_and_partitions_apply_windows() {
        let schedule = FaultSchedule::from_events(vec![
            FaultEvent::Restart { site: "ots.recovery.after_prepared".into(), after: 1 },
            FaultEvent::Partition { node: "participant".into(), from_us: 10, until_us: 400 },
        ]);
        let fp = FailpointSet::new();
        schedule.arm_into(&fp);
        assert!(fp.is_armed("ots.recovery.after_prepared"));
        let clock = orb::SimClock::new();
        let network =
            orb::SimulatedNetwork::new(orb::NetworkConfig::reliable(), clock.clone());
        schedule.apply_partitions(&network);
        clock.advance(std::time::Duration::from_micros(20));
        assert!(!network.reachable("participant", "coordinator"));
        clock.advance(std::time::Duration::from_micros(400));
        assert!(network.reachable("participant", "coordinator"));
        // Neither arm contributes message-script entries.
        assert!(schedule.to_fault_script().is_empty());
        // Both are hard faults: they void the liveness envelope.
        assert_eq!(schedule.hard_fault_count(), 2);
        assert_eq!(schedule.transient_fault_count(), 0);
    }

    #[test]
    fn schedule_splits_into_failpoints_and_script() {
        let schedule = FaultSchedule::from_events(vec![
            FaultEvent::ArmFailpoint { site: "x.y".into(), after: 1 },
            FaultEvent::DropMessage { nth: 3 },
            FaultEvent::DuplicateMessage { nth: 5 },
        ]);
        let fp = FailpointSet::new();
        schedule.arm_into(&fp);
        assert!(fp.is_armed("x.y"));
        let script = schedule.to_fault_script();
        assert_eq!(script.drops().collect::<Vec<_>>(), vec![3]);
        assert_eq!(script.duplicates().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn fault_counts_split_transient_from_hard() {
        let schedule = FaultSchedule::from_events(vec![
            FaultEvent::ArmFailpoint { site: "x.y".into(), after: 0 },
            FaultEvent::DropMessage { nth: 3 },
            FaultEvent::DropMessage { nth: 7 },
            FaultEvent::DuplicateMessage { nth: 5 },
        ]);
        assert_eq!(schedule.transient_fault_count(), 2, "duplicates are not transient faults");
        assert_eq!(schedule.hard_fault_count(), 1);
        assert_eq!(FaultSchedule::empty().transient_fault_count(), 0);
        assert_eq!(FaultSchedule::empty().hard_fault_count(), 0);
    }

    #[test]
    fn display_is_copy_pasteable() {
        let schedule = FaultSchedule::from_events(vec![
            FaultEvent::ArmFailpoint { site: "ots.before_decision".into(), after: 0 },
            FaultEvent::DropMessage { nth: 2 },
            FaultEvent::Partition { node: "participant".into(), from_us: 50, until_us: 900 },
            FaultEvent::Restart { site: "ots.recovery.before_apply".into(), after: 1 },
        ]);
        let rendered = schedule.to_string();
        assert!(rendered.contains("FaultSchedule::from_events(vec!["));
        assert!(rendered
            .contains("FaultEvent::ArmFailpoint { site: \"ots.before_decision\".into(), after: 0 }"));
        assert!(rendered.contains("FaultEvent::DropMessage { nth: 2 }"));
        assert!(rendered.contains(
            "FaultEvent::Partition { node: \"participant\".into(), from_us: 50, until_us: 900 }"
        ));
        assert!(rendered.contains(
            "FaultEvent::Restart { site: \"ots.recovery.before_apply\".into(), after: 1 }"
        ));
    }

    #[test]
    fn without_event_removes_exactly_one() {
        let schedule = FaultSchedule::from_events(vec![
            FaultEvent::DropMessage { nth: 0 },
            FaultEvent::DropMessage { nth: 1 },
        ]);
        let shrunk = schedule.without_event(0);
        assert_eq!(shrunk.events(), &[FaultEvent::DropMessage { nth: 1 }]);
        assert_eq!(schedule.len(), 2, "shrinking is non-destructive");
    }
}
