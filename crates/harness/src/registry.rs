//! The failpoint-site registry audit.
//!
//! Each protocol crate exports named constants for the sites it hits
//! (`ots::failpoints`, `activity_service::failpoints`); the authoritative
//! human-readable table lives in `recovery_log::crash`'s module docs. The
//! tests here close the loop: a fault-free probe run of each protocol must
//! *observe* (via [`recovery_log::FailpointSet::observed_sites`]) exactly
//! the sites the constants declare — no orphan constants, no unlisted
//! `hit` call sites.

/// Every named failpoint site in the workspace, in protocol order per
/// crate. `wal.append` (the synthetic `CrashingWal` site) is excluded: it
/// has no `hit` call site.
pub fn all_known_sites() -> Vec<&'static str> {
    let mut sites = Vec::new();
    sites.extend_from_slice(ots::failpoints::FAILPOINT_SITES);
    sites.extend_from_slice(ots::recovery::failpoints::FAILPOINT_SITES);
    sites.extend_from_slice(activity_service::failpoints::FAILPOINT_SITES);
    sites.extend_from_slice(activity_service::reaper::failpoints::FAILPOINT_SITES);
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    use activity_service::{
        ActivityCoordinator, ActivityId, BroadcastSignalSet, DispatchConfig,
    };
    use orb::Value;
    use ots::{Resource, TransactionFactory, TransactionalKv};
    use recovery_log::{FailpointSet, FileWal, GroupCommitWal, Lsn, MemWal, Wal};

    fn sorted(sites: &[&str]) -> BTreeSet<String> {
        sites.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn no_duplicate_site_names_across_crates() {
        let sites = all_known_sites();
        let unique: BTreeSet<_> = sites.iter().collect();
        assert_eq!(unique.len(), sites.len(), "site names must be globally unique");
        assert_eq!(sites.len(), 12);
    }

    #[test]
    fn ots_probe_observes_exactly_the_declared_sites() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let failpoints = FailpointSet::new();
        let factory =
            TransactionFactory::with_wal(wal).with_failpoints(failpoints.clone());
        // Two participants: the one-phase shortcut would skip sites.
        let store = Arc::new(TransactionalKv::new("store"));
        let witness = Arc::new(TransactionalKv::new("witness"));
        let control = factory.create().unwrap();
        store.enlist(&control).unwrap();
        witness.enlist(&control).unwrap();
        store.write(control.id(), "k", Value::from(1i64)).unwrap();
        witness.write(control.id(), "w", Value::from(2i64)).unwrap();
        control.terminator().commit().unwrap();
        assert_eq!(
            failpoints.observed_sites().into_iter().collect::<BTreeSet<_>>(),
            sorted(ots::failpoints::FAILPOINT_SITES),
            "ots constants out of sync with actual hit() call sites"
        );
    }

    #[test]
    fn wal_length_audit_agrees_across_implementations() {
        // The audit leans on the O(1) `Wal::len` overrides: a full commit
        // writes the same record count to every log implementation, and
        // `len()` must agree with what a scan actually returns.
        fn probe(wal: Arc<dyn Wal>) -> (usize, usize) {
            let factory = TransactionFactory::with_wal(Arc::clone(&wal));
            let store = Arc::new(TransactionalKv::new("store"));
            let witness = Arc::new(TransactionalKv::new("witness"));
            let control = factory.create().unwrap();
            store.enlist(&control).unwrap();
            witness.enlist(&control).unwrap();
            store.write(control.id(), "k", Value::from(1i64)).unwrap();
            witness.write(control.id(), "w", Value::from(2i64)).unwrap();
            control.terminator().commit().unwrap();
            wal.sync().unwrap();
            (wal.len(), wal.scan(Lsn::new(0)).unwrap().len())
        }

        let mut path = std::env::temp_dir();
        path.push(format!("harness-registry-len-audit-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let (mem_len, mem_scan) = probe(Arc::new(MemWal::new()));
        let (file_len, file_scan) = probe(Arc::new(FileWal::open(&path).unwrap()));
        let (group_len, group_scan) =
            probe(Arc::new(GroupCommitWal::new(MemWal::new())));
        std::fs::remove_file(&path).unwrap();

        assert_eq!(mem_len, mem_scan);
        assert_eq!(file_len, file_scan);
        assert_eq!(group_len, group_scan);
        assert_eq!(mem_len, file_len, "same protocol, same record count");
        assert_eq!(mem_len, group_len, "same protocol, same record count");
        assert!(mem_len > 0);
    }

    #[test]
    fn activity_probe_observes_exactly_the_declared_sites() {
        let failpoints = FailpointSet::new();
        let coordinator =
            ActivityCoordinator::with_dispatch(ActivityId::new(1), DispatchConfig::serial());
        coordinator.set_failpoints(failpoints.clone());
        coordinator
            .add_signal_set(Box::new(BroadcastSignalSet::new("S", "go", Value::Null)))
            .unwrap();
        coordinator.process_signal_set("S").unwrap();
        assert_eq!(
            failpoints.observed_sites().into_iter().collect::<BTreeSet<_>>(),
            sorted(activity_service::failpoints::FAILPOINT_SITES),
            "activity-service constants out of sync with actual hit() call sites"
        );
    }

    #[test]
    fn recovery_probe_observes_exactly_the_declared_sites() {
        // Drive a RecoverableResource through every code path that hits a
        // recovery failpoint: prepare (after_prepared), a resolution
        // attempt (before_resolve — the coordinator is unlocatable, so the
        // transaction just stays in doubt) and outcome delivery
        // (before_apply).
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let failpoints = FailpointSet::new();
        let kv = ots::DurableKv::new("store", Arc::clone(&wal));
        let res = ots::RecoverableResource::new(
            Arc::clone(&kv) as Arc<dyn ots::Resource>,
            Arc::clone(&wal),
            "coordinator",
        )
        .with_failpoints(failpoints.clone());
        let tx = ots::TxId::top_level(1);
        kv.store().write(&tx, "k", Value::from(1i64)).unwrap();
        res.prepare(&tx).unwrap();
        let orb = orb::Orb::builder()
            .network(orb::NetworkConfig::reliable())
            .clock(orb::SimClock::new())
            .build();
        orb.add_node("participant").unwrap();
        let locate: ots::recovery::CoordinatorLocator = Arc::new(|_| None);
        let config = ots::ResolutionConfig::new(
            orb::RetryPolicy::new(1),
            std::time::Duration::from_secs(60),
        );
        res.resolve_in_doubt(&orb, "participant", &locate, &config).unwrap();
        res.rollback(&tx).unwrap();
        assert_eq!(
            failpoints.observed_sites().into_iter().collect::<BTreeSet<_>>(),
            sorted(ots::recovery::failpoints::FAILPOINT_SITES),
            "ots::recovery constants out of sync with actual hit() call sites"
        );
    }

    #[test]
    fn reaper_probe_observes_exactly_the_declared_sites() {
        let clock = orb::SimClock::new();
        let orphan = activity_service::Activity::new_root("orphan", clock.clone());
        orphan.set_timeout(std::time::Duration::from_millis(5));
        clock.advance(std::time::Duration::from_millis(10));
        let failpoints = FailpointSet::new();
        let reaper =
            activity_service::OrphanReaper::new().with_failpoints(failpoints.clone());
        reaper.reap(&[orphan], &|_| false).unwrap();
        assert_eq!(
            failpoints.observed_sites().into_iter().collect::<BTreeSet<_>>(),
            sorted(activity_service::reaper::failpoints::FAILPOINT_SITES),
            "reaper constants out of sync with actual hit() call sites"
        );
    }

    #[test]
    fn crash_module_docs_list_every_site() {
        // The audit table in recovery-log/src/crash.rs is prose, but its
        // site names are load-bearing: this test pins the full list so a
        // new hit() call site forces both the constants and the table to
        // move together.
        let expected: BTreeSet<String> = sorted(&[
            "ots.before_prepare",
            "ots.after_prepare",
            "ots.before_decision",
            "ots.after_decision",
            "ots.before_completion_record",
            "ots.recovery.after_prepared",
            "ots.recovery.before_apply",
            "ots.recovery.before_resolve",
            "activity.before_get_signal",
            "activity.before_transmit",
            "activity.before_outcome",
            "activity.reaper.before_complete",
        ]);
        let actual: BTreeSet<String> =
            all_known_sites().into_iter().map(str::to_owned).collect();
        assert_eq!(actual, expected);
    }
}
