//! Invariant oracles checked after every simulated run.
//!
//! Scenarios report *facts* in an [`Observation`]; the oracles here turn
//! facts into [`Violation`]s. Twelve oracles cover the §3.4 guarantees:
//!
//! 1. **atomicity** — participant effects are all-or-nothing with respect
//!    to the run outcome;
//! 2. **exactly-once** — every action's observed effect count lies inside
//!    its contractual `[min, max]` band (exactly-once actions pin the band
//!    to a point);
//! 3. **compensation** — when compensation is required, every completed
//!    step was compensated, in reverse completion order;
//! 4. **replay-equivalence** — post-crash WAL replay reaches the outcome
//!    the durable decision dictates (presumed abort without one), and a
//!    second replay changes nothing;
//! 5. **determinism** — the same schedule yields a byte-identical trace and
//!    identical facts (checked across two runs by
//!    [`check_determinism`]);
//! 6. **liveness-under-bounded-faults** — a run whose schedule injects only
//!    *transient* faults (message drops), no more of them than the retry
//!    budget and no hard faults (crash failpoints), must still reach a
//!    terminal forward outcome: the reliability layer absorbs bounded loss;
//! 7. **telemetry-conformance** — when the scenario records spans, the span
//!    tree must be well-formed (single-rooted per trace, no orphans, no
//!    never-closed spans) and its projection onto coordinator events must be
//!    byte-identical to the rendered [`TraceLog`]: the telemetry plane may
//!    never disagree with the protocol's own account of what happened;
//! 8. **durability** — every record the log acknowledged as durable before
//!    an injected crash must survive replay: if the scenario reports the
//!    highest acked LSN and the set of LSNs found after restart, LSNs
//!    `1..=acked` must all be present. The unacked tail may tear; acked
//!    records may not;
//! 9. **refinement** — when the scenario journals its protocol steps as
//!    [`crate::model::Event`]s, the trace must replay cleanly through the
//!    executable reference models ([`crate::model::replay_all`]): the
//!    implementation's observable behaviour refines the paper's
//!    specification, event by event. The [`crate::explore`] module runs
//!    this oracle over every interleaving it enumerates;
//! 10. **eventual-resolution** — once injected faults cease and partitions
//!     heal, no participant may remain in-doubt: scenarios that drive
//!     termination report how many transactions were still unresolved after
//!     their bounded post-heal resolution rounds, and that count must be
//!     zero. Heuristic outcomes are reported only for genuinely hazarded
//!     histories — a heuristic on an unhazarded run means the participant
//!     gave up when interrogation would have answered;
//! 11. **recorder-consistency** — when the scenario attaches a flight
//!     recorder, the recorder's black box must agree with the protocol's
//!     own account: its `trace`-kind events must be exactly the (possibly
//!     ring-evicted) tail of the [`TraceLog`]'s rendered lines, in the same
//!     causal order, and the critical-path attribution over the commit span
//!     must partition the root duration exactly. The recorder's fingerprint
//!     is additionally compared across the determinism oracle's two runs —
//!     the black box itself must be bit-identical under replay;
//! 12. **causal-consistency** — when the scenario merges its per-node
//!     flight-recorder logs into a global happens-before DAG
//!     (`telemetry::CausalMerge`), the merge must verify clean: the DAG is
//!     acyclic, every message edge's receive stamp exceeds its send stamp
//!     in both Lamport and virtual-clock order, and the 2PC protocol events
//!     respect causal order (no outcome delivered before the decision was
//!     forced, no vote recorded after the decision, no completion before
//!     the decided outcome reached the participants). The merge fingerprint
//!     is additionally compared across the determinism oracle's two runs —
//!     the *global* causal history must be bit-identical under replay, not
//!     just each node's local log.

/// Terminal outcome of one simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The protocol completed in the forward direction.
    Committed,
    /// The protocol completed in the backward direction (rollback,
    /// cancellation or compensation).
    Aborted,
    /// An injected crash ended the run and no recovery pass applies
    /// (in-memory protocols with no durable state to replay).
    Crashed,
}

/// One action's effect accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectCount {
    /// The action whose side effects were counted.
    pub action: String,
    /// Effects actually observed.
    pub observed: u64,
    /// Fewest effects the contract allows for this run's outcome.
    pub min: u64,
    /// Most effects the contract allows (1 for exactly-once actions).
    pub max: u64,
}

/// Everything a scenario run reports to the oracles.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Terminal outcome.
    pub outcome: RunOutcome,
    /// Participant name → whether its effects are durably present.
    pub participant_commits: Vec<(String, bool)>,
    /// Per-action effect accounting.
    pub effects: Vec<EffectCount>,
    /// Steps whose forward work completed, oldest first.
    pub completed_steps: Vec<String>,
    /// Steps compensated, in execution order.
    pub compensated_steps: Vec<String>,
    /// Whether the run's ending obliges compensation of completed steps.
    pub compensation_required: bool,
    /// Whether a commit decision record was durable at the crash
    /// (`None` when no crash-recovery pass ran).
    pub decision_durable: Option<bool>,
    /// Outcome the WAL replay reached (`None` when no crash occurred).
    pub replay_outcome: Option<RunOutcome>,
    /// Whether a *second* replay over the same log found nothing left to
    /// do (`None` when no crash occurred).
    pub replay_stable: Option<bool>,
    /// Rendered protocol trace; byte-compared by the determinism oracle.
    pub trace: String,
    /// Failpoint sites the run passed through (probe runs use this to
    /// discover the schedule space).
    pub observed_sites: Vec<String>,
    /// Remote messages the run sent (probe runs use this to bound
    /// message-fault sequence numbers).
    pub remote_messages: u64,
    /// Transient faults (dropped messages) the schedule injected
    /// (`None` when the scenario does not report fault accounting).
    pub transient_faults: Option<u32>,
    /// Hard faults (armed crash failpoints) the schedule injected.
    pub hard_faults: Option<u32>,
    /// The per-call retry budget the run's reliability layer had
    /// (`None` when retries are disabled or unreported).
    pub retry_budget: Option<u32>,
    /// Span-tree well-formedness defects from `SpanTree::verify`
    /// (`None` when the scenario records no telemetry).
    pub span_wellformed: Option<Vec<String>>,
    /// The span tree's projection onto coordinator events
    /// (`None` when the scenario records no telemetry).
    pub span_projection: Option<String>,
    /// Canonical span-tree fingerprint; compared across the determinism
    /// oracle's two runs (`None` when the scenario records no telemetry).
    pub span_fingerprint: Option<u64>,
    /// Highest LSN the log acknowledged as durable before the crash
    /// (`None` when the scenario does not report durability accounting).
    pub durable_acked_lsn: Option<u64>,
    /// Raw LSNs found in the log after the post-crash restart
    /// (`None` when the scenario does not report durability accounting).
    pub survived_lsns: Option<Vec<u64>>,
    /// Protocol steps journaled in the reference-model vocabulary
    /// (`None` when the scenario does not journal model events; the
    /// refinement oracle binds only when present).
    pub model_events: Option<Vec<crate::model::Event>>,
    /// Nodes the scenario exposes to [`crate::schedule::FaultEvent::Partition`]
    /// arms (probe runs use this to build the schedule space).
    pub partition_nodes: Vec<String>,
    /// Failpoint sites the scenario recovers from after a
    /// [`crate::schedule::FaultEvent::Restart`] crash (probe runs use this
    /// to build the schedule space).
    pub restart_sites: Vec<String>,
    /// Participants still in doubt after faults ceased, partitions healed
    /// and the scenario ran its bounded resolution rounds (`None` when the
    /// scenario does not drive termination; the eventual-resolution oracle
    /// binds only when present).
    pub in_doubt_after_resolution: Option<u32>,
    /// Heuristic outcomes participants recorded during the run (`None`
    /// when the scenario does not drive termination).
    pub heuristics: Option<u32>,
    /// Whether the history genuinely hazarded an outcome — i.e. the
    /// coordinator's decision was unknowable for long enough that a
    /// heuristic was the participant's only legal exit (`None` when the
    /// scenario does not report hazard accounting).
    pub hazarded: Option<bool>,
    /// Flight-recorder events as `(kind label, detail)` pairs, oldest
    /// retained first (`None` when the scenario attaches no recorder; the
    /// recorder-consistency oracle binds only when present).
    pub recorder_events: Option<Vec<(String, String)>>,
    /// The [`TraceLog`]'s rendered lines, in record order (`None` when the
    /// scenario has no trace log; with `recorder_events` present this arms
    /// the recorder-vs-trace causal-order check).
    pub trace_log_events: Option<Vec<String>>,
    /// FNV fingerprint over the recorder's retained events; compared across
    /// the determinism oracle's two runs (`None` without a recorder).
    pub recorder_fingerprint: Option<u64>,
    /// The recorder's rendered dump, attached verbatim to failure repros
    /// (`None` without a recorder; never compared by oracles).
    pub recorder_dump: Option<String>,
    /// Whether `SpanTree::critical_path` partitioned the commit span's
    /// duration exactly (`None` when the scenario computes no attribution).
    pub critical_path_exact: Option<bool>,
    /// Rendered [`telemetry::CausalViolation`]s from verifying the merged
    /// happens-before DAG (`None` when the scenario builds no causal
    /// merge; the causal-consistency oracle binds only when present —
    /// `Some(vec![])` means the merge verified clean).
    pub causal_violations: Option<Vec<String>>,
    /// Fingerprint of the merged causal DAG (events + program-order +
    /// message edges); compared across the determinism oracle's two runs
    /// (`None` without a causal merge).
    pub causal_fingerprint: Option<u64>,
    /// The merged DAG exported as Perfetto/Chrome-trace JSON, attached
    /// verbatim to failure repros (`None` without a causal merge; never
    /// compared by oracles).
    pub causal_perfetto: Option<String>,
}

impl Observation {
    /// An observation with the given outcome and no other facts.
    pub fn new(outcome: RunOutcome) -> Self {
        Observation {
            outcome,
            participant_commits: Vec::new(),
            effects: Vec::new(),
            completed_steps: Vec::new(),
            compensated_steps: Vec::new(),
            compensation_required: false,
            decision_durable: None,
            replay_outcome: None,
            replay_stable: None,
            trace: String::new(),
            observed_sites: Vec::new(),
            remote_messages: 0,
            transient_faults: None,
            hard_faults: None,
            retry_budget: None,
            span_wellformed: None,
            span_projection: None,
            span_fingerprint: None,
            durable_acked_lsn: None,
            survived_lsns: None,
            model_events: None,
            partition_nodes: Vec::new(),
            restart_sites: Vec::new(),
            in_doubt_after_resolution: None,
            heuristics: None,
            hazarded: None,
            recorder_events: None,
            trace_log_events: None,
            recorder_fingerprint: None,
            recorder_dump: None,
            critical_path_exact: None,
            causal_violations: None,
            causal_fingerprint: None,
            causal_perfetto: None,
        }
    }
}

/// One oracle violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle fired.
    pub oracle: &'static str,
    /// Human-readable account of the broken invariant.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Oracle names, in the order [`check_all`] evaluates them.
pub const ORACLES: &[&str] = &[
    "atomicity",
    "exactly-once",
    "compensation",
    "replay-equivalence",
    "determinism",
    "liveness-under-bounded-faults",
    "telemetry-conformance",
    "durability",
    "refinement",
    "eventual-resolution",
    "recorder-consistency",
    "causal-consistency",
];

/// Run every single-observation oracle (all but determinism).
pub fn check_all(obs: &Observation) -> Vec<Violation> {
    let mut violations = Vec::new();
    check_atomicity(obs, &mut violations);
    check_exactly_once(obs, &mut violations);
    check_compensation(obs, &mut violations);
    check_replay(obs, &mut violations);
    check_liveness(obs, &mut violations);
    check_telemetry(obs, &mut violations);
    check_durability(obs, &mut violations);
    check_refinement(obs, &mut violations);
    check_eventual_resolution(obs, &mut violations);
    check_recorder(obs, &mut violations);
    check_causal(obs, &mut violations);
    violations
}

fn check_atomicity(obs: &Observation, out: &mut Vec<Violation>) {
    match obs.outcome {
        RunOutcome::Committed => {
            for (name, committed) in &obs.participant_commits {
                if !committed {
                    out.push(Violation {
                        oracle: "atomicity",
                        detail: format!("outcome committed but participant {name:?} lost its effects"),
                    });
                }
            }
        }
        RunOutcome::Aborted => {
            for (name, committed) in &obs.participant_commits {
                if *committed {
                    out.push(Violation {
                        oracle: "atomicity",
                        detail: format!("outcome aborted but participant {name:?} kept its effects"),
                    });
                }
            }
        }
        RunOutcome::Crashed => {
            // No recovery pass ran: the only claim is uniformity.
            let committed: Vec<bool> =
                obs.participant_commits.iter().map(|(_, c)| *c).collect();
            if committed.iter().any(|c| *c) && committed.iter().any(|c| !*c) {
                out.push(Violation {
                    oracle: "atomicity",
                    detail: format!(
                        "crashed run left mixed participant states: {:?}",
                        obs.participant_commits
                    ),
                });
            }
        }
    }
}

fn check_exactly_once(obs: &Observation, out: &mut Vec<Violation>) {
    for effect in &obs.effects {
        if effect.observed < effect.min || effect.observed > effect.max {
            out.push(Violation {
                oracle: "exactly-once",
                detail: format!(
                    "action {:?} produced {} effects, contract allows {}..={}",
                    effect.action, effect.observed, effect.min, effect.max
                ),
            });
        }
    }
}

fn check_compensation(obs: &Observation, out: &mut Vec<Violation>) {
    if obs.compensation_required {
        let expected: Vec<String> = obs.completed_steps.iter().rev().cloned().collect();
        if obs.compensated_steps != expected {
            out.push(Violation {
                oracle: "compensation",
                detail: format!(
                    "completed steps {:?} require compensations {expected:?}, observed {:?}",
                    obs.completed_steps, obs.compensated_steps
                ),
            });
        }
    } else if !obs.compensated_steps.is_empty() {
        out.push(Violation {
            oracle: "compensation",
            detail: format!(
                "no compensation was required but {:?} were compensated",
                obs.compensated_steps
            ),
        });
    }
}

fn check_replay(obs: &Observation, out: &mut Vec<Violation>) {
    let Some(replayed) = obs.replay_outcome else { return };
    match obs.decision_durable {
        Some(true) if replayed != RunOutcome::Committed => out.push(Violation {
            oracle: "replay-equivalence",
            detail: format!("decision was durable but replay reached {replayed:?}"),
        }),
        Some(false) if replayed != RunOutcome::Aborted => out.push(Violation {
            oracle: "replay-equivalence",
            detail: format!("no durable decision (presumed abort) but replay reached {replayed:?}"),
        }),
        None => out.push(Violation {
            oracle: "replay-equivalence",
            detail: "replay ran but the scenario reported no durability fact".into(),
        }),
        _ => {}
    }
    if obs.outcome != replayed {
        out.push(Violation {
            oracle: "replay-equivalence",
            detail: format!(
                "final outcome {:?} disagrees with replayed outcome {replayed:?}",
                obs.outcome
            ),
        });
    }
    if obs.replay_stable == Some(false) {
        out.push(Violation {
            oracle: "replay-equivalence",
            detail: "a second replay over the same log still found in-doubt work".into(),
        });
    }
}

fn check_liveness(obs: &Observation, out: &mut Vec<Violation>) {
    // The oracle only binds when the scenario reports full fault accounting:
    // how many transient faults the schedule injected, that no hard fault
    // was armed, and what the reliability layer's retry budget was.
    let (Some(transient), Some(hard), Some(budget)) =
        (obs.transient_faults, obs.hard_faults, obs.retry_budget)
    else {
        return;
    };
    if hard > 0 || transient > budget {
        return; // outside the bounded-fault envelope: any outcome is legal
    }
    if obs.outcome != RunOutcome::Committed {
        out.push(Violation {
            oracle: "liveness-under-bounded-faults",
            detail: format!(
                "schedule injected {transient} transient fault(s) within the retry budget \
                 of {budget} and no hard faults, yet the run ended {:?} instead of Committed",
                obs.outcome
            ),
        });
    }
}

fn check_telemetry(obs: &Observation, out: &mut Vec<Violation>) {
    // The oracle binds only when the scenario records spans at all.
    if let Some(defects) = &obs.span_wellformed {
        for defect in defects {
            out.push(Violation {
                oracle: "telemetry-conformance",
                detail: format!("span tree malformed: {defect}"),
            });
        }
    }
    if let Some(projection) = &obs.span_projection {
        if *projection != obs.trace {
            out.push(Violation {
                oracle: "telemetry-conformance",
                detail: format!(
                    "span projection disagrees with the coordinator trace:\n\
                     --- projection ---\n{projection}\n--- trace ---\n{}",
                    obs.trace
                ),
            });
        }
    }
}

fn check_durability(obs: &Observation, out: &mut Vec<Violation>) {
    // The oracle binds only when the scenario reports both sides of the
    // durability contract: what the log acked and what the restart found.
    let (Some(acked), Some(survived)) = (obs.durable_acked_lsn, &obs.survived_lsns) else {
        return;
    };
    for lsn in 1..=acked {
        if !survived.contains(&lsn) {
            out.push(Violation {
                oracle: "durability",
                detail: format!(
                    "LSN {lsn} was acknowledged durable (acked up to {acked}) \
                     but did not survive the crash; survivors: {survived:?}"
                ),
            });
        }
    }
}

fn check_refinement(obs: &Observation, out: &mut Vec<Violation>) {
    // The oracle binds only when the scenario journals model events.
    let Some(events) = &obs.model_events else { return };
    for divergence in crate::model::replay_all(events) {
        let offending = events
            .get(divergence.event_index)
            .map_or_else(|| "<past end>".to_owned(), |e| format!("{e:?}"));
        out.push(Violation {
            oracle: "refinement",
            detail: format!("{divergence}; offending event: {offending}"),
        });
    }
}

fn check_eventual_resolution(obs: &Observation, out: &mut Vec<Violation>) {
    // The oracle binds only when the scenario drives termination and
    // reports its post-heal resolution accounting.
    let Some(in_doubt) = obs.in_doubt_after_resolution else { return };
    if in_doubt > 0 {
        out.push(Violation {
            oracle: "eventual-resolution",
            detail: format!(
                "{in_doubt} participant transaction(s) remain in doubt after faults \
                 ceased and partitions healed — interrogation never terminated"
            ),
        });
    }
    if let Some(heuristics) = obs.heuristics {
        if heuristics > 0 && obs.hazarded == Some(false) {
            out.push(Violation {
                oracle: "eventual-resolution",
                detail: format!(
                    "{heuristics} heuristic outcome(s) recorded for an unhazarded \
                     history — interrogation would have answered"
                ),
            });
        }
    }
}

fn check_recorder(obs: &Observation, out: &mut Vec<Violation>) {
    // The oracle binds only when the scenario attaches a flight recorder.
    let Some(events) = &obs.recorder_events else { return };
    if let Some(trace_lines) = &obs.trace_log_events {
        // The recorder mirrors every TraceLog record as a `trace`-kind
        // event; the ring may have evicted the oldest, so what remains must
        // be exactly the trace's tail, in the trace's own order.
        let retained: Vec<&String> =
            events.iter().filter(|(kind, _)| kind == "trace").map(|(_, d)| d).collect();
        if retained.len() > trace_lines.len() {
            out.push(Violation {
                oracle: "recorder-consistency",
                detail: format!(
                    "recorder retained {} trace event(s) but the trace log only \
                     recorded {} — the black box invented events",
                    retained.len(),
                    trace_lines.len()
                ),
            });
        } else {
            let tail = &trace_lines[trace_lines.len() - retained.len()..];
            if !retained.iter().zip(tail.iter()).all(|(a, b)| *a == b) {
                out.push(Violation {
                    oracle: "recorder-consistency",
                    detail: format!(
                        "recorder trace events disagree with the trace log's tail \
                         (causal order broken):\n--- recorder ---\n{}\n--- trace tail ---\n{}",
                        retained.iter().map(|s| s.as_str()).collect::<Vec<_>>().join("\n"),
                        tail.join("\n")
                    ),
                });
            }
        }
    }
    if obs.critical_path_exact == Some(false) {
        out.push(Violation {
            oracle: "recorder-consistency",
            detail: "critical-path attribution does not partition the commit span's \
                     duration exactly — a phase was double-counted or dropped"
                .into(),
        });
    }
}

fn check_causal(obs: &Observation, out: &mut Vec<Violation>) {
    // The oracle binds only when the scenario merges its recorder logs
    // into a happens-before DAG and reports the verification result.
    let Some(violations) = &obs.causal_violations else { return };
    for violation in violations {
        out.push(Violation {
            oracle: "causal-consistency",
            detail: violation.clone(),
        });
    }
}

/// The determinism oracle: two runs of the same schedule must agree on
/// every observable fact, byte for byte in the trace.
pub fn check_determinism(first: &Observation, second: &Observation) -> Vec<Violation> {
    let mut out = Vec::new();
    if first.trace != second.trace {
        out.push(Violation {
            oracle: "determinism",
            detail: format!(
                "same schedule, different traces:\n--- run 1 ---\n{}\n--- run 2 ---\n{}",
                first.trace, second.trace
            ),
        });
    }
    if first.outcome != second.outcome {
        out.push(Violation {
            oracle: "determinism",
            detail: format!("same schedule, outcomes {:?} vs {:?}", first.outcome, second.outcome),
        });
    }
    if first.participant_commits != second.participant_commits {
        out.push(Violation {
            oracle: "determinism",
            detail: format!(
                "same schedule, participant states {:?} vs {:?}",
                first.participant_commits, second.participant_commits
            ),
        });
    }
    if first.effects != second.effects {
        out.push(Violation {
            oracle: "determinism",
            detail: format!(
                "same schedule, effect counts {:?} vs {:?}",
                first.effects, second.effects
            ),
        });
    }
    if let (Some(a), Some(b)) = (first.span_fingerprint, second.span_fingerprint) {
        if a != b {
            out.push(Violation {
                oracle: "determinism",
                detail: format!(
                    "same schedule, span-tree fingerprints {a:#018x} vs {b:#018x}"
                ),
            });
        }
    }
    if let (Some(a), Some(b)) = (first.recorder_fingerprint, second.recorder_fingerprint) {
        if a != b {
            out.push(Violation {
                oracle: "determinism",
                detail: format!(
                    "same schedule, flight-recorder fingerprints {a:#018x} vs {b:#018x} \
                     — the black box is not bit-identical under replay"
                ),
            });
        }
    }
    if let (Some(a), Some(b)) = (first.causal_fingerprint, second.causal_fingerprint) {
        if a != b {
            out.push(Violation {
                oracle: "determinism",
                detail: format!(
                    "same schedule, causal-merge fingerprints {a:#018x} vs {b:#018x} \
                     — the global happens-before DAG is not bit-identical under replay"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_committed_run_passes() {
        let mut obs = Observation::new(RunOutcome::Committed);
        obs.participant_commits = vec![("store".into(), true), ("witness".into(), true)];
        obs.effects = vec![EffectCount { action: "eo".into(), observed: 1, min: 1, max: 1 }];
        assert!(check_all(&obs).is_empty());
    }

    #[test]
    fn mixed_participants_violate_atomicity() {
        let mut obs = Observation::new(RunOutcome::Committed);
        obs.participant_commits = vec![("store".into(), true), ("witness".into(), false)];
        let v = check_all(&obs);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "atomicity");
    }

    #[test]
    fn double_effect_violates_exactly_once() {
        let mut obs = Observation::new(RunOutcome::Committed);
        obs.effects = vec![EffectCount { action: "debit".into(), observed: 2, min: 1, max: 1 }];
        let v = check_all(&obs);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "exactly-once");
    }

    #[test]
    fn out_of_order_compensation_is_caught() {
        let mut obs = Observation::new(RunOutcome::Aborted);
        obs.compensation_required = true;
        obs.completed_steps = vec!["a".into(), "b".into()];
        obs.compensated_steps = vec!["a".into(), "b".into()]; // not reversed
        let v = check_all(&obs);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "compensation");
    }

    #[test]
    fn replay_must_follow_durable_decision() {
        let mut obs = Observation::new(RunOutcome::Aborted);
        obs.decision_durable = Some(true);
        obs.replay_outcome = Some(RunOutcome::Aborted);
        obs.replay_stable = Some(true);
        let v = check_all(&obs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].oracle, "replay-equivalence");
    }

    #[test]
    fn bounded_transient_faults_must_still_commit() {
        let mut obs = Observation::new(RunOutcome::Aborted);
        obs.transient_faults = Some(2);
        obs.hard_faults = Some(0);
        obs.retry_budget = Some(4);
        let v = check_all(&obs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].oracle, "liveness-under-bounded-faults");
    }

    #[test]
    fn liveness_oracle_is_silent_outside_the_envelope() {
        // Over budget: an abort is legal.
        let mut obs = Observation::new(RunOutcome::Aborted);
        obs.transient_faults = Some(9);
        obs.hard_faults = Some(0);
        obs.retry_budget = Some(4);
        assert!(check_all(&obs).is_empty());
        // A hard fault voids the liveness claim too.
        obs.transient_faults = Some(1);
        obs.hard_faults = Some(1);
        assert!(check_all(&obs).is_empty());
        // No fault accounting reported: oracle does not bind.
        let obs = Observation::new(RunOutcome::Aborted);
        assert!(check_all(&obs).is_empty());
    }

    #[test]
    fn committed_run_within_the_envelope_passes() {
        let mut obs = Observation::new(RunOutcome::Committed);
        obs.transient_faults = Some(3);
        obs.hard_faults = Some(0);
        obs.retry_budget = Some(8);
        assert!(check_all(&obs).is_empty());
    }

    #[test]
    fn telemetry_oracle_does_not_bind_without_spans() {
        let obs = Observation::new(RunOutcome::Committed);
        assert!(check_all(&obs).is_empty());
    }

    #[test]
    fn malformed_span_tree_is_a_violation() {
        let mut obs = Observation::new(RunOutcome::Committed);
        obs.span_wellformed = Some(vec!["span 3 never closed".into()]);
        obs.span_projection = Some(String::new());
        let v = check_all(&obs);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "telemetry-conformance");
    }

    #[test]
    fn span_projection_must_match_the_trace_byte_for_byte() {
        let mut obs = Observation::new(RunOutcome::Committed);
        obs.trace = "get_signal(Bill)\n".into();
        obs.span_wellformed = Some(Vec::new());
        obs.span_projection = Some("get_signal(Bill)\n".into());
        assert!(check_all(&obs).is_empty());
        obs.span_projection = Some("get_signal(Bill)".into());
        let v = check_all(&obs);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "telemetry-conformance");
    }

    #[test]
    fn determinism_compares_span_fingerprints() {
        let mut a = Observation::new(RunOutcome::Committed);
        a.span_fingerprint = Some(0xDEAD);
        let mut b = a.clone();
        assert!(check_determinism(&a, &b).is_empty());
        b.span_fingerprint = Some(0xBEEF);
        let v = check_determinism(&a, &b);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "determinism");
        // One-sided telemetry does not bind.
        b.span_fingerprint = None;
        assert!(check_determinism(&a, &b).is_empty());
    }

    #[test]
    fn durability_oracle_does_not_bind_without_accounting() {
        let mut obs = Observation::new(RunOutcome::Crashed);
        assert!(check_all(&obs).is_empty());
        // One-sided reports do not bind either.
        obs.durable_acked_lsn = Some(3);
        assert!(check_all(&obs).is_empty());
    }

    #[test]
    fn acked_records_must_survive_the_crash() {
        let mut obs = Observation::new(RunOutcome::Crashed);
        obs.durable_acked_lsn = Some(3);
        obs.survived_lsns = Some(vec![1, 2]); // lost LSN 3 after acking it
        let v = check_all(&obs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].oracle, "durability");
        assert!(v[0].detail.contains("LSN 3"));
    }

    #[test]
    fn unacked_tail_may_tear() {
        let mut obs = Observation::new(RunOutcome::Crashed);
        obs.durable_acked_lsn = Some(2);
        // LSNs 3 and 4 were staged but never acked: losing them is legal,
        // and so is their (partial) survival.
        obs.survived_lsns = Some(vec![1, 2, 4]);
        assert!(check_all(&obs).is_empty());
    }

    #[test]
    fn refinement_oracle_does_not_bind_without_model_events() {
        let obs = Observation::new(RunOutcome::Committed);
        assert!(check_all(&obs).is_empty());
    }

    #[test]
    fn a_spec_conformant_journal_passes_refinement() {
        use crate::model::{Event, Vote};
        let mut obs = Observation::new(RunOutcome::Committed);
        obs.model_events = Some(vec![
            Event::PrepareSent { participant: "store".into() },
            Event::VoteRecorded { participant: "store".into(), vote: Vote::Commit },
            Event::DecisionForced { commit: true },
            Event::OutcomeDelivered { participant: "store".into(), commit: true },
            Event::Forgotten { participant: "store".into() },
            Event::TxCompleted { committed: true },
        ]);
        assert!(check_all(&obs).is_empty());
    }

    #[test]
    fn a_spec_divergent_journal_fails_refinement() {
        use crate::model::{Event, Vote};
        let mut obs = Observation::new(RunOutcome::Committed);
        obs.model_events = Some(vec![
            Event::PrepareSent { participant: "c".into() },
            Event::VoteRecorded { participant: "c".into(), vote: Vote::Rollback },
            Event::DecisionForced { commit: true },
        ]);
        let v = check_all(&obs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].oracle, "refinement");
        assert!(v[0].detail.contains("presumed abort"), "{}", v[0].detail);
    }

    #[test]
    fn eventual_resolution_oracle_does_not_bind_without_accounting() {
        let obs = Observation::new(RunOutcome::Committed);
        assert!(check_all(&obs).is_empty());
    }

    #[test]
    fn lingering_in_doubt_participants_are_a_violation() {
        let mut obs = Observation::new(RunOutcome::Aborted);
        obs.in_doubt_after_resolution = Some(1);
        obs.heuristics = Some(0);
        obs.hazarded = Some(false);
        let v = check_all(&obs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].oracle, "eventual-resolution");
        assert!(v[0].detail.contains("remain in doubt"));
    }

    #[test]
    fn unhazarded_heuristics_are_a_violation() {
        let mut obs = Observation::new(RunOutcome::Aborted);
        obs.in_doubt_after_resolution = Some(0);
        obs.heuristics = Some(1);
        obs.hazarded = Some(false);
        let v = check_all(&obs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].oracle, "eventual-resolution");
        assert!(v[0].detail.contains("unhazarded"));
    }

    #[test]
    fn hazarded_heuristics_and_clean_resolution_pass() {
        let mut obs = Observation::new(RunOutcome::Aborted);
        obs.in_doubt_after_resolution = Some(0);
        obs.heuristics = Some(1);
        obs.hazarded = Some(true);
        assert!(check_all(&obs).is_empty());
        obs.heuristics = Some(0);
        obs.hazarded = Some(false);
        assert!(check_all(&obs).is_empty());
    }

    #[test]
    fn recorder_oracle_does_not_bind_without_a_recorder() {
        let mut obs = Observation::new(RunOutcome::Committed);
        obs.trace_log_events = Some(vec!["get_signal(2pc)".into()]);
        assert!(check_all(&obs).is_empty());
    }

    #[test]
    fn recorder_mirror_matching_the_trace_passes() {
        let mut obs = Observation::new(RunOutcome::Committed);
        obs.trace_log_events = Some(vec!["a".into(), "b".into(), "c".into()]);
        obs.recorder_events = Some(vec![
            ("span-open".into(), "commit:tx-1".into()),
            ("trace".into(), "a".into()),
            ("trace".into(), "b".into()),
            ("protocol".into(), "decision_forced(commit=true)".into()),
            ("trace".into(), "c".into()),
        ]);
        assert!(check_all(&obs).is_empty());
    }

    #[test]
    fn ring_eviction_keeps_only_the_trace_tail() {
        let mut obs = Observation::new(RunOutcome::Committed);
        obs.trace_log_events = Some(vec!["a".into(), "b".into(), "c".into()]);
        // Oldest mirror ("a") evicted by the ring: a legal tail.
        obs.recorder_events =
            Some(vec![("trace".into(), "b".into()), ("trace".into(), "c".into())]);
        assert!(check_all(&obs).is_empty());
        // But a *gap* in the middle breaks causal order.
        obs.recorder_events =
            Some(vec![("trace".into(), "a".into()), ("trace".into(), "c".into())]);
        let v = check_all(&obs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].oracle, "recorder-consistency");
        assert!(v[0].detail.contains("causal order"), "{}", v[0].detail);
    }

    #[test]
    fn recorder_with_invented_events_is_a_violation() {
        let mut obs = Observation::new(RunOutcome::Committed);
        obs.trace_log_events = Some(vec!["a".into()]);
        obs.recorder_events =
            Some(vec![("trace".into(), "a".into()), ("trace".into(), "ghost".into())]);
        let v = check_all(&obs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].oracle, "recorder-consistency");
        assert!(v[0].detail.contains("invented"), "{}", v[0].detail);
    }

    #[test]
    fn inexact_critical_path_is_a_violation() {
        let mut obs = Observation::new(RunOutcome::Committed);
        obs.recorder_events = Some(Vec::new());
        obs.critical_path_exact = Some(true);
        assert!(check_all(&obs).is_empty());
        obs.critical_path_exact = Some(false);
        let v = check_all(&obs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].oracle, "recorder-consistency");
    }

    #[test]
    fn determinism_compares_recorder_fingerprints() {
        let mut a = Observation::new(RunOutcome::Committed);
        a.recorder_fingerprint = Some(0x1111);
        let mut b = a.clone();
        assert!(check_determinism(&a, &b).is_empty());
        b.recorder_fingerprint = Some(0x2222);
        let v = check_determinism(&a, &b);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "determinism");
        assert!(v[0].detail.contains("flight-recorder"));
        // One-sided recorders do not bind.
        b.recorder_fingerprint = None;
        assert!(check_determinism(&a, &b).is_empty());
    }

    #[test]
    fn causal_oracle_does_not_bind_without_a_merge() {
        let obs = Observation::new(RunOutcome::Committed);
        assert!(check_all(&obs).is_empty());
    }

    #[test]
    fn clean_causal_merge_passes_and_violations_surface() {
        let mut obs = Observation::new(RunOutcome::Committed);
        obs.causal_violations = Some(Vec::new());
        assert!(check_all(&obs).is_empty());
        obs.causal_violations = Some(vec![
            "outcome delivered at coord#4 before any decision was forced".into(),
        ]);
        let v = check_all(&obs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].oracle, "causal-consistency");
        assert!(v[0].detail.contains("before any decision"));
    }

    #[test]
    fn determinism_compares_causal_fingerprints() {
        let mut a = Observation::new(RunOutcome::Committed);
        a.causal_fingerprint = Some(0xAAAA);
        let mut b = a.clone();
        assert!(check_determinism(&a, &b).is_empty());
        b.causal_fingerprint = Some(0xBBBB);
        let v = check_determinism(&a, &b);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "determinism");
        assert!(v[0].detail.contains("happens-before"));
        // One-sided merges do not bind.
        b.causal_fingerprint = None;
        assert!(check_determinism(&a, &b).is_empty());
    }

    #[test]
    fn determinism_compares_traces_bytewise() {
        let mut a = Observation::new(RunOutcome::Committed);
        a.trace = "GetSignal set=S\n".into();
        let mut b = a.clone();
        assert!(check_determinism(&a, &b).is_empty());
        b.trace.push(' ');
        let v = check_determinism(&a, &b);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "determinism");
    }
}
