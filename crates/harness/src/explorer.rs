//! The chaos explorer: sweep seeds into fault schedules, run every
//! schedule twice (the determinism oracle compares the runs), check the
//! invariant oracles, and shrink any violating schedule to a minimal
//! reproducer.

use crate::oracle::{self, Observation, Violation};
use crate::scenario::Scenario;
use crate::schedule::{self, FaultSchedule, ScheduleSpace};

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// First seed; schedules use `seed_start..seed_start + schedules`.
    pub seed_start: u64,
    /// Number of seeded schedules to run.
    pub schedules: u64,
    /// Largest number of fault events per schedule.
    pub max_events: usize,
    /// Whether violating schedules are shrunk to minimal reproducers.
    pub shrink: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig { seed_start: 0x5eed, schedules: 40, max_events: 4, shrink: true }
    }
}

/// One oracle violation with its (minimized) reproducer.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Scenario that failed.
    pub scenario: String,
    /// Seed whose schedule violated an oracle (`None` for the fault-free
    /// probe run).
    pub seed: Option<u64>,
    /// The schedule as generated.
    pub schedule: FaultSchedule,
    /// The schedule after shrinking (equals `schedule` when shrinking is
    /// disabled).
    pub minimized: FaultSchedule,
    /// Violations the original schedule produced.
    pub violations: Vec<Violation>,
    /// The flight recorder's dump from a run of the *minimized* schedule
    /// (`None` when the scenario attaches no recorder) — the black box
    /// that ships with the reproducer.
    pub recorder_dump: Option<String>,
    /// The merged happens-before DAG of the *minimized* schedule exported
    /// as Perfetto/Chrome-trace JSON (`None` when the scenario builds no
    /// causal merge) — load it in `ui.perfetto.dev` to see the failing
    /// interleaving, one track per node, flow arrows per message.
    pub causal_trace: Option<String>,
}

impl FailureReport {
    /// A copy-pasteable reproducer: seed, minimized schedule and the
    /// violated oracles, formatted as a Rust test body. When the scenario
    /// attaches a flight recorder, its dump from the minimized schedule is
    /// appended as comment lines.
    pub fn repro(&self) -> String {
        let oracles: Vec<&str> = self.violations.iter().map(|v| v.oracle).collect();
        let seed = self
            .seed
            .map_or_else(|| "probe (fault-free)".to_owned(), |s| format!("{s}"));
        let mut out = format!(
            "// scenario: {} | seed: {} | violated: {:?}\n\
             // minimal reproducer ({} fault events):\n\
             let schedule = {};\n\
             let violations = harness::oracle::check_all(&scenario.run(&schedule));\n\
             assert!(violations.is_empty(), \"{{violations:?}}\");\n",
            self.scenario,
            seed,
            oracles,
            self.minimized.len(),
            self.minimized,
        );
        if let Some(dump) = &self.recorder_dump {
            out.push_str("//\n// flight recorder at failure:\n");
            for line in dump.lines() {
                out.push_str("//   ");
                out.push_str(line);
                out.push('\n');
            }
        }
        if let Some(trace) = &self.causal_trace {
            out.push_str(&format!(
                "//\n// causal Perfetto trace attached ({} bytes) — write it to a\n\
                 // .json file and open in ui.perfetto.dev\n",
                trace.len()
            ));
        }
        out
    }

    /// Write the attached Perfetto trace to
    /// `{dir}/{scenario}-{seed}.perfetto.json` and return the path, or
    /// `None` when no causal trace was captured.
    pub fn write_causal_trace(&self, dir: &std::path::Path) -> Option<std::path::PathBuf> {
        let trace = self.causal_trace.as_ref()?;
        let seed = self.seed.map_or_else(|| "probe".to_owned(), |s| format!("{s}"));
        let path = dir.join(format!("{}-{seed}.perfetto.json", self.scenario));
        std::fs::create_dir_all(dir).ok()?;
        std::fs::write(&path, trace).ok()?;
        Some(path)
    }
}

/// Everything one sweep produced.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Scenario swept.
    pub scenario: String,
    /// Schedules executed (excluding the probe and shrink re-runs).
    pub schedules_run: u64,
    /// Order-sensitive digest of every run's observable facts; two sweeps
    /// of the same scenario and config must produce identical
    /// fingerprints.
    pub fingerprint: u64,
    /// Oracle violations found, with minimal reproducers.
    pub failures: Vec<FailureReport>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fingerprint_run(hash: u64, seed: u64, obs: &Observation, violations: usize) -> u64 {
    let mut hash = fnv_fold(hash, &seed.to_le_bytes());
    hash = fnv_fold(hash, &[obs.outcome as u8, violations as u8]);
    hash = fnv_fold(hash, obs.trace.as_bytes());
    for (name, committed) in &obs.participant_commits {
        hash = fnv_fold(hash, name.as_bytes());
        hash = fnv_fold(hash, &[u8::from(*committed)]);
    }
    for effect in &obs.effects {
        hash = fnv_fold(hash, effect.action.as_bytes());
        hash = fnv_fold(hash, &effect.observed.to_le_bytes());
    }
    if let Some(recorder) = obs.recorder_fingerprint {
        hash = fnv_fold(hash, &recorder.to_le_bytes());
    }
    if let Some(causal) = obs.causal_fingerprint {
        hash = fnv_fold(hash, &causal.to_le_bytes());
    }
    hash
}

fn violations_for(scenario: &dyn Scenario, schedule: &FaultSchedule) -> Vec<Violation> {
    let first = scenario.run(schedule);
    let second = scenario.run(schedule);
    let mut violations = oracle::check_all(&first);
    violations.extend(oracle::check_determinism(&first, &second));
    violations
}

/// Greedy delta-debugging: repeatedly drop single events while the
/// schedule still violates an oracle. The result is 1-minimal — removing
/// any one remaining event makes the failure vanish.
pub fn shrink(scenario: &dyn Scenario, schedule: &FaultSchedule) -> FaultSchedule {
    let mut current = schedule.clone();
    'outer: loop {
        for index in 0..current.len() {
            let candidate = current.without_event(index);
            if !violations_for(scenario, &candidate).is_empty() {
                current = candidate;
                continue 'outer;
            }
        }
        return current;
    }
}

/// Sweep `scenario` under `config`: probe the schedule space, then run
/// every seeded schedule twice and oracle-check it.
pub fn sweep(scenario: &dyn Scenario, config: &SweepConfig) -> SweepReport {
    let probe = scenario.run(&FaultSchedule::empty());
    let mut fingerprint = FNV_OFFSET;
    let mut failures = Vec::new();

    let probe_violations = oracle::check_all(&probe);
    fingerprint = fingerprint_run(fingerprint, u64::MAX, &probe, probe_violations.len());
    if !probe_violations.is_empty() {
        failures.push(FailureReport {
            scenario: scenario.name().to_owned(),
            seed: None,
            schedule: FaultSchedule::empty(),
            minimized: FaultSchedule::empty(),
            violations: probe_violations,
            recorder_dump: probe.recorder_dump.clone(),
            causal_trace: probe.causal_perfetto.clone(),
        });
    }

    let space = ScheduleSpace {
        sites: probe.observed_sites.clone(),
        remote_messages: probe.remote_messages,
        max_events: config.max_events,
        partition_nodes: probe.partition_nodes.clone(),
        restart_sites: probe.restart_sites.clone(),
    };
    for offset in 0..config.schedules {
        let seed = config.seed_start + offset;
        let sched = schedule::generate(seed, &space);
        let first = scenario.run(&sched);
        let second = scenario.run(&sched);
        let mut violations = oracle::check_all(&first);
        violations.extend(oracle::check_determinism(&first, &second));
        fingerprint = fingerprint_run(fingerprint, seed, &first, violations.len());
        if !violations.is_empty() {
            let minimized =
                if config.shrink { shrink(scenario, &sched) } else { sched.clone() };
            // One extra run of the minimized schedule captures the black
            // box and the causal trace that match the reproducer the
            // report ships.
            let rerun = scenario.run(&minimized);
            failures.push(FailureReport {
                scenario: scenario.name().to_owned(),
                seed: Some(seed),
                schedule: sched,
                minimized,
                violations,
                recorder_dump: rerun.recorder_dump,
                causal_trace: rerun.causal_perfetto,
            });
        }
    }

    // When HARNESS_TRACE_DIR is set (CI does this), every failure's causal
    // Perfetto trace is written out as an artifact next to the repro.
    if let Ok(dir) = std::env::var("HARNESS_TRACE_DIR") {
        for failure in &failures {
            failure.write_causal_trace(std::path::Path::new(&dir));
        }
    }

    SweepReport {
        scenario: scenario.name().to_owned(),
        schedules_run: config.schedules,
        fingerprint,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{EffectCount, RunOutcome};
    use crate::schedule::FaultEvent;

    /// A synthetic scenario violating exactly-once whenever the schedule
    /// contains `DuplicateMessage { nth: 1 }` — any other event is noise
    /// the shrinker must strip.
    struct Synthetic;

    impl Scenario for Synthetic {
        fn name(&self) -> &'static str {
            "synthetic"
        }

        fn run(&self, schedule: &FaultSchedule) -> Observation {
            let buggy = schedule
                .events()
                .iter()
                .any(|e| matches!(e, FaultEvent::DuplicateMessage { nth: 1 }));
            let mut obs = Observation::new(RunOutcome::Committed);
            obs.effects = vec![EffectCount {
                action: "effect".into(),
                observed: if buggy { 2 } else { 1 },
                min: 1,
                max: 1,
            }];
            obs.trace = format!("buggy={buggy}\n");
            obs.observed_sites = vec!["syn.site".into()];
            obs.remote_messages = 2;
            obs
        }
    }

    #[test]
    fn shrink_strips_noise_events() {
        let schedule = FaultSchedule::from_events(vec![
            FaultEvent::DropMessage { nth: 0 },
            FaultEvent::ArmFailpoint { site: "syn.site".into(), after: 1 },
            FaultEvent::DuplicateMessage { nth: 1 },
            FaultEvent::DropMessage { nth: 3 },
        ]);
        let minimal = shrink(&Synthetic, &schedule);
        assert_eq!(minimal.events(), &[FaultEvent::DuplicateMessage { nth: 1 }]);
    }

    #[test]
    fn sweep_finds_and_minimizes_the_planted_bug() {
        let config = SweepConfig { seed_start: 0, schedules: 60, ..SweepConfig::default() };
        let report = sweep(&Synthetic, &config);
        assert_eq!(report.schedules_run, 60);
        assert!(!report.failures.is_empty(), "some seed must draw the buggy event");
        for failure in &report.failures {
            assert_eq!(failure.minimized.len(), 1);
            assert!(failure.repro().contains("seed"));
            assert!(failure.repro().contains("DuplicateMessage { nth: 1 }"));
        }
    }

    #[test]
    fn sweeps_are_reproducible() {
        let config = SweepConfig::default();
        let a = sweep(&Synthetic, &config);
        let b = sweep(&Synthetic, &config);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.failures.len(), b.failures.len());
    }
}
