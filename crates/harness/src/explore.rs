//! Exhaustive bounded-schedule exploration with dynamic partial-order
//! reduction (DPOR).
//!
//! Where [`crate::explorer`] *samples* the schedule space (seeded random
//! fault schedules), this module *enumerates* it: every interleaving of
//! ORB deliveries the coordinator can choose between, crossed with every
//! single-crash fault plan, up to a configurable execution/wall-clock
//! budget. Coverage claims ("no reachable execution at this depth
//! violates the spec") need enumeration, not sampling.
//!
//! # How an execution is named
//!
//! A scenario exposes its nondeterminism through the
//! [`orb::choice::DeliverySequencer`] hook: wherever the implementation
//! has more than one pending delivery to pick from, it asks the sequencer
//! which to deliver next. An execution is therefore named by a
//! **prescription** — a vector of choice indices, one per decision point,
//! with `0` (registration order) assumed past the prescribed prefix. The
//! explorer runs the empty prescription first, reads back which choice
//! points the run actually hit ([`ChoiceDriver::taken`]), and pushes one
//! child prescription per untaken alternative — a depth-first search that
//! visits each distinct schedule exactly once.
//!
//! # The reduction
//!
//! Most alternatives commute: delivering `prepare` to `a` before `b` or
//! `b` before `a` reaches the same state when both vote yes, because
//! clean deliveries to distinct participants in the same round are
//! independent. The scenario reports each delivery's disruptiveness
//! through [`orb::choice::DeliverySequencer::report`] (`clean = false`
//! for a veto, an error, a crashed call); the driver counts dirty
//! reports, and each choice point remembers the count at its creation.
//! After a run, a choice point whose suffix saw **no** dirty delivery had
//! only commuting alternatives — the whole subtree is pruned (sleep-set
//! style). A veto keeps every earlier choice point hot (who vetoes first
//! is order-dependent), while crash fault plans arm failpoints *between*
//! rounds and leave clean rounds prunable: recovery resolves every
//! in-doubt participant uniformly from the durable decision, so
//! intra-round order cannot matter. The honesty check on the reduction is
//! measured, not assumed: [`ExploreReport::distinct_fingerprints`] must
//! match between a reduced and an unreduced enumeration (see
//! `tests/model_check.rs`).
//!
//! Every enumerated execution is checked by all nine oracles — including
//! the refinement oracle replaying the run's journal through
//! [`crate::model`] — and any divergence is shrunk to a 1-minimal
//! [`ExploreSchedule`] by [`shrink_explored`].

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use orb::choice::{clamp_choice, DeliverySequencer};
use parking_lot::Mutex;

use crate::oracle::{self, Observation, Violation};
use crate::schedule::{FaultEvent, FaultSchedule};

/// A scenario the explorer can enumerate: runs hermetically under a fault
/// schedule and routes every delivery-order decision through the driver.
pub trait Explorable {
    /// Stable name for reports.
    fn name(&self) -> &str;
    /// One hermetic run. The scenario must install `driver` as the
    /// [`DeliverySequencer`] of every component with delivery choices and
    /// should journal model events into the observation so the refinement
    /// oracle binds.
    fn run_exploration(&self, faults: &FaultSchedule, driver: &Arc<ChoiceDriver>) -> Observation;
}

/// One decision point a run passed through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoicePoint {
    /// Protocol stage the choice arose in (`"prepare"`, `"phase2"`, ...).
    pub stage: String,
    /// Labels of the deliveries that were pending, registration order.
    pub pending: Vec<String>,
    /// How many alternatives existed (`pending.len()`).
    pub options: usize,
    /// The index actually taken.
    pub chosen: usize,
    /// The driver's dirty-delivery count when this point was created;
    /// compared against the final count for the DPOR pruning rule.
    pub dirty_at_creation: u64,
}

/// A [`DeliverySequencer`] that replays a prescription and records the
/// choice points it steers — the explorer's steering wheel and odometer
/// in one.
#[derive(Debug, Default)]
pub struct ChoiceDriver {
    prescribed: Vec<usize>,
    taken: Mutex<Vec<ChoicePoint>>,
    dirty: Mutex<u64>,
}

impl ChoiceDriver {
    /// A driver replaying `prescribed`, choosing index 0 (registration
    /// order) past its end.
    #[must_use]
    pub fn new(prescribed: Vec<usize>) -> Arc<Self> {
        Arc::new(ChoiceDriver { prescribed, taken: Mutex::new(Vec::new()), dirty: Mutex::new(0) })
    }

    /// The choice points the run hit, in order.
    #[must_use]
    pub fn taken(&self) -> Vec<ChoicePoint> {
        self.taken.lock().clone()
    }

    /// Total disruptive (non-clean) deliveries reported.
    #[must_use]
    pub fn total_dirty(&self) -> u64 {
        *self.dirty.lock()
    }
}

impl DeliverySequencer for ChoiceDriver {
    fn next_delivery(&self, stage: &str, pending: &[&str]) -> usize {
        let mut taken = self.taken.lock();
        let chosen =
            clamp_choice(self.prescribed.get(taken.len()).copied().unwrap_or(0), pending.len());
        taken.push(ChoicePoint {
            stage: stage.to_owned(),
            pending: pending.iter().map(|p| (*p).to_owned()).collect(),
            options: pending.len(),
            chosen,
            dirty_at_creation: *self.dirty.lock(),
        });
        chosen
    }

    fn report(&self, _stage: &str, _peer: &str, clean: bool) {
        if !clean {
            *self.dirty.lock() += 1;
        }
    }
}

/// One fully-named execution: the fault plan plus the delivery-order
/// prescription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreSchedule {
    /// Faults armed for the run.
    pub faults: FaultSchedule,
    /// Delivery-choice prescription (index 0 past its end).
    pub choices: Vec<usize>,
}

impl std::fmt::Display for ExploreSchedule {
    /// Copy-pasteable: the fault constructor plus the choice vector.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExploreSchedule {{ faults: {}, choices: vec!{:?} }}", self.faults, self.choices)
    }
}

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Crash failpoints armed per fault plan (0 = fault-free only,
    /// 1 = one plan per discovered site).
    pub max_crashes: u32,
    /// Whether the partial-order reduction prunes commuting subtrees.
    pub dpor: bool,
    /// Hard ceiling on enumerated executions; exceeding it sets
    /// [`ExploreReport::truncated`].
    pub max_executions: u64,
    /// Wall-clock budget; exceeding it sets [`ExploreReport::truncated`].
    pub budget: Option<Duration>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig { max_crashes: 1, dpor: true, max_executions: 20_000, budget: None }
    }
}

/// One oracle divergence with its minimized reproducer.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Scenario that diverged.
    pub scenario: String,
    /// The execution as enumerated.
    pub schedule: ExploreSchedule,
    /// The 1-minimal execution still reproducing a violation.
    pub minimized: ExploreSchedule,
    /// Violations the original execution produced.
    pub violations: Vec<Violation>,
    /// The flight recorder's dump from a run of the minimized execution
    /// (`None` when the scenario attaches no recorder).
    pub recorder_dump: Option<String>,
}

impl Divergence {
    /// A copy-pasteable reproducer, with the minimized execution's flight
    /// recorder appended as comment lines when one was attached.
    #[must_use]
    pub fn repro(&self) -> String {
        let oracles: Vec<&str> = self.violations.iter().map(|v| v.oracle).collect();
        let mut out = format!(
            "// scenario: {} | violated: {:?}\n\
             // minimal execution ({} fault event(s), {} prescribed choice(s)):\n\
             let schedule = {};\n\
             let driver = harness::explore::ChoiceDriver::new(schedule.choices.clone());\n\
             let violations = harness::oracle::check_all(&scenario.run_exploration(&schedule.faults, &driver));\n\
             assert!(violations.is_empty(), \"{{violations:?}}\");\n",
            self.scenario,
            oracles,
            self.minimized.faults.len(),
            self.minimized.choices.len(),
            self.minimized,
        );
        if let Some(dump) = &self.recorder_dump {
            out.push_str("//\n// flight recorder at failure:\n");
            for line in dump.lines() {
                out.push_str("//   ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

/// What an exploration covered and found.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Scenario explored.
    pub scenario: String,
    /// Executions actually run.
    pub executions: u64,
    /// Subtrees the reduction pruned (choice points whose alternatives
    /// all commuted).
    pub pruned_subtrees: u64,
    /// Distinct observation fingerprints across all executions — the
    /// state-coverage measure a reduced run must preserve.
    pub distinct_fingerprints: usize,
    /// Most choice points any single execution hit (the depth bound
    /// actually reached).
    pub max_choice_points: usize,
    /// Fault plans enumerated (fault-free probe plan included).
    pub fault_plans: usize,
    /// Oracle divergences, each with a minimized reproducer.
    pub divergences: Vec<Divergence>,
    /// Whether a budget cut enumeration short — coverage claims are void.
    pub truncated: bool,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fingerprint(obs: &Observation) -> u64 {
    let mut hash = FNV_OFFSET;
    hash = fnv_fold(hash, obs.trace.as_bytes());
    hash = fnv_fold(hash, &[obs.outcome as u8]);
    for (name, committed) in &obs.participant_commits {
        hash = fnv_fold(hash, name.as_bytes());
        hash = fnv_fold(hash, &[u8::from(*committed)]);
    }
    if let Some(events) = &obs.model_events {
        hash = fnv_fold(hash, format!("{events:?}").as_bytes());
    }
    hash
}

/// Enumerate every execution of `scenario` within `config`'s bounds,
/// oracle-checking each one.
pub fn explore(scenario: &dyn Explorable, config: &ExploreConfig) -> ExploreReport {
    let started = Instant::now();
    let mut report = ExploreReport { scenario: scenario.name().to_owned(), ..Default::default() };

    // Probe: discover the failpoint sites the fault plans enumerate over.
    let probe_driver = ChoiceDriver::new(Vec::new());
    let probe = scenario.run_exploration(&FaultSchedule::empty(), &probe_driver);
    let mut sites = probe.observed_sites.clone();
    sites.sort();
    sites.dedup();

    let mut plans = vec![FaultSchedule::empty()];
    if config.max_crashes >= 1 {
        for site in &sites {
            plans.push(FaultSchedule::from_events(vec![FaultEvent::ArmFailpoint {
                site: site.clone(),
                after: 0,
            }]));
        }
    }
    report.fault_plans = plans.len();

    let mut fingerprints = BTreeSet::new();
    'plans: for faults in &plans {
        // Depth-first over prescriptions, starting from the default path.
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        while let Some(prescription) = stack.pop() {
            let over_budget =
                config.budget.is_some_and(|budget| started.elapsed() >= budget);
            if report.executions >= config.max_executions || over_budget {
                report.truncated = true;
                break 'plans;
            }

            let driver = ChoiceDriver::new(prescription.clone());
            let obs = scenario.run_exploration(faults, &driver);
            report.executions += 1;
            fingerprints.insert(fingerprint(&obs));

            let violations = oracle::check_all(&obs);
            if !violations.is_empty() {
                let schedule =
                    ExploreSchedule { faults: faults.clone(), choices: prescription.clone() };
                let minimized = shrink_explored(scenario, &schedule);
                // One more run of the minimized execution captures the
                // black box that matches the shipped reproducer.
                let minimized_driver = ChoiceDriver::new(minimized.choices.clone());
                let recorder_dump =
                    scenario.run_exploration(&minimized.faults, &minimized_driver).recorder_dump;
                report.divergences.push(Divergence {
                    scenario: scenario.name().to_owned(),
                    schedule,
                    minimized,
                    violations,
                    recorder_dump,
                });
            }

            let taken = driver.taken();
            let total_dirty = driver.total_dirty();
            report.max_choice_points = report.max_choice_points.max(taken.len());

            // Branch on every choice point past the prescribed prefix: the
            // prefix was fixed by an ancestor, so re-branching it would
            // enumerate paths twice.
            for (index, point) in taken.iter().enumerate().skip(prescription.len()) {
                if point.options <= 1 {
                    continue;
                }
                if config.dpor && total_dirty == point.dirty_at_creation {
                    // No disruptive delivery at or after this point: every
                    // alternative commutes with the chosen order.
                    report.pruned_subtrees += 1;
                    continue;
                }
                for alt in 1..point.options {
                    let mut child: Vec<usize> =
                        taken[..index].iter().map(|p| p.chosen).collect();
                    child.push(alt);
                    stack.push(child);
                }
            }
        }
    }
    report.distinct_fingerprints = fingerprints.len();
    report
}

fn still_diverges(scenario: &dyn Explorable, candidate: &ExploreSchedule) -> bool {
    let driver = ChoiceDriver::new(candidate.choices.clone());
    let obs = scenario.run_exploration(&candidate.faults, &driver);
    !oracle::check_all(&obs).is_empty()
}

/// Greedy delta-debugging over an explored execution: drop fault events,
/// truncate trailing choices and decrement individual choices while a
/// violation still reproduces. The result is 1-minimal — no single
/// remaining step can be removed or lowered.
pub fn shrink_explored(scenario: &dyn Explorable, schedule: &ExploreSchedule) -> ExploreSchedule {
    let mut current = schedule.clone();
    'outer: loop {
        for index in 0..current.faults.len() {
            let candidate = ExploreSchedule {
                faults: current.faults.without_event(index),
                choices: current.choices.clone(),
            };
            if still_diverges(scenario, &candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        if !current.choices.is_empty() {
            let candidate = ExploreSchedule {
                faults: current.faults.clone(),
                choices: current.choices[..current.choices.len() - 1].to_vec(),
            };
            if still_diverges(scenario, &candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        for index in 0..current.choices.len() {
            if current.choices[index] == 0 {
                continue;
            }
            let mut choices = current.choices.clone();
            choices[index] -= 1;
            let candidate = ExploreSchedule { faults: current.faults.clone(), choices };
            if still_diverges(scenario, &candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        return current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::RunOutcome;

    /// A synthetic scenario with two rounds of three pending deliveries.
    /// It journals nothing and violates an oracle only when the first
    /// round delivers "c" first — a planted order-dependence the explorer
    /// must find and the shrinker must reduce to `choices: [2]`.
    struct OrderSensitive;

    impl Explorable for OrderSensitive {
        fn name(&self) -> &str {
            "order-sensitive"
        }

        fn run_exploration(
            &self,
            _faults: &FaultSchedule,
            driver: &Arc<ChoiceDriver>,
        ) -> Observation {
            let mut first_delivered = None;
            for round in ["prepare", "phase2"] {
                let mut pending = vec!["a", "b", "c"];
                while !pending.is_empty() {
                    let pick = if pending.len() > 1 {
                        driver.next_delivery(round, &pending)
                    } else {
                        0
                    };
                    let peer = pending.remove(pick);
                    // "c" is the disruptive peer: its delivery is dirty,
                    // so orders around it stay hot under DPOR.
                    driver.report(round, peer, peer != "c");
                    if round == "prepare" && first_delivered.is_none() {
                        first_delivered = Some(peer);
                    }
                }
            }
            let mut obs = Observation::new(RunOutcome::Committed);
            obs.trace = format!("first={first_delivered:?}");
            if first_delivered == Some("c") {
                // Planted: delivering c first loses a participant.
                obs.participant_commits = vec![("a".into(), false)];
            }
            obs
        }
    }

    #[test]
    fn exhaustive_enumeration_visits_every_interleaving() {
        // Two rounds of 3 pending deliveries: 6 orders each, but DFS
        // branches only where choices exist (3 * 2 per round) = 36 paths.
        let config = ExploreConfig { max_crashes: 0, dpor: false, ..Default::default() };
        let report = explore(&OrderSensitive, &config);
        assert_eq!(report.executions, 36);
        assert!(!report.truncated);
        assert_eq!(report.max_choice_points, 4);
    }

    #[test]
    fn the_planted_order_dependence_is_found_and_shrunk_to_one_choice() {
        let config = ExploreConfig { max_crashes: 0, dpor: false, ..Default::default() };
        let report = explore(&OrderSensitive, &config);
        // 12 of 36 paths deliver c first (choices starting [2] or [1,1]).
        assert_eq!(report.divergences.len(), 12);
        for divergence in &report.divergences {
            assert!(divergence.minimized.faults.is_empty());
            assert_eq!(divergence.minimized.choices, vec![2], "{divergence:?}");
        }
    }

    #[test]
    fn dpor_reduces_without_losing_states_or_the_divergence() {
        // Once "c" (the only dirty delivery of a round) is out, the
        // remaining a/b orders commute — DPOR prunes those suffixes but
        // must preserve every distinct state and still hit the planted
        // divergence.
        let full = explore(&OrderSensitive, &ExploreConfig {
            max_crashes: 0,
            dpor: false,
            ..Default::default()
        });
        let reduced = explore(&OrderSensitive, &ExploreConfig {
            max_crashes: 0,
            dpor: true,
            ..Default::default()
        });
        assert!(reduced.executions < full.executions, "{reduced:?}");
        assert!(reduced.pruned_subtrees > 0);
        assert_eq!(reduced.distinct_fingerprints, full.distinct_fingerprints);
        assert!(!reduced.divergences.is_empty());
        assert_eq!(reduced.divergences[0].minimized.choices, vec![2]);
    }

    /// All-clean variant: every delivery commutes, so DPOR collapses the
    /// whole space to the default path.
    struct AllClean;

    impl Explorable for AllClean {
        fn name(&self) -> &str {
            "all-clean"
        }

        fn run_exploration(
            &self,
            _faults: &FaultSchedule,
            driver: &Arc<ChoiceDriver>,
        ) -> Observation {
            let mut pending = vec!["a", "b", "c"];
            while !pending.is_empty() {
                let pick = if pending.len() > 1 {
                    driver.next_delivery("prepare", &pending)
                } else {
                    0
                };
                let peer = pending.remove(pick);
                driver.report("prepare", peer, true);
            }
            Observation::new(RunOutcome::Committed)
        }
    }

    #[test]
    fn a_fully_commuting_round_collapses_to_one_execution_under_dpor() {
        let reduced = explore(&AllClean, &ExploreConfig {
            max_crashes: 0,
            dpor: true,
            ..Default::default()
        });
        assert_eq!(reduced.executions, 1);
        assert_eq!(reduced.pruned_subtrees, 2);
        let full = explore(&AllClean, &ExploreConfig {
            max_crashes: 0,
            dpor: false,
            ..Default::default()
        });
        assert_eq!(full.executions, 6);
        // The reduction must not lose states: one distinct fingerprint
        // either way.
        assert_eq!(reduced.distinct_fingerprints, full.distinct_fingerprints);
    }

    #[test]
    fn the_execution_ceiling_truncates_and_says_so() {
        let config =
            ExploreConfig { max_crashes: 0, dpor: false, max_executions: 5, budget: None };
        let report = explore(&OrderSensitive, &config);
        assert!(report.truncated);
        assert_eq!(report.executions, 5);
    }

    #[test]
    fn a_zero_wall_clock_budget_truncates_immediately() {
        let config = ExploreConfig {
            max_crashes: 0,
            dpor: false,
            max_executions: u64::MAX,
            budget: Some(Duration::from_secs(0)),
        };
        let report = explore(&OrderSensitive, &config);
        assert!(report.truncated);
    }
}
