//! Deterministic simulation harness for the CORBA Activity Service
//! reproduction — a FoundationDB-style chaos explorer over the repo's
//! extended-transaction workloads.
//!
//! The paper's §3.4 makes hard guarantees — at-least-once Signal delivery,
//! exactly-once via the transaction service, presumed-abort recovery,
//! compensation on failure. This crate *hunts* for executions that break
//! them:
//!
//! * [`schedule`] — seeds map deterministically to small, discrete
//!   [`schedule::FaultSchedule`]s: arm a named failpoint
//!   ([`recovery_log::FailpointSet`]), drop or duplicate the n-th remote
//!   message ([`orb::FaultScript`]), partition a node over a virtual-time
//!   window, or crash-and-restart a site through its recovery path.
//!   Discrete events (not fault *rates*) make every run replayable and
//!   every schedule shrinkable.
//! * [`scenario`] + [`scenarios`] — hermetic end-to-end adapters, one per
//!   figure-test: 2PC with WAL replay, fig. 9 open nesting, Sagas, the
//!   fig. 10 workflow over the simulated ORB, BTP atoms, plus an
//!   intentionally broken fixture the sweep must catch.
//! * [`oracle`] — twelve invariants checked after every run: atomicity,
//!   exactly-once effect counts, reverse-order compensation completeness,
//!   WAL-replay equivalence, trace determinism (same seed ⇒ byte-identical
//!   trace), liveness under bounded transient faults (drops within the
//!   retry budget must not prevent commit), telemetry conformance (the
//!   span tree is well-formed and its projection onto coordinator events is
//!   byte-identical to the trace), durability (acked LSNs survive crashes),
//!   refinement (the run's journal replays cleanly through the
//!   executable reference models), and eventual resolution (once faults
//!   cease and partitions heal no participant stays in-doubt, and
//!   heuristics are recorded only for genuinely hazarded histories), and
//!   recorder consistency (the flight recorder's retained window is a
//!   causally-contiguous suffix of the trace, fingerprints replay
//!   bit-identically, and critical-path attribution partitions the
//!   commit span exactly), and causal consistency (the merged
//!   happens-before DAG over every node's Lamport-stamped log is acyclic,
//!   receive-after-send on every wire edge, and protocol-ordered — no
//!   outcome before its decision, no vote after it, no completion before
//!   phase two landed).
//! * [`model`] — executable reference models transcribed from the paper:
//!   presumed-abort 2PC, fig. 4 nesting, fig. 5 checked signal sets, §5.1
//!   saga compensation. Pure `step(state, event)` machines the refinement
//!   oracle replays observed journals through.
//! * [`explorer`] — the sweep loop: probe the schedule space (failpoint
//!   sites are *discovered* from the run, not hardcoded), generate seeded
//!   schedules, run each twice, oracle-check, and greedily shrink any
//!   violation to a 1-minimal reproducer printed as a copy-pasteable test.
//! * [`explore`] — the exhaustive counterpart: enumerate *every* delivery
//!   interleaving × single-crash fault plan up to a bounded depth, with
//!   dynamic partial-order reduction pruning commuting subtrees, and
//!   shrink any divergence to a 1-minimal execution.
//! * [`registry`] — the workspace failpoint-site audit: probe runs must
//!   observe exactly the sites each crate's `failpoints` constants
//!   declare.

pub mod explore;
pub mod explorer;
pub mod model;
pub mod oracle;
pub mod registry;
pub mod scenario;
pub mod scenarios;
pub mod schedule;

pub use explore::{
    explore, shrink_explored, ChoiceDriver, ChoicePoint, Divergence, Explorable, ExploreConfig,
    ExploreReport, ExploreSchedule,
};
pub use explorer::{shrink, sweep, FailureReport, SweepConfig, SweepReport};
pub use model::{replay_all, Event as ModelEvent, SpecViolation};
pub use oracle::{check_all, check_determinism, EffectCount, Observation, RunOutcome, Violation};
pub use scenario::Scenario;
pub use schedule::{generate, FaultEvent, FaultSchedule, ScheduleSpace};
