//! Deterministic simulation harness for the CORBA Activity Service
//! reproduction — a FoundationDB-style chaos explorer over the repo's
//! extended-transaction workloads.
//!
//! The paper's §3.4 makes hard guarantees — at-least-once Signal delivery,
//! exactly-once via the transaction service, presumed-abort recovery,
//! compensation on failure. This crate *hunts* for executions that break
//! them:
//!
//! * [`schedule`] — seeds map deterministically to small, discrete
//!   [`schedule::FaultSchedule`]s: arm a named failpoint
//!   ([`recovery_log::FailpointSet`]), drop or duplicate the n-th remote
//!   message ([`orb::FaultScript`]). Discrete events (not fault *rates*)
//!   make every run replayable and every schedule shrinkable.
//! * [`scenario`] + [`scenarios`] — hermetic end-to-end adapters, one per
//!   figure-test: 2PC with WAL replay, fig. 9 open nesting, Sagas, the
//!   fig. 10 workflow over the simulated ORB, BTP atoms, plus an
//!   intentionally broken fixture the sweep must catch.
//! * [`oracle`] — seven invariants checked after every run: atomicity,
//!   exactly-once effect counts, reverse-order compensation completeness,
//!   WAL-replay equivalence, trace determinism (same seed ⇒ byte-identical
//!   trace), liveness under bounded transient faults (drops within the
//!   retry budget must not prevent commit), and telemetry conformance (the
//!   span tree is well-formed and its projection onto coordinator events is
//!   byte-identical to the trace).
//! * [`explorer`] — the sweep loop: probe the schedule space (failpoint
//!   sites are *discovered* from the run, not hardcoded), generate seeded
//!   schedules, run each twice, oracle-check, and greedily shrink any
//!   violation to a 1-minimal reproducer printed as a copy-pasteable test.
//! * [`registry`] — the workspace failpoint-site audit: probe runs must
//!   observe exactly the sites each crate's `failpoints` constants
//!   declare.

pub mod explorer;
pub mod oracle;
pub mod registry;
pub mod scenario;
pub mod scenarios;
pub mod schedule;

pub use explorer::{shrink, sweep, FailureReport, SweepConfig, SweepReport};
pub use oracle::{check_all, check_determinism, EffectCount, Observation, RunOutcome, Violation};
pub use scenario::Scenario;
pub use schedule::{generate, FaultEvent, FaultSchedule, ScheduleSpace};
