//! Executable reference models of the paper's protocols.
//!
//! Each submodule is a small, pure state machine — `step(state, event)`
//! either advances the state or yields a [`SpecViolation`] — transcribing
//! one protocol the paper specifies:
//!
//! * [`twopc`] — presumed-abort two-phase commit (§2, §12 of DESIGN.md):
//!   a commit decision needs a unanimous yes-vote, only the decision is
//!   forced, commit deliveries happen only under a forced decision, and
//!   forget follows delivery.
//! * [`nesting`] — fig. 4 activity nesting: children begin under live
//!   parents and complete before them; nothing completes twice.
//! * [`signal_set`] — fig. 5 checked-signal processing: every transmitted
//!   signal's response is collated before the set outcome is read, and a
//!   failure response must propagate to the outcome.
//! * [`saga`] — §5.1 compensation: committed steps are compensated in
//!   reverse order, and an aborted saga compensates everything.
//!
//! All four machines consume the shared [`Event`] vocabulary, ignoring
//! events that belong to other protocols, so a scenario can journal one
//! flat trace and [`replay_all`] audits it against every model at once.
//! The explorer's refinement oracle (oracle #9) calls [`replay_all`] on
//! every execution it enumerates; the first divergence is shrunk to a
//! 1-minimal schedule.
//!
//! The models deliberately know nothing about the implementation: they
//! are transcriptions of the paper, auditable against PAPER.md alone.

pub mod nesting;
pub mod saga;
pub mod signal_set;
pub mod twopc;

use std::fmt;

/// How a participant answered a prepare request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vote {
    /// Yes — the participant can commit and holds durable prepared state.
    Commit,
    /// Yes, but nothing to persist; drop out of phase two.
    ReadOnly,
    /// No — the participant refuses the transaction.
    Rollback,
    /// The prepare call itself failed; counts as a refusal.
    Failed,
}

impl Vote {
    /// Whether this vote permits a commit decision.
    #[must_use]
    pub fn is_yes(self) -> bool {
        matches!(self, Vote::Commit | Vote::ReadOnly)
    }
}

/// One observable protocol step, in the shared vocabulary all reference
/// models consume. Scenarios map their implementation journals
/// ([`ots::ProtocolJournal`], [`activity_service::ActivityJournal`],
/// trace logs) into this enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    // --- presumed-abort two-phase commit ---
    /// The coordinator asked a participant to prepare.
    PrepareSent { participant: String },
    /// The participant's vote came back.
    VoteRecorded { participant: String, vote: Vote },
    /// The coordinator forced its decision record durable.
    DecisionForced { commit: bool },
    /// Phase two delivered the outcome to one participant.
    OutcomeDelivered { participant: String, commit: bool },
    /// The coordinator dropped its obligation to a delivered participant.
    Forgotten { participant: String },
    /// The transaction finished, in this direction.
    TxCompleted { committed: bool },

    // --- activity nesting ---
    /// An activity entered the tree.
    ActivityBegun { activity: u64, parent: Option<u64> },
    /// An activity's completion protocol finished.
    ActivityCompleted { activity: u64, success: bool },

    // --- checked signal sets ---
    /// The coordinator polled the set for its next signal.
    SignalRequested { set: String },
    /// A signal went out to one registered action.
    SignalTransmitted { set: String, signal: String, action: String },
    /// The action's outcome was fed back into the set.
    ResponseCollated { set: String, failure: bool },
    /// The collated outcome of the whole set was read.
    OutcomeRead { set: String, failure: bool },

    // --- sagas ---
    /// A forward step committed.
    StepCommitted { step: String },
    /// A committed step's compensator ran.
    StepCompensated { step: String },
    /// The saga finished: `completed` forward, or fully compensated.
    SagaEnded { completed: bool },
}

/// A divergence between an observed execution and a reference model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecViolation {
    /// Which reference model rejected the trace.
    pub model: &'static str,
    /// Index into the event trace of the offending event.
    pub event_index: usize,
    /// What rule the event broke.
    pub detail: String,
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] event #{}: {}", self.model, self.event_index, self.detail)
    }
}

/// Replay one trace through all four reference models, collecting every
/// divergence. Each model sees the full trace and ignores events outside
/// its vocabulary, so interleaved protocols audit independently.
#[must_use]
pub fn replay_all(events: &[Event]) -> Vec<SpecViolation> {
    let mut violations = Vec::new();
    violations.extend(twopc::replay(events));
    violations.extend(nesting::replay(events));
    violations.extend(signal_set::replay(events));
    violations.extend(saga::replay(events));
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_interleaved_trace_satisfies_every_model() {
        let t = vec![
            Event::ActivityBegun { activity: 1, parent: None },
            Event::PrepareSent { participant: "a".into() },
            Event::VoteRecorded { participant: "a".into(), vote: Vote::Commit },
            Event::StepCommitted { step: "taxi".into() },
            Event::DecisionForced { commit: true },
            Event::OutcomeDelivered { participant: "a".into(), commit: true },
            Event::Forgotten { participant: "a".into() },
            Event::TxCompleted { committed: true },
            Event::SagaEnded { completed: true },
            Event::ActivityCompleted { activity: 1, success: true },
        ];
        assert_eq!(replay_all(&t), Vec::new());
    }

    #[test]
    fn violations_carry_the_offending_event_index() {
        let t = vec![
            Event::PrepareSent { participant: "a".into() },
            Event::VoteRecorded { participant: "a".into(), vote: Vote::Rollback },
            Event::DecisionForced { commit: true },
        ];
        let violations = replay_all(&t);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].model, "twopc");
        assert_eq!(violations[0].event_index, 2);
    }
}
