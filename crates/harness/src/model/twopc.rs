//! Reference model of presumed-abort two-phase commit.
//!
//! Transcribed from the protocol the paper assumes of its OTS substrate
//! (and DESIGN.md §12's forcing discipline):
//!
//! 1. a participant votes at most once, and only after a prepare was sent
//!    to it;
//! 2. the coordinator forces exactly one decision; a **commit** decision
//!    requires every solicited participant to have voted, every vote to be
//!    a yes, and at least one `Commit` vote (all-read-only transactions
//!    complete without forcing anything — presumed abort);
//! 3. a commit outcome reaches a participant only **after** the decision
//!    was forced (no commit delivery may precede its durable decision),
//!    and only to a participant that voted `Commit`;
//! 4. a rollback outcome never follows a commit decision;
//! 5. `forget` follows outcome delivery — the coordinator drops its
//!    obligation only once the participant has heard;
//! 6. the transaction completes committed only under a commit decision
//!    (or all-read-only unanimity), and never completes aborted after a
//!    commit decision was forced.

use std::collections::BTreeMap;

use super::{Event, SpecViolation, Vote};

/// Where one participant stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Participant {
    /// Prepare sent, vote outstanding.
    Solicited,
    /// Voted; phase two pending.
    Voted(Vote),
    /// Outcome delivered, in this direction.
    Delivered { commit: bool },
    /// Obligation dropped.
    Forgotten,
}

/// The machine's state between events.
#[derive(Debug, Clone, Default)]
pub struct TwoPc {
    participants: BTreeMap<String, Participant>,
    /// `Some(commit)` once a decision was forced.
    decision: Option<bool>,
    any_no_vote: bool,
    any_commit_vote: bool,
    completed: Option<bool>,
}

impl TwoPc {
    /// Fresh, pre-prepare state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn reject(model_index: usize, detail: String) -> Result<(), SpecViolation> {
        Err(SpecViolation { model: "twopc", event_index: model_index, detail })
    }

    /// Advance by one event; foreign events are ignored.
    ///
    /// # Errors
    /// The first rule the event breaks, as a [`SpecViolation`].
    pub fn step(&mut self, index: usize, event: &Event) -> Result<(), SpecViolation> {
        match event {
            Event::PrepareSent { participant } => {
                if self.completed.is_some() {
                    return Self::reject(index, format!("prepare sent to {participant} after the transaction completed"));
                }
                if self.decision.is_some() {
                    return Self::reject(index, format!("prepare sent to {participant} after the decision was forced"));
                }
                if self.participants.contains_key(participant) {
                    return Self::reject(index, format!("{participant} was asked to prepare twice"));
                }
                self.participants.insert(participant.clone(), Participant::Solicited);
            }
            Event::VoteRecorded { participant, vote } => {
                match self.participants.get(participant) {
                    Some(Participant::Solicited) => {}
                    Some(_) => {
                        return Self::reject(index, format!("{participant} voted twice"));
                    }
                    None => {
                        return Self::reject(index, format!("{participant} voted without being asked to prepare"));
                    }
                }
                self.participants.insert(participant.clone(), Participant::Voted(*vote));
                if !vote.is_yes() {
                    self.any_no_vote = true;
                }
                if *vote == Vote::Commit {
                    self.any_commit_vote = true;
                }
            }
            Event::DecisionForced { commit } => {
                if self.completed.is_some() {
                    return Self::reject(index, "decision forced after the transaction completed".into());
                }
                if self.decision.is_some() {
                    return Self::reject(index, "a second decision was forced".into());
                }
                if *commit {
                    if self.any_no_vote {
                        return Self::reject(
                            index,
                            "commit decision forced after a rollback/failed vote — presumed abort forbids it".into(),
                        );
                    }
                    if let Some(outstanding) = self.participants.iter().find_map(|(name, p)| {
                        (*p == Participant::Solicited).then_some(name)
                    }) {
                        return Self::reject(
                            index,
                            format!("commit decision forced while {outstanding}'s vote is outstanding"),
                        );
                    }
                    if !self.any_commit_vote {
                        return Self::reject(
                            index,
                            "commit decision forced with no Commit vote — all-read-only transactions must not force".into(),
                        );
                    }
                }
                self.decision = Some(*commit);
            }
            Event::OutcomeDelivered { participant, commit } => {
                if self.completed.is_some() {
                    return Self::reject(index, format!("outcome delivered to {participant} after completion"));
                }
                if *commit {
                    if self.decision != Some(true) {
                        return Self::reject(
                            index,
                            format!("commit delivered to {participant} without a forced commit decision (§12 forcing discipline)"),
                        );
                    }
                    match self.participants.get(participant) {
                        Some(Participant::Voted(Vote::Commit)) => {}
                        Some(Participant::Voted(v)) => {
                            return Self::reject(index, format!("commit delivered to {participant}, which voted {v:?}"));
                        }
                        Some(Participant::Solicited) => {
                            return Self::reject(index, format!("commit delivered to {participant} before it voted"));
                        }
                        Some(_) => {
                            return Self::reject(index, format!("{participant} received a second outcome"));
                        }
                        None => {
                            return Self::reject(index, format!("commit delivered to unknown participant {participant}"));
                        }
                    }
                } else {
                    if self.decision == Some(true) {
                        return Self::reject(index, format!("rollback delivered to {participant} after a commit decision"));
                    }
                    // A rollback may legitimately reach a participant that
                    // never prepared (quarantine rolls back enlisted peers
                    // that were never asked), but not one already settled.
                    if matches!(
                        self.participants.get(participant),
                        Some(Participant::Delivered { .. } | Participant::Forgotten)
                    ) {
                        return Self::reject(index, format!("{participant} received a second outcome"));
                    }
                }
                self.participants.insert(participant.clone(), Participant::Delivered { commit: *commit });
            }
            Event::Forgotten { participant } => {
                match self.participants.get(participant) {
                    Some(Participant::Delivered { .. }) => {}
                    Some(Participant::Forgotten) => {
                        return Self::reject(index, format!("{participant} forgotten twice"));
                    }
                    _ => {
                        return Self::reject(index, format!("{participant} forgotten before its outcome was delivered"));
                    }
                }
                self.participants.insert(participant.clone(), Participant::Forgotten);
            }
            Event::TxCompleted { committed } => {
                if self.completed.is_some() {
                    return Self::reject(index, "the transaction completed twice".into());
                }
                if *committed {
                    let all_read_only = !self.any_no_vote
                        && !self.any_commit_vote
                        && self.participants.values().all(|p| !matches!(p, Participant::Solicited));
                    if self.decision != Some(true) && !all_read_only {
                        return Self::reject(
                            index,
                            "completed committed without a forced commit decision".into(),
                        );
                    }
                } else if self.decision == Some(true) {
                    return Self::reject(index, "completed aborted after a commit decision was forced".into());
                }
                self.completed = Some(*committed);
            }
            _ => {}
        }
        Ok(())
    }
}

/// Replay a trace, collecting the first divergence (a broken machine's
/// subsequent state is unspecified, so replay stops at the first error).
#[must_use]
pub fn replay(events: &[Event]) -> Vec<SpecViolation> {
    let mut machine = TwoPc::new();
    for (index, event) in events.iter().enumerate() {
        if let Err(violation) = machine.step(index, event) {
            return vec![violation];
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepare(p: &str) -> Event {
        Event::PrepareSent { participant: p.into() }
    }
    fn vote(p: &str, v: Vote) -> Event {
        Event::VoteRecorded { participant: p.into(), vote: v }
    }
    fn deliver(p: &str, commit: bool) -> Event {
        Event::OutcomeDelivered { participant: p.into(), commit }
    }

    #[test]
    fn clean_commit_passes() {
        let t = vec![
            prepare("a"),
            vote("a", Vote::Commit),
            prepare("b"),
            vote("b", Vote::ReadOnly),
            Event::DecisionForced { commit: true },
            deliver("a", true),
            Event::Forgotten { participant: "a".into() },
            Event::TxCompleted { committed: true },
        ];
        assert!(replay(&t).is_empty());
    }

    #[test]
    fn presumed_abort_rollback_passes_without_a_decision() {
        let t = vec![
            prepare("a"),
            vote("a", Vote::Commit),
            prepare("b"),
            vote("b", Vote::Rollback),
            deliver("a", false),
            deliver("b", false),
            Event::TxCompleted { committed: false },
        ];
        assert!(replay(&t).is_empty());
    }

    #[test]
    fn all_read_only_commit_needs_no_decision() {
        let t = vec![
            prepare("a"),
            vote("a", Vote::ReadOnly),
            Event::TxCompleted { committed: true },
        ];
        assert!(replay(&t).is_empty());
    }

    #[test]
    fn commit_decision_after_a_no_vote_is_the_planted_violation() {
        let t = vec![
            prepare("a"),
            vote("a", Vote::Commit),
            prepare("c"),
            vote("c", Vote::Rollback),
            Event::DecisionForced { commit: true },
        ];
        let v = replay(&t);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("presumed abort"));
    }

    #[test]
    fn commit_delivery_before_the_forced_decision_is_rejected() {
        let t = vec![prepare("a"), vote("a", Vote::Commit), deliver("a", true)];
        assert!(replay(&t)[0].detail.contains("forcing discipline"));
    }

    #[test]
    fn rollback_after_commit_decision_is_rejected() {
        let t = vec![
            prepare("a"),
            vote("a", Vote::Commit),
            Event::DecisionForced { commit: true },
            deliver("a", false),
        ];
        assert!(replay(&t)[0].detail.contains("after a commit decision"));
    }

    #[test]
    fn forget_requires_prior_delivery() {
        let t = vec![
            prepare("a"),
            vote("a", Vote::Commit),
            Event::DecisionForced { commit: true },
            Event::Forgotten { participant: "a".into() },
        ];
        assert!(replay(&t)[0].detail.contains("before its outcome"));
    }

    #[test]
    fn completing_committed_without_a_decision_is_rejected() {
        let t = vec![
            prepare("a"),
            vote("a", Vote::Commit),
            Event::TxCompleted { committed: true },
        ];
        assert!(replay(&t)[0].detail.contains("without a forced commit decision"));
    }

    #[test]
    fn rollback_may_reach_a_never_prepared_participant() {
        // Quarantine rolls back enlisted peers that were never solicited.
        let t = vec![
            prepare("a"),
            vote("a", Vote::Failed),
            deliver("a", false),
            deliver("b", false),
            Event::TxCompleted { committed: false },
        ];
        assert!(replay(&t).is_empty());
    }
}
