//! Reference model of fig. 4 activity nesting.
//!
//! The paper arranges activities in trees: a child begins under a live
//! parent and must complete before its parent does (the parent's
//! completion protocol collates over its children's outcomes, so a child
//! still running when the parent completes would have nothing to report
//! into). Nothing completes twice, and nothing completes that never
//! began.

use std::collections::BTreeMap;

use super::{Event, SpecViolation};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    Active { children: Vec<u64> },
    Completed,
}

/// The machine's state between events.
#[derive(Debug, Clone, Default)]
pub struct Nesting {
    activities: BTreeMap<u64, Status>,
}

impl Nesting {
    /// Fresh, empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn reject(index: usize, detail: String) -> Result<(), SpecViolation> {
        Err(SpecViolation { model: "nesting", event_index: index, detail })
    }

    /// Advance by one event; foreign events are ignored.
    ///
    /// # Errors
    /// The first rule the event breaks, as a [`SpecViolation`].
    pub fn step(&mut self, index: usize, event: &Event) -> Result<(), SpecViolation> {
        match event {
            Event::ActivityBegun { activity, parent } => {
                if self.activities.contains_key(activity) {
                    return Self::reject(index, format!("activity {activity} began twice"));
                }
                if let Some(parent) = parent {
                    match self.activities.get_mut(parent) {
                        Some(Status::Active { children }) => children.push(*activity),
                        Some(Status::Completed) => {
                            return Self::reject(
                                index,
                                format!("activity {activity} began under completed parent {parent}"),
                            );
                        }
                        None => {
                            return Self::reject(
                                index,
                                format!("activity {activity} began under unknown parent {parent}"),
                            );
                        }
                    }
                }
                self.activities.insert(*activity, Status::Active { children: Vec::new() });
            }
            Event::ActivityCompleted { activity, .. } => match self.activities.get(activity) {
                Some(Status::Active { children }) => {
                    if let Some(open) = children
                        .iter()
                        .find(|c| self.activities.get(c) != Some(&Status::Completed))
                    {
                        return Self::reject(
                            index,
                            format!("activity {activity} completed while child {open} is still active"),
                        );
                    }
                    self.activities.insert(*activity, Status::Completed);
                }
                Some(Status::Completed) => {
                    return Self::reject(index, format!("activity {activity} completed twice"));
                }
                None => {
                    return Self::reject(index, format!("activity {activity} completed but never began"));
                }
            },
            _ => {}
        }
        Ok(())
    }
}

/// Replay a trace, stopping at the first divergence.
#[must_use]
pub fn replay(events: &[Event]) -> Vec<SpecViolation> {
    let mut machine = Nesting::new();
    for (index, event) in events.iter().enumerate() {
        if let Err(violation) = machine.step(index, event) {
            return vec![violation];
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begun(a: u64, parent: Option<u64>) -> Event {
        Event::ActivityBegun { activity: a, parent }
    }
    fn completed(a: u64) -> Event {
        Event::ActivityCompleted { activity: a, success: true }
    }

    #[test]
    fn children_complete_before_parents() {
        let t = vec![begun(1, None), begun(2, Some(1)), completed(2), completed(1)];
        assert!(replay(&t).is_empty());
    }

    #[test]
    fn parent_completing_over_a_live_child_is_rejected() {
        let t = vec![begun(1, None), begun(2, Some(1)), completed(1)];
        assert!(replay(&t)[0].detail.contains("still active"));
    }

    #[test]
    fn double_completion_is_rejected() {
        let t = vec![begun(1, None), completed(1), completed(1)];
        assert!(replay(&t)[0].detail.contains("twice"));
    }

    #[test]
    fn completion_without_begin_is_rejected() {
        assert!(replay(&[completed(7)])[0].detail.contains("never began"));
    }

    #[test]
    fn beginning_under_a_completed_parent_is_rejected() {
        let t = vec![begun(1, None), completed(1), begun(2, Some(1))];
        assert!(replay(&t)[0].detail.contains("completed parent"));
    }
}
