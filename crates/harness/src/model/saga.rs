//! Reference model of §5.1 saga compensation.
//!
//! A saga commits each forward step as it goes; on failure it runs the
//! compensators of every committed step in **reverse commit order**. The
//! rules transcribed here:
//!
//! 1. a step is compensated only if it committed, and compensations pop
//!    the committed stack — strictly newest-first;
//! 2. a saga that ends `completed` compensated nothing;
//! 3. a saga that ends aborted compensated **every** committed step
//!    (no orphaned forward effects);
//! 4. nothing happens after the saga ended.

use super::{Event, SpecViolation};

/// The machine's state between events.
#[derive(Debug, Clone, Default)]
pub struct Saga {
    committed: Vec<String>,
    compensated: usize,
    ended: bool,
}

impl Saga {
    /// Fresh saga, nothing committed.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn reject(index: usize, detail: String) -> Result<(), SpecViolation> {
        Err(SpecViolation { model: "saga", event_index: index, detail })
    }

    /// Advance by one event; foreign events are ignored.
    ///
    /// # Errors
    /// The first rule the event breaks, as a [`SpecViolation`].
    pub fn step(&mut self, index: usize, event: &Event) -> Result<(), SpecViolation> {
        match event {
            Event::StepCommitted { step } => {
                if self.ended {
                    return Self::reject(index, format!("step {step} committed after the saga ended"));
                }
                self.committed.push(step.clone());
            }
            Event::StepCompensated { step } => {
                if self.ended {
                    return Self::reject(index, format!("step {step} compensated after the saga ended"));
                }
                match self.committed.pop() {
                    Some(top) if top == *step => self.compensated += 1,
                    Some(top) => {
                        return Self::reject(
                            index,
                            format!("step {step} compensated out of order — {top} committed more recently"),
                        );
                    }
                    None => {
                        return Self::reject(index, format!("step {step} compensated but never committed"));
                    }
                }
            }
            Event::SagaEnded { completed } => {
                if self.ended {
                    return Self::reject(index, "the saga ended twice".into());
                }
                if *completed && self.compensated > 0 {
                    return Self::reject(index, "a completed saga must not have compensated".into());
                }
                if !*completed {
                    if let Some(orphan) = self.committed.last() {
                        return Self::reject(
                            index,
                            format!("saga aborted with step {orphan} committed but not compensated"),
                        );
                    }
                }
                self.ended = true;
            }
            _ => {}
        }
        Ok(())
    }
}

/// Replay a trace, stopping at the first divergence.
#[must_use]
pub fn replay(events: &[Event]) -> Vec<SpecViolation> {
    let mut machine = Saga::new();
    for (index, event) in events.iter().enumerate() {
        if let Err(violation) = machine.step(index, event) {
            return vec![violation];
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(s: &str) -> Event {
        Event::StepCommitted { step: s.into() }
    }
    fn compensate(s: &str) -> Event {
        Event::StepCompensated { step: s.into() }
    }

    #[test]
    fn completed_saga_passes() {
        let t = vec![commit("taxi"), commit("hotel"), Event::SagaEnded { completed: true }];
        assert!(replay(&t).is_empty());
    }

    #[test]
    fn reverse_order_compensation_passes() {
        let t = vec![
            commit("taxi"),
            commit("restaurant"),
            compensate("restaurant"),
            compensate("taxi"),
            Event::SagaEnded { completed: false },
        ];
        assert!(replay(&t).is_empty());
    }

    #[test]
    fn forward_order_compensation_is_rejected() {
        let t = vec![commit("taxi"), commit("restaurant"), compensate("taxi")];
        assert!(replay(&t)[0].detail.contains("out of order"));
    }

    #[test]
    fn aborting_with_an_uncompensated_step_is_rejected() {
        let t = vec![commit("taxi"), Event::SagaEnded { completed: false }];
        assert!(replay(&t)[0].detail.contains("not compensated"));
    }

    #[test]
    fn compensating_an_uncommitted_step_is_rejected() {
        assert!(replay(&[compensate("hotel")])[0].detail.contains("never committed"));
    }
}
