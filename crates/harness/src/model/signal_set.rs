//! Reference model of fig. 5 checked-signal processing.
//!
//! The paper's coordinator loop polls a SignalSet for its next signal,
//! transmits it to every registered action, and collates each action's
//! outcome back into the set before the set's overall outcome may be
//! read. The rules transcribed here:
//!
//! 1. a signal is transmitted only while the set is being solicited
//!    (a `get_signal` poll precedes the first transmit);
//! 2. a response is collated only for a signal actually transmitted —
//!    responses never outnumber transmits;
//! 3. the set outcome is read only once every transmitted signal's
//!    response has been collated (checked signals: no outcome over
//!    outstanding responses);
//! 4. once the outcome is read the set is concluded — no further polls,
//!    transmits or responses;
//! 5. **failure propagation**: if any collated response reported a
//!    failure, the set outcome must not read as a success.
//!
//! The mapping from a [`activity_service::TraceLog`] to model events
//! lives in [`events_from_trace`]; `Transmit` trace events carry no set
//! name, so the mapper attributes them to the most recently polled set —
//! faithful to the coordinator's one-set-at-a-time processing loop.

use std::collections::BTreeMap;

use super::{Event, SpecViolation};

#[derive(Debug, Clone, Default)]
struct SetState {
    polled: bool,
    transmits: usize,
    responses: usize,
    any_failure_response: bool,
    concluded: bool,
}

/// The machine's state between events, one entry per signal set.
#[derive(Debug, Clone, Default)]
pub struct SignalSets {
    sets: BTreeMap<String, SetState>,
}

impl SignalSets {
    /// Fresh state with no sets solicited.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn reject(index: usize, detail: String) -> Result<(), SpecViolation> {
        Err(SpecViolation { model: "signal_set", event_index: index, detail })
    }

    /// Advance by one event; foreign events are ignored.
    ///
    /// # Errors
    /// The first rule the event breaks, as a [`SpecViolation`].
    pub fn step(&mut self, index: usize, event: &Event) -> Result<(), SpecViolation> {
        match event {
            Event::SignalRequested { set } => {
                let state = self.sets.entry(set.clone()).or_default();
                if state.concluded {
                    return Self::reject(index, format!("set {set} polled after its outcome was read"));
                }
                state.polled = true;
            }
            Event::SignalTransmitted { set, signal, .. } => {
                let state = self.sets.entry(set.clone()).or_default();
                if state.concluded {
                    return Self::reject(
                        index,
                        format!("signal {signal} transmitted after set {set}'s outcome was read"),
                    );
                }
                if !state.polled {
                    return Self::reject(
                        index,
                        format!("signal {signal} transmitted before set {set} was polled"),
                    );
                }
                state.transmits += 1;
            }
            Event::ResponseCollated { set, failure } => {
                let state = self.sets.entry(set.clone()).or_default();
                if state.concluded {
                    return Self::reject(index, format!("response collated after set {set}'s outcome was read"));
                }
                if state.responses >= state.transmits {
                    return Self::reject(
                        index,
                        format!("set {set} collated more responses than signals transmitted"),
                    );
                }
                state.responses += 1;
                state.any_failure_response |= failure;
            }
            Event::OutcomeRead { set, failure } => {
                let state = self.sets.entry(set.clone()).or_default();
                if state.concluded {
                    return Self::reject(index, format!("set {set}'s outcome read twice"));
                }
                if state.responses < state.transmits {
                    return Self::reject(
                        index,
                        format!(
                            "set {set}'s outcome read with {} of {} responses outstanding",
                            state.transmits - state.responses,
                            state.transmits
                        ),
                    );
                }
                if state.any_failure_response && !failure {
                    return Self::reject(
                        index,
                        format!("set {set} read a success outcome despite a failure response — checked signals must propagate"),
                    );
                }
                state.concluded = true;
            }
            _ => {}
        }
        Ok(())
    }
}

/// Replay a trace, stopping at the first divergence.
#[must_use]
pub fn replay(events: &[Event]) -> Vec<SpecViolation> {
    let mut machine = SignalSets::new();
    for (index, event) in events.iter().enumerate() {
        if let Err(violation) = machine.step(index, event) {
            return vec![violation];
        }
    }
    Vec::new()
}

/// Map a coordinator [`TraceLog`](activity_service::TraceLog) trace into
/// model events. `is_failure` classifies an outcome name as a failure
/// (the conventional vocabulary: `"abort"` and `"error"` are failures,
/// `"done"` is not).
#[must_use]
pub fn events_from_trace(
    trace: &[activity_service::TraceEvent],
    is_failure: &dyn Fn(&str) -> bool,
) -> Vec<Event> {
    use activity_service::TraceEvent;
    let mut events = Vec::with_capacity(trace.len());
    let mut current_set: Option<String> = None;
    for step in trace {
        match step {
            TraceEvent::GetSignal { set } => {
                current_set = Some(set.clone());
                events.push(Event::SignalRequested { set: set.clone() });
            }
            TraceEvent::Transmit { signal, action } => {
                // Transmits carry no set name; the coordinator processes
                // one set at a time, so the last poll names it.
                if let Some(set) = &current_set {
                    events.push(Event::SignalTransmitted {
                        set: set.clone(),
                        signal: signal.clone(),
                        action: action.clone(),
                    });
                }
            }
            TraceEvent::SetResponse { set, outcome } => {
                events.push(Event::ResponseCollated { set: set.clone(), failure: is_failure(outcome) });
            }
            TraceEvent::GetOutcome { set, outcome } => {
                events.push(Event::OutcomeRead { set: set.clone(), failure: is_failure(outcome) });
            }
        }
    }
    events
}

/// The conventional outcome classifier: `"abort"`, `"error"` and the
/// fail-ish completion statuses count as failures.
#[must_use]
pub fn conventional_failure(outcome: &str) -> bool {
    outcome == "abort" || outcome == "error" || outcome.starts_with("fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poll(set: &str) -> Event {
        Event::SignalRequested { set: set.into() }
    }
    fn transmit(set: &str) -> Event {
        Event::SignalTransmitted { set: set.into(), signal: "s".into(), action: "a".into() }
    }
    fn respond(set: &str, failure: bool) -> Event {
        Event::ResponseCollated { set: set.into(), failure }
    }
    fn outcome(set: &str, failure: bool) -> Event {
        Event::OutcomeRead { set: set.into(), failure }
    }

    #[test]
    fn a_checked_round_trip_passes() {
        let t = vec![
            poll("c"),
            transmit("c"),
            respond("c", false),
            poll("c"),
            transmit("c"),
            respond("c", false),
            outcome("c", false),
        ];
        assert!(replay(&t).is_empty());
    }

    #[test]
    fn outcome_over_outstanding_responses_is_rejected() {
        let t = vec![poll("c"), transmit("c"), outcome("c", false)];
        assert!(replay(&t)[0].detail.contains("outstanding"));
    }

    #[test]
    fn failure_response_must_propagate_to_the_outcome() {
        let t = vec![poll("c"), transmit("c"), respond("c", true), outcome("c", false)];
        assert!(replay(&t)[0].detail.contains("propagate"));
    }

    #[test]
    fn failure_outcome_after_failure_response_passes() {
        let t = vec![poll("c"), transmit("c"), respond("c", true), outcome("c", true)];
        assert!(replay(&t).is_empty());
    }

    #[test]
    fn transmit_before_any_poll_is_rejected() {
        assert!(replay(&[transmit("c")])[0].detail.contains("before set"));
    }

    #[test]
    fn activity_after_conclusion_is_rejected() {
        let t = vec![poll("c"), outcome("c", false), transmit("c")];
        assert!(replay(&t)[0].detail.contains("after set"));
    }

    #[test]
    fn trace_mapping_attributes_transmits_to_the_polled_set() {
        use activity_service::TraceEvent;
        let trace = vec![
            TraceEvent::GetSignal { set: "Completed".into() },
            TraceEvent::Transmit { signal: "finished".into(), action: "auditor".into() },
            TraceEvent::SetResponse { set: "Completed".into(), outcome: "done".into() },
            TraceEvent::GetOutcome { set: "Completed".into(), outcome: "done".into() },
        ];
        let events = events_from_trace(&trace, &conventional_failure);
        assert_eq!(events.len(), 4);
        assert!(matches!(
            &events[1],
            Event::SignalTransmitted { set, .. } if set == "Completed"
        ));
        assert!(replay(&events).is_empty());
    }
}
