//! The scenario adapter contract.
//!
//! A scenario wires one of the repo's figure-tests — 2PC, fig. 9 open
//! nesting, Sagas, the fig. 10 workflow, BTP atoms — into a closed, seeded
//! end-to-end run: build every component fresh, apply the
//! [`FaultSchedule`], drive the protocol to a terminal state (recovering
//! from injected crashes where a recovery path exists), and report the
//! facts the oracles need.

use crate::oracle::Observation;
use crate::schedule::FaultSchedule;

/// One end-to-end protocol workload under fault injection.
///
/// Implementations must be *hermetic*: every run constructs all state from
/// scratch with fixed seeds, so the same schedule always produces the same
/// [`Observation`] (the determinism oracle enforces this).
pub trait Scenario {
    /// Stable scenario name (appears in sweep reports and repro output).
    fn name(&self) -> &'static str;

    /// Execute one run under `schedule` and report what happened.
    fn run(&self, schedule: &FaultSchedule) -> Observation;
}
