//! The causal planted-bug fixture: a paced three-node commit whose
//! coordinator, when the `causal.race` failpoint is armed, delivers the
//! first phase-two outcome *before* forcing the decision record — the
//! classic "acked the client off the racy path" coordinator bug.
//!
//! Every per-node fact still looks healthy: the run commits, both
//! participants keep their effects, the journal is complete and each
//! node's local log is internally consistent. Only the *merged*
//! happens-before DAG shows the outcome delivery with no forced decision
//! among its causal ancestors, so oracle #12 (`causal-consistency`) is the
//! only oracle that can catch it — and the explorer shrinks the schedule
//! to the single failpoint arm. Never part of [`super::all`].

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use orb::{NetworkConfig, Orb, Request, SimClock, Value};
use ots::journal::{ProtocolJournal, TwoPcEvent, VoteKind};

use crate::oracle::{Observation, RunOutcome};
use crate::scenario::Scenario;
use crate::schedule::{FaultEvent, FaultSchedule};

/// The racy-coordinator fixture. Fault-free runs order phase two after the
/// decision force; arming [`RACE_SITE`] swaps them for the first
/// participant.
pub struct ReorderedOutcomeScenario;

/// The failpoint site whose arming takes the racy path. Reported as the
/// probe's only observed site, so seeded schedules draw it.
pub const RACE_SITE: &str = "causal.race";

const COORDINATOR: &str = "coordinator";
const PARTICIPANTS: [&str; 2] = ["alpha", "beta"];
const STEP: Duration = Duration::from_micros(50);

impl Scenario for ReorderedOutcomeScenario {
    fn name(&self) -> &'static str {
        "causal-reordered-outcome"
    }

    fn run(&self, schedule: &FaultSchedule) -> Observation {
        let racy = schedule
            .events()
            .iter()
            .any(|e| matches!(e, FaultEvent::ArmFailpoint { site, .. } if site == RACE_SITE));

        let clock = SimClock::new();
        let orb = Orb::builder()
            .network(NetworkConfig::reliable())
            .clock(clock.clone())
            .build();
        let coord_node = orb.add_node(COORDINATOR).expect("add coordinator");
        let plane = telemetry::CausalityPlane::new();
        let coord_recorder = telemetry::FlightRecorder::with_time(
            COORDINATOR,
            telemetry::DEFAULT_RECORDER_CAPACITY,
            Arc::new(clock.clone()),
        );
        plane.register(&coord_recorder);
        let journal = ProtocolJournal::new();
        journal.set_recorder(coord_recorder.clone());

        let mut refs = Vec::new();
        for name in PARTICIPANTS {
            let node = orb.add_node(name).expect("add participant");
            let recorder = telemetry::FlightRecorder::with_time(
                name,
                telemetry::DEFAULT_RECORDER_CAPACITY,
                Arc::new(clock.clone()),
            );
            plane.register(&recorder);
            let object = node
                .activate("Participant", |req: &Request| {
                    Ok(match req.operation() {
                        "prepare" => Value::from("commit"),
                        _ => Value::from("ack"),
                    })
                })
                .expect("activate participant");
            refs.push((name, object));
        }
        orb.install_causality(plane.clone());

        let mut trace = String::new();

        // Phase one: solicit both votes.
        for (name, object) in &refs {
            journal.record(TwoPcEvent::PrepareSent { participant: (*name).into() });
            clock.advance(STEP);
            let reply = coord_node.invoke(object, Request::new("prepare")).expect("invoke");
            let _ = writeln!(trace, "prepare({name}) -> {:?}", reply.result);
            journal.record(TwoPcEvent::VoteRecorded {
                participant: (*name).into(),
                vote: VoteKind::Commit,
            });
        }

        // Phase two. The racy path delivers alpha's outcome before the
        // decision record is forced; the healthy path forces first.
        let mut deliver = |idx: usize| {
            let (name, object) = &refs[idx];
            clock.advance(STEP);
            let reply = coord_node.invoke(object, Request::new("outcome")).expect("invoke");
            let _ = writeln!(trace, "outcome({name}) -> {:?}", reply.result);
            journal.record(TwoPcEvent::OutcomeDelivered {
                participant: (*name).into(),
                commit: true,
                ok: true,
            });
        };
        if racy {
            deliver(0);
            journal.record(TwoPcEvent::DecisionForced { commit: true });
            deliver(1);
        } else {
            journal.record(TwoPcEvent::DecisionForced { commit: true });
            deliver(0);
            deliver(1);
        }
        clock.advance(STEP);
        journal.record(TwoPcEvent::Completed { committed: true });

        let mut obs = Observation::new(RunOutcome::Committed);
        // Every per-node fact is healthy — the commit landed everywhere —
        // so nothing here binds any other oracle to the bug. Deliberately
        // no model_events: the refinement oracle would see the same
        // reorder; #12 must be the one that catches it.
        obs.participant_commits =
            PARTICIPANTS.iter().map(|name| ((*name).to_owned(), true)).collect();
        obs.trace = trace;
        obs.observed_sites = vec![RACE_SITE.to_owned()];
        obs.remote_messages = orb.network().remote_messages();
        obs.recorder_fingerprint = Some(coord_recorder.fingerprint());
        obs.recorder_dump = Some(coord_recorder.dump());
        let dag = plane.merge().build();
        obs.causal_violations = Some(dag.verify().iter().map(ToString::to_string).collect());
        obs.causal_fingerprint = Some(dag.fingerprint());
        obs.causal_perfetto = Some(dag.to_perfetto());
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    #[test]
    fn fault_free_fixture_passes_every_oracle() {
        let obs = ReorderedOutcomeScenario.run(&FaultSchedule::empty());
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert_eq!(obs.causal_violations.as_deref(), Some(&[][..]));
        assert!(oracle::check_all(&obs).is_empty(), "{:?}", oracle::check_all(&obs));
    }

    #[test]
    fn armed_race_is_caught_by_the_causal_oracle_alone() {
        let schedule = FaultSchedule::from_events(vec![FaultEvent::ArmFailpoint {
            site: RACE_SITE.into(),
            after: 0,
        }]);
        let obs = ReorderedOutcomeScenario.run(&schedule);
        let violations = oracle::check_all(&obs);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].oracle, "causal-consistency");
        assert!(
            violations[0].detail.contains("without the forced decision"),
            "{}",
            violations[0].detail
        );
    }

    #[test]
    fn racy_runs_are_deterministic_and_export_a_trace() {
        let schedule = FaultSchedule::from_events(vec![FaultEvent::ArmFailpoint {
            site: RACE_SITE.into(),
            after: 0,
        }]);
        let a = ReorderedOutcomeScenario.run(&schedule);
        let b = ReorderedOutcomeScenario.run(&schedule);
        assert!(oracle::check_determinism(&a, &b).is_empty());
        let perfetto = a.causal_perfetto.expect("perfetto export");
        telemetry::check_perfetto_schema(&perfetto).expect("schema-clean export");
    }
}
