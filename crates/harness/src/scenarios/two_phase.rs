//! 2PC over the OTS coordinator with durable decision logging, crash
//! injection at every named protocol step, and WAL replay after the crash.
//!
//! Two scenario flavours share one runner: [`TwoPhaseScenario`] logs to a
//! per-record-sync [`MemWal`], [`TwoPhaseGroupCommitScenario`] routes the
//! same protocol through a [`GroupCommitWal`] wrapper. The group flavour
//! additionally reports durability accounting — the highest LSN the log
//! acknowledged before the crash and the LSNs that survived the restart —
//! which binds the harness's `durability` oracle: an injected crash discards
//! the staged (unacked) tail, and the oracle proves no acked record was
//! lost with it.
//!
//! Both flavours attach an [`ots::ProtocolJournal`] and report its events
//! in the reference-model vocabulary, so the refinement oracle replays
//! every sweep run through the presumed-abort 2PC model.

use std::fmt::Write as _;
use std::sync::Arc;

use orb::pool::DispatchConfig;
use orb::Value;
use ots::txlog::KIND_TX_DECISION;
use ots::{Resource, TransactionFactory, TransactionalKv, TxError};
use recovery_log::{FailpointSet, GroupCommitWal, Lsn, MemWal, Wal};

use super::explore_two_phase::model_events_from_journal;
use crate::model::Event;
use crate::oracle::{Observation, RunOutcome};
use crate::scenario::Scenario;
use crate::schedule::FaultSchedule;

/// Two participants enlisted in one logged transaction; failpoint crashes
/// are recovered by a fresh factory over the surviving WAL, and the replay
/// is run twice to prove it is idempotent.
pub struct TwoPhaseScenario;

/// [`TwoPhaseScenario`] with the log routed through a group-commit wrapper:
/// only the decision record is awaited durably, everything else rides the
/// batch, and a crash loses the staged tail.
pub struct TwoPhaseGroupCommitScenario;

impl Scenario for TwoPhaseScenario {
    fn name(&self) -> &'static str {
        "two-phase-commit"
    }

    fn run(&self, schedule: &FaultSchedule) -> Observation {
        run_two_phase(schedule, false)
    }
}

impl Scenario for TwoPhaseGroupCommitScenario {
    fn name(&self) -> &'static str {
        "two-phase-commit-group"
    }

    fn run(&self, schedule: &FaultSchedule) -> Observation {
        run_two_phase(schedule, true)
    }
}

fn run_two_phase(schedule: &FaultSchedule, group_commit: bool) -> Observation {
    let group: Option<Arc<GroupCommitWal<MemWal>>> =
        group_commit.then(|| Arc::new(GroupCommitWal::new(MemWal::new())));
    let wal: Arc<dyn Wal> = match &group {
        Some(g) => Arc::clone(g) as Arc<dyn Wal>,
        None => Arc::new(MemWal::new()),
    };
    let failpoints = FailpointSet::new();
    schedule.arm_into(&failpoints);
    let journal = ots::ProtocolJournal::new();
    // The coordinator's black box (oracle #11): journal entries, failpoint
    // passages and span open/close all land in one causally-ordered ring,
    // identically wired for both wal flavours so the byte-identity guard
    // between them keeps holding. Spans run on a virtual clock pinned at
    // zero — timestamps stay deterministic without a driven clock.
    let recorder =
        telemetry::FlightRecorder::new("coordinator", telemetry::DEFAULT_RECORDER_CAPACITY);
    let telemetry = telemetry::Telemetry::with_time(Arc::new(orb::SimClock::new()));
    telemetry.attach_recorder(recorder.clone());
    journal.set_recorder(recorder.clone());
    failpoints.set_recorder(recorder.clone());
    let factory = TransactionFactory::with_wal(Arc::clone(&wal))
        .with_failpoints(failpoints.clone())
        .with_dispatch(DispatchConfig::serial())
        .with_journal(journal.clone())
        .with_telemetry(telemetry.clone());
    let store = Arc::new(TransactionalKv::new("store"));
    let witness = Arc::new(TransactionalKv::new("witness"));

    let control = factory.create().expect("begin record");
    store.enlist(&control).expect("enlist store");
    witness.enlist(&control).expect("enlist witness");
    store.write(control.id(), "k", Value::from(1i64)).expect("write store");
    witness.write(control.id(), "w", Value::from(2i64)).expect("write witness");

    let commit = control.terminator().commit();
    let mut trace = String::new();
    let _ = writeln!(trace, "commit: {commit:?}");

    let mut obs = Observation::new(RunOutcome::Committed);
    let mut model_events = model_events_from_journal(&journal.events());
    match commit {
        Ok(_) => {}
        Err(TxError::Log(_)) => {
            // The injected crash. "Restart": disarm, then a fresh
            // factory replays the surviving log.
            failpoints.clear();
            if let Some(group) = &group {
                // The crash kills the process: staged (unacked) records
                // are gone; whatever was acked durable must survive. Take
                // the acked watermark first, then model the restart.
                obs.durable_acked_lsn = Some(group.durable_lsn().raw());
                group.recover_from_sink();
                obs.survived_lsns = Some(
                    group
                        .inner()
                        .scan(Lsn::new(0))
                        .expect("scan sink")
                        .iter()
                        .map(|r| r.lsn.raw())
                        .collect(),
                );
            }
            let decision_durable = wal
                .scan(Lsn::new(0))
                .expect("scan wal")
                .iter()
                .any(|r| r.kind == KIND_TX_DECISION);
            let store2 = Arc::clone(&store);
            let witness2 = Arc::clone(&witness);
            let resolver = move |name: &str| -> Option<Arc<dyn Resource>> {
                match name {
                    "store" => Some(store2.clone()),
                    "witness" => Some(witness2.clone()),
                    _ => None,
                }
            };
            let report = TransactionFactory::with_wal(Arc::clone(&wal))
                .recover(&resolver)
                .expect("recovery");
            let replayed = if report.recommitted.is_empty() {
                RunOutcome::Aborted
            } else {
                RunOutcome::Committed
            };
            let _ = writeln!(
                trace,
                "recovered: recommitted={:?} presumed_aborted={:?}",
                report.recommitted, report.presumed_aborted
            );
            // Replay equivalence, part two: a second incarnation over
            // the same log must find nothing left in doubt.
            let second = TransactionFactory::with_wal(Arc::clone(&wal))
                .recover(&resolver)
                .expect("second recovery");
            obs.replay_stable =
                Some(second.recommitted.is_empty() && second.presumed_aborted.is_empty());
            obs.decision_durable = Some(decision_durable);
            obs.replay_outcome = Some(replayed);
            obs.outcome = replayed;
            // The crash cut the journal short of its terminal event;
            // recovery settled the direction, so close the model trace
            // with it and let the refinement oracle hold it to §12.
            model_events
                .push(Event::TxCompleted { committed: replayed == RunOutcome::Committed });
        }
        Err(other) => {
            let _ = writeln!(trace, "non-crash failure: {other:?}");
            obs.outcome = RunOutcome::Aborted;
        }
    }

    obs.participant_commits = vec![
        ("store".into(), store.read_committed("k").is_some()),
        ("witness".into(), witness.read_committed("w").is_some()),
    ];
    let _ = writeln!(
        trace,
        "final: store={:?} witness={:?}",
        store.read_committed("k"),
        witness.read_committed("w")
    );
    obs.trace = trace;
    obs.observed_sites = failpoints.observed_sites();
    obs.model_events = Some(model_events);
    obs.recorder_events = Some(
        recorder
            .events()
            .iter()
            .map(|e| (e.kind.label().to_owned(), e.detail.clone()))
            .collect(),
    );
    obs.recorder_fingerprint = Some(recorder.fingerprint());
    obs.recorder_dump = Some(recorder.dump());
    obs.critical_path_exact = telemetry.span_tree().critical_path().map(|path| path.is_exact());
    // Oracle #12: even a single-node run has a causal story — program
    // order plus the 2PC protocol-order rules over the journal mirror.
    let mut merge = telemetry::CausalMerge::new();
    merge.add_recorder(&recorder);
    let dag = merge.build();
    obs.causal_violations = Some(dag.verify().iter().map(ToString::to_string).collect());
    obs.causal_fingerprint = Some(dag.fingerprint());
    obs.causal_perfetto = Some(dag.to_perfetto());
    obs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::schedule::FaultEvent;

    #[test]
    fn fault_free_run_commits_and_passes_oracles() {
        let obs = TwoPhaseScenario.run(&FaultSchedule::empty());
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert!(oracle::check_all(&obs).is_empty());
        // The probe discovers every ots failpoint site.
        assert_eq!(
            obs.observed_sites,
            ots::failpoints::FAILPOINT_SITES
                .iter()
                .map(|s| (*s).to_owned())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn crash_after_decision_replays_to_commit() {
        let schedule = FaultSchedule::from_events(vec![FaultEvent::ArmFailpoint {
            site: "ots.after_decision".into(),
            after: 0,
        }]);
        let obs = TwoPhaseScenario.run(&schedule);
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert_eq!(obs.decision_durable, Some(true));
        assert!(oracle::check_all(&obs).is_empty(), "{:?}", oracle::check_all(&obs));
    }

    #[test]
    fn crash_before_decision_presumed_aborts() {
        let schedule = FaultSchedule::from_events(vec![FaultEvent::ArmFailpoint {
            site: "ots.before_decision".into(),
            after: 0,
        }]);
        let obs = TwoPhaseScenario.run(&schedule);
        assert_eq!(obs.outcome, RunOutcome::Aborted);
        assert_eq!(obs.decision_durable, Some(false));
        assert!(oracle::check_all(&obs).is_empty());
    }

    #[test]
    fn group_commit_fault_free_run_matches_per_record_trace() {
        let per_record = TwoPhaseScenario.run(&FaultSchedule::empty());
        let grouped = TwoPhaseGroupCommitScenario.run(&FaultSchedule::empty());
        assert_eq!(grouped.outcome, RunOutcome::Committed);
        assert!(oracle::check_all(&grouped).is_empty());
        // The wal configuration is invisible to the protocol: fault-free
        // traces are byte-identical.
        assert_eq!(per_record.trace, grouped.trace);
        assert_eq!(per_record.participant_commits, grouped.participant_commits);
    }

    #[test]
    fn group_commit_crash_after_decision_keeps_acked_records() {
        let schedule = FaultSchedule::from_events(vec![FaultEvent::ArmFailpoint {
            site: "ots.after_decision".into(),
            after: 0,
        }]);
        let obs = TwoPhaseGroupCommitScenario.run(&schedule);
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert_eq!(obs.decision_durable, Some(true));
        let acked = obs.durable_acked_lsn.expect("durability accounting");
        assert!(acked >= 1, "the forced decision must have been acked");
        assert!(oracle::check_all(&obs).is_empty(), "{:?}", oracle::check_all(&obs));
    }

    #[test]
    fn group_commit_crash_before_decision_presumed_aborts() {
        let schedule = FaultSchedule::from_events(vec![FaultEvent::ArmFailpoint {
            site: "ots.before_decision".into(),
            after: 0,
        }]);
        let obs = TwoPhaseGroupCommitScenario.run(&schedule);
        assert_eq!(obs.outcome, RunOutcome::Aborted);
        assert_eq!(obs.decision_durable, Some(false));
        assert!(oracle::check_all(&obs).is_empty(), "{:?}", oracle::check_all(&obs));
    }
}
