//! Partition-tolerant termination: 2PC through [`ots::RecoverableResource`]
//! participants with a [`ots::RecoveryCoordinator`] servant on the simulated
//! ORB, so every crash, restart or partition the schedule injects is
//! eventually answered by *participant-driven* in-doubt resolution.
//!
//! The runner closes the loop the `eventual-resolution` oracle checks: run
//! the protocol under the schedule, "restart" crashed components from their
//! surviving WALs, heal partitions by advancing the virtual clock, and give
//! the participants bounded resolution rounds of `replay_completion`
//! interrogation. Whatever is still in doubt afterwards is reported in
//! [`Observation::in_doubt_after_resolution`] — under presumed abort that
//! number must be zero.
//!
//! Two flavours share the runner: [`TerminationScenario`] interrogates an
//! honest coordinator; [`ForgetfulCoordinatorScenario`] is the planted bug —
//! its coordinator answers `unknown` for transactions it has no record of,
//! where presumed abort *requires* `rolled_back`. Undecided-crash schedules
//! then leave participants in doubt forever, which oracle #10 catches and
//! the sweep shrinks to the 1-minimal crash arm.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use orb::{NetworkConfig, Orb, Request, RetryPolicy, SimClock, Value};
use ots::recovery::{self, CoordinatorLocator, RECOVERY_COORDINATOR_INTERFACE};
use ots::txlog::{txid_to_value, KIND_TX_DECISION};
use ots::{
    DispatchConfig, DurableKv, ProtocolJournal, RecoverableResource, RecoveryCoordinator,
    Resource, ResolutionConfig, TransactionFactory, TxError,
};
use recovery_log::{FailpointSet, Lsn, MemWal, Wal};

use super::explore_two_phase::model_events_from_journal;
use crate::model::Event;
use crate::oracle::{Observation, RunOutcome};
use crate::scenario::Scenario;
use crate::schedule::{FaultEvent, FaultSchedule};

/// Honest termination protocol: every in-doubt participant is resolved once
/// faults cease and partitions heal.
pub struct TerminationScenario;

/// The planted-bug flavour: the coordinator forgets presumed abort and
/// answers `unknown` for undecided transactions, so participants that
/// prepared before an undecided crash stay in doubt forever.
pub struct ForgetfulCoordinatorScenario;

impl Scenario for TerminationScenario {
    fn name(&self) -> &'static str {
        "termination-protocol"
    }

    fn run(&self, schedule: &FaultSchedule) -> Observation {
        run_termination(schedule, false)
    }
}

impl Scenario for ForgetfulCoordinatorScenario {
    fn name(&self) -> &'static str {
        "termination-forgetful-coordinator"
    }

    fn run(&self, schedule: &FaultSchedule) -> Observation {
        run_termination(schedule, true)
    }
}

const COORDINATOR_NODE: &str = "coordinator";
const PARTICIPANT_NODE: &str = "participant";
/// Bounded post-heal resolution rounds; the virtual clock advances
/// [`ROUND_ADVANCE`] between rounds, so the rounds together outlast every
/// partition window the generator can produce (max `until_us` is 2300).
const RESOLUTION_ROUNDS: usize = 12;
const ROUND_ADVANCE: Duration = Duration::from_micros(500);
/// Far beyond any window the schedule space generates: honest runs must
/// never need a heuristic, and one recorded anyway is exactly what the
/// oracle's unhazarded-heuristic clause exists to catch.
const HEURISTIC_DEADLINE: Duration = Duration::from_secs(600);

/// Rebuild one participant (store + recoverable wrapper) from its WAL.
fn restart_participant(
    name: &str,
    wal: &Arc<dyn Wal>,
    failpoints: &FailpointSet,
) -> (Arc<DurableKv>, Arc<RecoverableResource>) {
    let kv = DurableKv::recover(name, Arc::clone(wal)).expect("recover durable kv");
    let res = RecoverableResource::recover(
        Arc::clone(&kv) as Arc<dyn Resource>,
        Arc::clone(wal),
        COORDINATOR_NODE,
    )
    .expect("recover resource")
    .with_failpoints(failpoints.clone());
    (kv, Arc::new(res))
}

fn run_termination(schedule: &FaultSchedule, forgetful: bool) -> Observation {
    let clock = SimClock::new();
    let orb = Orb::builder()
        .network(NetworkConfig::reliable())
        .clock(clock.clone())
        .build();
    let coord_node = orb.add_node(COORDINATOR_NODE).expect("add coordinator node");
    orb.add_node(PARTICIPANT_NODE).expect("add participant node");

    let coordinator_wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    let participant_wal: Arc<dyn Wal> = Arc::new(MemWal::new());

    // The participant-side black box (oracle #11): journal entries,
    // failpoint passages, partition windows and every restart land in one
    // ring on the run's virtual clock — this is the dump the explorer
    // staples to a shrunk forgetful-coordinator reproducer.
    let recorder = telemetry::FlightRecorder::with_time(
        PARTICIPANT_NODE,
        telemetry::DEFAULT_RECORDER_CAPACITY,
        Arc::new(clock.clone()),
    );
    // The coordinator's own ring plus the causality plane (oracle #12):
    // both recorders' Lamport clocks are adopted by the plane, and the
    // ORB's Lamport interceptor pair stamps every cross-node invocation,
    // so the merged happens-before DAG has real send→receive edges.
    let coord_recorder = telemetry::FlightRecorder::with_time(
        COORDINATOR_NODE,
        telemetry::DEFAULT_RECORDER_CAPACITY,
        Arc::new(clock.clone()),
    );
    let plane = telemetry::CausalityPlane::new();
    plane.register(&recorder);
    plane.register(&coord_recorder);
    orb.install_causality(plane.clone());

    let failpoints = FailpointSet::new();
    schedule.arm_into(&failpoints);
    failpoints.set_recorder(recorder.clone());
    orb.network().install_script(schedule.to_fault_script());
    schedule.apply_partitions(orb.network());
    for event in schedule.events() {
        if let FaultEvent::Partition { node, from_us, until_us } = event {
            recorder.record(telemetry::RecordKind::PartitionOpen, || {
                format!("{node} cut off {from_us}us..{until_us}us")
            });
        }
    }

    let servant = if forgetful {
        RecoveryCoordinator::forgetful(Arc::clone(&coordinator_wal))
    } else {
        RecoveryCoordinator::new(Arc::clone(&coordinator_wal))
    };
    let rc_object = coord_node
        .activate(RECOVERY_COORDINATOR_INTERFACE, servant)
        .expect("activate recovery coordinator");
    let locate: CoordinatorLocator = {
        let object = rc_object.clone();
        Arc::new(move |node: &str| (node == COORDINATOR_NODE).then(|| object.clone()))
    };

    let journal = ProtocolJournal::new();
    journal.set_recorder(recorder.clone());
    let factory = TransactionFactory::with_wal(Arc::clone(&coordinator_wal))
        .with_failpoints(failpoints.clone())
        .with_dispatch(DispatchConfig::serial())
        .with_journal(journal.clone());

    let kv_store = DurableKv::new("store", Arc::clone(&participant_wal));
    let kv_witness = DurableKv::new("witness", Arc::clone(&participant_wal));
    let res_store = Arc::new(
        RecoverableResource::new(
            Arc::clone(&kv_store) as Arc<dyn Resource>,
            Arc::clone(&participant_wal),
            COORDINATOR_NODE,
        )
        .with_failpoints(failpoints.clone()),
    );
    let res_witness = Arc::new(
        RecoverableResource::new(
            Arc::clone(&kv_witness) as Arc<dyn Resource>,
            Arc::clone(&participant_wal),
            COORDINATOR_NODE,
        )
        .with_failpoints(failpoints.clone()),
    );

    let control = factory.create().expect("begin record");
    control
        .coordinator()
        .register_resource(Arc::clone(&res_store) as Arc<dyn Resource>)
        .expect("register store");
    control
        .coordinator()
        .register_resource(Arc::clone(&res_witness) as Arc<dyn Resource>)
        .expect("register witness");
    kv_store.store().write(control.id(), "k", Value::from(1i64)).expect("write store");
    kv_witness.store().write(control.id(), "w", Value::from(2i64)).expect("write witness");

    let commit = control.terminator().commit();
    let mut trace = String::new();
    let _ = writeln!(trace, "commit: {commit:?}");
    // Injected faults cease here: the crashed component is about to be
    // restarted, and whatever the run left in doubt must now resolve.
    failpoints.clear();

    let mut obs = Observation::new(RunOutcome::Committed);
    let mut model_events = model_events_from_journal(&journal.events());

    let decision_durable = coordinator_wal
        .scan(Lsn::new(0))
        .expect("scan coordinator wal")
        .iter()
        .any(|r| r.kind == KIND_TX_DECISION);
    let coordinator_crashed = matches!(commit, Err(TxError::Log(_)));
    let in_doubt_before_restart = res_store.in_doubt().len() + res_witness.in_doubt().len();
    let needs_resolution = coordinator_crashed
        || matches!(commit, Err(TxError::Heuristic { .. }))
        || in_doubt_before_restart > 0;

    let (remaining, heuristics) = if needs_resolution {
        let _ = writeln!(
            trace,
            "restart: {in_doubt_before_restart} in doubt, decision_durable={decision_durable}"
        );
        // Restart arms crash the *recovered* participant too: the schedule
        // says this component dies again inside its own resolution path.
        let restart_failpoints = FailpointSet::new();
        for event in schedule.events() {
            if let FaultEvent::Restart { site, after } = event {
                restart_failpoints.arm(site.clone(), *after);
            }
        }
        restart_failpoints.set_recorder(recorder.clone());
        recorder.record(telemetry::RecordKind::Restart, || {
            format!("store+witness rebuilt from wal ({in_doubt_before_restart} in doubt)")
        });
        let (mut kv_store2, mut res_store2) =
            restart_participant("store", &participant_wal, &restart_failpoints);
        let (mut kv_witness2, mut res_witness2) =
            restart_participant("witness", &participant_wal, &restart_failpoints);

        let config = ResolutionConfig::new(RetryPolicy::new(3), HEURISTIC_DEADLINE);
        for round in 1..=RESOLUTION_ROUNDS {
            let mut crashed_mid_resolution = false;
            for res in [&res_store2, &res_witness2] {
                if res.in_doubt().is_empty() {
                    continue;
                }
                let name = res.inner().resource_name().to_owned();
                match res.resolve_in_doubt(&orb, PARTICIPANT_NODE, &locate, &config) {
                    Ok(report) => {
                        let _ = writeln!(
                            trace,
                            "round {round} {name}: committed={} rolled_back={} unresolved={}",
                            report.committed.len(),
                            report.rolled_back.len(),
                            report.unresolved.len()
                        );
                    }
                    Err(e) => {
                        let _ = writeln!(trace, "round {round} {name}: crashed again: {e:?}");
                        crashed_mid_resolution = true;
                    }
                }
            }
            if crashed_mid_resolution {
                // Second restart: a crash inside resolution is recovered
                // from like any other, and this time it stays up.
                recorder.record(telemetry::RecordKind::Restart, || {
                    format!("store+witness rebuilt again after round {round} crash")
                });
                restart_failpoints.clear();
                (kv_store2, res_store2) =
                    restart_participant("store", &participant_wal, &restart_failpoints);
                (kv_witness2, res_witness2) =
                    restart_participant("witness", &participant_wal, &restart_failpoints);
            }
            if res_store2.in_doubt().is_empty() && res_witness2.in_doubt().is_empty() {
                break;
            }
            // Let scheduled partition windows expire between rounds.
            clock.advance(ROUND_ADVANCE);
        }

        let remaining = res_store2.in_doubt().len() + res_witness2.in_doubt().len();
        let heuristics = res_store2.heuristics().len() + res_witness2.heuristics().len();
        // Replay stability: one more restart over the same logs must land
        // in exactly the post-resolution state.
        let (_, res_store3) =
            restart_participant("store", &participant_wal, &FailpointSet::new());
        let (_, res_witness3) =
            restart_participant("witness", &participant_wal, &FailpointSet::new());
        obs.replay_stable = Some(
            res_store3.in_doubt().len() == res_store2.in_doubt().len()
                && res_witness3.in_doubt().len() == res_witness2.in_doubt().len(),
        );
        let replayed =
            if decision_durable { RunOutcome::Committed } else { RunOutcome::Aborted };
        obs.decision_durable = Some(decision_durable);
        obs.replay_outcome = Some(replayed);
        obs.outcome = replayed;
        obs.participant_commits = vec![
            ("store".into(), kv_store2.store().read_committed("k").is_some()),
            ("witness".into(), kv_witness2.store().read_committed("w").is_some()),
        ];
        let _ = writeln!(
            trace,
            "resolved: store={:?} witness={:?} in_doubt={remaining} heuristics={heuristics}",
            kv_store2.store().read_committed("k"),
            kv_witness2.store().read_committed("w")
        );
        if coordinator_crashed {
            // The crash cut the journal short of its terminal event; the
            // durable decision settles the direction for the model trace.
            model_events.push(Event::TxCompleted { committed: decision_durable });
        }
        (remaining, heuristics)
    } else {
        obs.outcome = match &commit {
            Ok(_) => RunOutcome::Committed,
            Err(_) => RunOutcome::Aborted,
        };
        obs.participant_commits = vec![
            ("store".into(), kv_store.store().read_committed("k").is_some()),
            ("witness".into(), kv_witness.store().read_committed("w").is_some()),
        ];
        let _ = writeln!(
            trace,
            "final: store={:?} witness={:?}",
            kv_store.store().read_committed("k"),
            kv_witness.store().read_committed("w")
        );
        (0, 0)
    };

    // Post-mortem audit over the (possibly partitioned) network: advance
    // past every scheduled window, then interrogate the coordinator once
    // per participant. Clean probe runs thereby send remote messages, so
    // the schedule space reaches drop/duplicate/partition arms.
    let horizon = schedule
        .events()
        .iter()
        .filter_map(|e| match e {
            FaultEvent::Partition { until_us, .. } => Some(*until_us),
            _ => None,
        })
        .max()
        .map_or(Duration::ZERO, Duration::from_micros);
    if clock.now() < horizon {
        clock.advance(horizon - clock.now());
    }
    for event in schedule.events() {
        if let FaultEvent::Partition { node, until_us, .. } = event {
            recorder.record(telemetry::RecordKind::PartitionHeal, || {
                format!("{node} healed (window closed at {until_us}us)")
            });
        }
    }
    let audit_policy = RetryPolicy::new(3);
    for name in ["store", "witness"] {
        let request =
            Request::new("replay_completion").with_arg("tx", txid_to_value(control.id()));
        let answer =
            orb.invoke_with_policy(PARTICIPANT_NODE, &rc_object, request, &audit_policy, None);
        let _ = writeln!(trace, "audit[{name}]: {:?}", answer.map(|reply| reply.result));
    }

    obs.in_doubt_after_resolution = Some(remaining as u32);
    obs.heuristics = Some(heuristics as u32);
    // Nothing in this scenario makes an outcome unknowable forever: the
    // coordinator's log always answers once partitions heal, so a recorded
    // heuristic is never legitimate here.
    obs.hazarded = Some(false);
    obs.transient_faults = Some(schedule.transient_fault_count());
    obs.hard_faults = Some(schedule.hard_fault_count());
    obs.retry_budget = Some(3);
    obs.trace = trace;
    obs.observed_sites = failpoints.observed_sites();
    obs.remote_messages = orb.network().remote_messages();
    obs.partition_nodes =
        vec![COORDINATOR_NODE.to_owned(), PARTICIPANT_NODE.to_owned()];
    obs.restart_sites = recovery::failpoints::FAILPOINT_SITES
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    obs.model_events = Some(model_events);
    obs.recorder_events = Some(
        recorder
            .events()
            .iter()
            .map(|e| (e.kind.label().to_owned(), e.detail.clone()))
            .collect(),
    );
    obs.recorder_fingerprint = Some(recorder.fingerprint());
    obs.recorder_dump = Some(recorder.dump());
    // Oracle #12: fold both nodes' logs into the global happens-before
    // DAG and verify it — acyclic, receive-after-send on every matched
    // wire edge, protocol order respected across the merge.
    let dag = plane.merge().build();
    obs.causal_violations = Some(dag.verify().iter().map(ToString::to_string).collect());
    obs.causal_fingerprint = Some(dag.fingerprint());
    obs.causal_perfetto = Some(dag.to_perfetto());
    obs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    #[test]
    fn fault_free_run_commits_resolves_nothing_and_passes_oracles() {
        let obs = TerminationScenario.run(&FaultSchedule::empty());
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert_eq!(obs.in_doubt_after_resolution, Some(0));
        assert_eq!(obs.heuristics, Some(0));
        assert!(obs.remote_messages >= 2, "the audit interrogates remotely");
        assert!(!obs.partition_nodes.is_empty() && !obs.restart_sites.is_empty());
        let violations = oracle::check_all(&obs);
        assert!(violations.is_empty(), "{violations:?}");
        // The probe observes the coordinator sites plus the participant
        // wrapper's prepare/apply sites (resolution never runs fault-free,
        // so before_resolve is reachable only through restart arms).
        assert!(obs
            .observed_sites
            .contains(&recovery::failpoints::AFTER_PREPARED.to_owned()));
        assert!(obs
            .observed_sites
            .contains(&recovery::failpoints::BEFORE_APPLY.to_owned()));
        assert!(obs.observed_sites.contains(&"ots.before_decision".to_owned()));
    }

    #[test]
    fn coordinator_crash_before_decision_presumed_aborts_via_interrogation() {
        let schedule = FaultSchedule::from_events(vec![FaultEvent::Restart {
            site: "ots.before_decision".into(),
            after: 0,
        }]);
        let obs = TerminationScenario.run(&schedule);
        assert_eq!(obs.outcome, RunOutcome::Aborted);
        assert_eq!(obs.decision_durable, Some(false));
        assert_eq!(obs.in_doubt_after_resolution, Some(0));
        assert_eq!(obs.heuristics, Some(0));
        let violations = oracle::check_all(&obs);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn coordinator_crash_after_decision_resolves_to_commit() {
        let schedule = FaultSchedule::from_events(vec![FaultEvent::Restart {
            site: "ots.after_decision".into(),
            after: 0,
        }]);
        let obs = TerminationScenario.run(&schedule);
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert_eq!(obs.decision_durable, Some(true));
        assert_eq!(obs.in_doubt_after_resolution, Some(0));
        assert!(obs.participant_commits.iter().all(|(_, c)| *c));
        let violations = oracle::check_all(&obs);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn participant_crash_during_delivery_resolves_after_restart() {
        // The decision is forced and delivery begins; the participant dies
        // applying it (heuristic surface on the coordinator side), restarts,
        // and interrogation finishes the job.
        let schedule = FaultSchedule::from_events(vec![FaultEvent::Restart {
            site: recovery::failpoints::BEFORE_APPLY.into(),
            after: 0,
        }]);
        let obs = TerminationScenario.run(&schedule);
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert_eq!(obs.decision_durable, Some(true));
        assert_eq!(obs.in_doubt_after_resolution, Some(0));
        assert!(obs.participant_commits.iter().all(|(_, c)| *c));
        let violations = oracle::check_all(&obs);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn resolution_waits_out_a_partition_window() {
        let schedule = FaultSchedule::from_events(vec![
            FaultEvent::Restart { site: "ots.after_decision".into(), after: 0 },
            FaultEvent::Partition { node: PARTICIPANT_NODE.into(), from_us: 0, until_us: 2000 },
        ]);
        let obs = TerminationScenario.run(&schedule);
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert_eq!(obs.in_doubt_after_resolution, Some(0), "heal then resolve");
        assert_eq!(obs.heuristics, Some(0), "no heuristic while interrogation can answer");
        let violations = oracle::check_all(&obs);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn forgetful_coordinator_leaves_undecided_participants_in_doubt() {
        let schedule = FaultSchedule::from_events(vec![FaultEvent::Restart {
            site: "ots.before_decision".into(),
            after: 0,
        }]);
        let obs = ForgetfulCoordinatorScenario.run(&schedule);
        assert_eq!(obs.in_doubt_after_resolution, Some(2), "both participants stuck");
        let violations = oracle::check_all(&obs);
        assert!(
            violations.iter().any(|v| v.oracle == "eventual-resolution"),
            "{violations:?}"
        );
    }

    #[test]
    fn forgetful_coordinator_still_passes_decided_histories() {
        let obs = ForgetfulCoordinatorScenario.run(&FaultSchedule::empty());
        let violations = oracle::check_all(&obs);
        assert!(violations.is_empty(), "clean runs hide the planted bug: {violations:?}");
    }

    #[test]
    fn runs_are_deterministic() {
        let schedule = FaultSchedule::from_events(vec![
            FaultEvent::Restart { site: "ots.before_decision".into(), after: 0 },
            FaultEvent::Partition { node: COORDINATOR_NODE.into(), from_us: 100, until_us: 900 },
            FaultEvent::DropMessage { nth: 0 },
        ]);
        let a = TerminationScenario.run(&schedule);
        let b = TerminationScenario.run(&schedule);
        assert!(oracle::check_determinism(&a, &b).is_empty());
    }
}
