//! Scenario adapters: one per figure-test of the paper.

mod broken;
mod btp_atom;
mod causal_fixture;
mod explore_two_phase;
mod nested;
mod saga;
mod termination;
mod two_phase;
mod workflow;

pub use broken::BrokenWorkflowScenario;
pub use btp_atom::BtpAtomScenario;
pub use causal_fixture::{ReorderedOutcomeScenario, RACE_SITE};
pub use explore_two_phase::{BrokenAtomicCommitScenario, ExplorableTwoPhase};
pub use nested::NestedCompensationScenario;
pub use saga::SagaScenario;
pub use termination::{ForgetfulCoordinatorScenario, TerminationScenario};
pub use two_phase::{TwoPhaseGroupCommitScenario, TwoPhaseScenario};
pub use workflow::{WorkflowNoRetryScenario, WorkflowRetryScenario, WorkflowScenario};

use crate::scenario::Scenario;

/// Every well-behaved scenario (excludes the intentionally broken
/// fixture), in sweep order.
pub fn all() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(TwoPhaseScenario),
        Box::new(TwoPhaseGroupCommitScenario),
        Box::new(NestedCompensationScenario),
        Box::new(SagaScenario),
        Box::new(WorkflowScenario),
        Box::new(BtpAtomScenario),
        Box::new(TerminationScenario),
    ]
}
