//! Fig. 9 open nesting: nested transaction B commits early inside
//! enclosing activity A; if A later fails, the CompensationAction must
//! undo B exactly once.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use activity_service::{
    Activity, ActivityEvent, ActivityJournal, CompletionStatus, DispatchConfig, TraceLog,
};
use orb::SimClock;
use recovery_log::FailpointSet;
use tx_models::compensation::{
    ActivityRegistry, CompensationAction, CompletionSignalSet, InMemoryActivityRegistry,
    COMPLETION_SET,
};

use crate::model::signal_set::{conventional_failure, events_from_trace};
use crate::model::Event;
use crate::oracle::{EffectCount, Observation, RunOutcome};
use crate::scenario::Scenario;
use crate::schedule::FaultSchedule;

/// Both coordinators run a set named [`COMPLETION_SET`]; prefix each
/// trace's set names with its activity so the reference model audits them
/// as the distinct protocol instances they are.
fn prefix_sets(events: Vec<Event>, prefix: &str) -> impl Iterator<Item = Event> + use<'_> {
    events.into_iter().map(move |event| match event {
        Event::SignalRequested { set } => Event::SignalRequested { set: format!("{prefix}/{set}") },
        Event::SignalTransmitted { set, signal, action } => {
            Event::SignalTransmitted { set: format!("{prefix}/{set}"), signal, action }
        }
        Event::ResponseCollated { set, failure } => {
            Event::ResponseCollated { set: format!("{prefix}/{set}"), failure }
        }
        Event::OutcomeRead { set, failure } => {
            Event::OutcomeRead { set: format!("{prefix}/{set}"), failure }
        }
        other => other,
    })
}

/// Site making nested activity B fail instead of committing early.
pub const SITE_FAIL_B: &str = "fig9.fail_b";
/// Site making enclosing activity A complete in failure.
pub const SITE_FAIL_A: &str = "fig9.fail_a";

/// The fig. 9 structure under scripted completion faults.
pub struct NestedCompensationScenario;

impl Scenario for NestedCompensationScenario {
    fn name(&self) -> &'static str {
        "nested-compensation"
    }

    fn run(&self, schedule: &FaultSchedule) -> Observation {
        let failpoints = FailpointSet::new();
        schedule.arm_into(&failpoints);
        let b_fails = failpoints.hit(SITE_FAIL_B).is_err();
        let a_fails = failpoints.hit(SITE_FAIL_A).is_err();

        let registry = InMemoryActivityRegistry::new();
        let a = Activity::new_root("A", SimClock::new());
        let activity_journal = ActivityJournal::new();
        a.set_journal(activity_journal.clone());
        a.coordinator().set_dispatch_config(DispatchConfig::serial());
        let trace_a = TraceLog::new();
        a.coordinator().set_trace(trace_a.clone());
        a.coordinator()
            .add_signal_set(Box::new(CompletionSignalSet::new()))
            .expect("A completion set");
        a.set_completion_signal_set(COMPLETION_SET);
        registry.register(&a);

        let b = a.begin_child("B").expect("begin B");
        b.coordinator().set_dispatch_config(DispatchConfig::serial());
        let trace_b = TraceLog::new();
        b.coordinator().set_trace(trace_b.clone());
        b.coordinator()
            .add_signal_set(Box::new(CompletionSignalSet::propagating_to(a.id())))
            .expect("B completion set");
        b.set_completion_signal_set(COMPLETION_SET);
        registry.register(&b);

        let undone = Arc::new(AtomicU32::new(0));
        let undone2 = Arc::clone(&undone);
        let action = CompensationAction::new(
            "compensate-B",
            registry.clone() as Arc<dyn ActivityRegistry>,
            move || {
                undone2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        );
        b.coordinator()
            .register_action(COMPLETION_SET, Arc::clone(&action) as _);

        if b_fails {
            b.complete_with_status(CompletionStatus::Fail).expect("fail B");
        } else {
            b.complete().expect("complete B");
        }
        if a_fails {
            a.set_completion_status(CompletionStatus::FailOnly).expect("doom A");
        }
        a.complete().expect("complete A");

        let mut obs = Observation::new(if a_fails {
            RunOutcome::Aborted
        } else {
            RunOutcome::Committed
        });
        // B's early-committed effect must survive exactly when A commits.
        if !b_fails {
            obs.completed_steps = vec!["B".into()];
            obs.participant_commits = vec![("B".into(), !action.compensated())];
        }
        if action.compensated() {
            obs.compensated_steps = vec!["B".into()];
        }
        obs.compensation_required = !b_fails && a_fails;
        let required = u64::from(obs.compensation_required);
        obs.effects = vec![EffectCount {
            action: "compensate-B".into(),
            observed: u64::from(undone.load(Ordering::SeqCst)),
            min: required,
            max: required,
        }];
        obs.trace = format!("--- A ---\n{}--- B ---\n{}", trace_a.render(), trace_b.render());
        obs.observed_sites = failpoints.observed_sites();
        // The activity journal gives the fig. 4 nesting events; each
        // coordinator trace gives its fig. 5 signal-set events. The
        // models audit independently, so order across protocols is free —
        // B's set concluded before A's ran.
        let mut model_events: Vec<Event> = activity_journal
            .events()
            .iter()
            .map(|event| match event {
                ActivityEvent::Begun { activity, parent, .. } => Event::ActivityBegun {
                    activity: activity.raw(),
                    parent: parent.map(|p| p.raw()),
                },
                ActivityEvent::Completed { activity, status, .. } => Event::ActivityCompleted {
                    activity: activity.raw(),
                    success: *status == CompletionStatus::Success,
                },
            })
            .collect();
        model_events
            .extend(prefix_sets(events_from_trace(&trace_b.events(), &conventional_failure), "B"));
        model_events
            .extend(prefix_sets(events_from_trace(&trace_a.events(), &conventional_failure), "A"));
        obs.model_events = Some(model_events);
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::schedule::FaultEvent;

    fn arm(site: &str) -> FaultEvent {
        FaultEvent::ArmFailpoint { site: site.into(), after: 0 }
    }

    #[test]
    fn fault_free_run_commits_b_without_compensation() {
        let obs = NestedCompensationScenario.run(&FaultSchedule::empty());
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert_eq!(obs.participant_commits, vec![("B".to_owned(), true)]);
        assert!(oracle::check_all(&obs).is_empty());
        assert_eq!(obs.observed_sites, vec![SITE_FAIL_A, SITE_FAIL_B]);
    }

    #[test]
    fn a_failing_after_b_committed_compensates_b() {
        let obs =
            NestedCompensationScenario.run(&FaultSchedule::from_events(vec![arm(SITE_FAIL_A)]));
        assert_eq!(obs.outcome, RunOutcome::Aborted);
        assert_eq!(obs.compensated_steps, vec!["B"]);
        assert!(oracle::check_all(&obs).is_empty(), "{:?}", oracle::check_all(&obs));
    }

    #[test]
    fn b_failing_leaves_nothing_to_compensate() {
        let obs = NestedCompensationScenario
            .run(&FaultSchedule::from_events(vec![arm(SITE_FAIL_B), arm(SITE_FAIL_A)]));
        assert_eq!(obs.outcome, RunOutcome::Aborted);
        assert!(obs.compensated_steps.is_empty());
        assert!(obs.participant_commits.is_empty());
        assert!(oracle::check_all(&obs).is_empty());
    }
}
