//! Sagas: step failures injected through scenario-owned failpoint sites;
//! the compensation oracle checks reverse-order undo of committed steps.

use std::collections::BTreeMap;
use std::sync::Arc;

use activity_service::ActivityService;
use parking_lot::Mutex;
use recovery_log::FailpointSet;
use tx_models::sagas::{Saga, SagaOutcome};

use crate::model::Event;
use crate::oracle::{EffectCount, Observation, RunOutcome};
use crate::scenario::Scenario;
use crate::schedule::FaultSchedule;

const STEPS: &[&str] = &["taxi", "restaurant", "hotel"];

fn step_site(step: &str) -> String {
    format!("saga.step.{step}")
}

/// A three-step trip-booking saga. Arming `saga.step.<name>` makes that
/// step's forward work fail, which must trigger reverse-order compensation
/// of everything already committed.
pub struct SagaScenario;

impl Scenario for SagaScenario {
    fn name(&self) -> &'static str {
        "saga"
    }

    fn run(&self, schedule: &FaultSchedule) -> Observation {
        let failpoints = FailpointSet::new();
        schedule.arm_into(&failpoints);
        let service = ActivityService::new();
        let forward_effects: Arc<Mutex<BTreeMap<String, u64>>> =
            Arc::new(Mutex::new(BTreeMap::new()));
        let undo_order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

        let mut saga = Saga::new("trip");
        for step in STEPS {
            let fp = failpoints.clone();
            let effects = Arc::clone(&forward_effects);
            let undos = Arc::clone(&undo_order);
            let site = step_site(step);
            let forward_step = (*step).to_owned();
            let undo_step = (*step).to_owned();
            saga = saga.step(
                *step,
                move || {
                    fp.hit(&site).map_err(|e| e.to_string())?;
                    *effects.lock().entry(forward_step.clone()).or_insert(0) += 1;
                    Ok(())
                },
                move || {
                    undos.lock().push(undo_step.clone());
                    Ok(())
                },
            );
        }
        let report = saga.run(&service).expect("saga machinery");

        let mut obs = Observation::new(match report.outcome {
            SagaOutcome::Completed => RunOutcome::Committed,
            SagaOutcome::Compensated { .. } => RunOutcome::Aborted,
        });
        obs.compensation_required = matches!(report.outcome, SagaOutcome::Compensated { .. });
        obs.completed_steps = report.committed.clone();
        obs.compensated_steps = undo_order.lock().clone();

        let effects = forward_effects.lock();
        for step in STEPS {
            let committed = report.committed.iter().any(|s| s == step);
            let undone = obs.compensated_steps.iter().any(|s| s == step);
            obs.participant_commits.push(((*step).to_owned(), committed && !undone));
            let expected = u64::from(committed);
            obs.effects.push(EffectCount {
                action: (*step).to_owned(),
                observed: effects.get(*step).copied().unwrap_or(0),
                min: expected,
                max: expected,
            });
        }
        obs.trace = format!(
            "committed={:?} compensated={:?} outcome={:?}\n",
            report.committed,
            obs.compensated_steps,
            report.outcome
        );
        obs.observed_sites = failpoints.observed_sites();
        // Reconstruct the run as reference-model events (forward steps
        // commit strictly before any compensation runs, so committed
        // order followed by undo order is the temporal order) and let the
        // refinement oracle replay it through the §5.1 saga model.
        let mut model_events: Vec<Event> = report
            .committed
            .iter()
            .map(|s| Event::StepCommitted { step: s.clone() })
            .collect();
        model_events.extend(
            obs.compensated_steps.iter().map(|s| Event::StepCompensated { step: s.clone() }),
        );
        model_events.push(Event::SagaEnded {
            completed: matches!(report.outcome, SagaOutcome::Completed),
        });
        obs.model_events = Some(model_events);
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::schedule::FaultEvent;

    #[test]
    fn fault_free_saga_commits_every_step() {
        let obs = SagaScenario.run(&FaultSchedule::empty());
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert_eq!(obs.completed_steps, STEPS);
        assert!(oracle::check_all(&obs).is_empty());
        assert_eq!(obs.observed_sites.len(), STEPS.len());
    }

    #[test]
    fn failing_the_last_step_compensates_in_reverse() {
        let schedule = FaultSchedule::from_events(vec![FaultEvent::ArmFailpoint {
            site: step_site("hotel"),
            after: 0,
        }]);
        let obs = SagaScenario.run(&schedule);
        assert_eq!(obs.outcome, RunOutcome::Aborted);
        assert_eq!(obs.completed_steps, vec!["taxi", "restaurant"]);
        assert_eq!(obs.compensated_steps, vec!["restaurant", "taxi"]);
        assert!(oracle::check_all(&obs).is_empty(), "{:?}", oracle::check_all(&obs));
    }

    #[test]
    fn failing_the_first_step_compensates_nothing() {
        let schedule = FaultSchedule::from_events(vec![FaultEvent::ArmFailpoint {
            site: step_site("taxi"),
            after: 0,
        }]);
        let obs = SagaScenario.run(&schedule);
        assert_eq!(obs.outcome, RunOutcome::Aborted);
        assert!(obs.completed_steps.is_empty());
        assert!(obs.compensated_steps.is_empty());
        assert!(oracle::check_all(&obs).is_empty());
    }
}
