//! [`Explorable`] 2PC scenarios for the DPOR explorer.
//!
//! [`ExplorableTwoPhase`] is the real protocol: three participants under
//! the OTS coordinator with the explorer's [`ChoiceDriver`] installed as
//! the delivery sequencer, so every prepare/phase-two delivery order is
//! enumerable, crossed with a crash at each `ots.*` failpoint site. The
//! coordinator's [`ots::ProtocolJournal`] is mapped into reference-model
//! events, binding the refinement oracle on every interleaving.
//!
//! [`BrokenAtomicCommitScenario`] is the planted spec violation the
//! explorer must catch: a hand-rolled commit loop that decides from the
//! **last** collected vote instead of all of them. Under registration
//! order the vetoing participant happens to be polled last and the bug is
//! invisible; any order that polls it earlier forces a commit decision
//! after a rollback vote — exactly the transition the presumed-abort
//! model rejects. Effects are arranged so every other oracle stays
//! quiet: only refinement (#9) sees it, and only under reordering.

use std::fmt::Write as _;
use std::sync::Arc;

use orb::choice::DeliverySequencer;
use orb::pool::DispatchConfig;
use orb::Value;
use ots::txlog::KIND_TX_DECISION;
use ots::{Resource, TransactionFactory, TransactionalKv, TwoPcEvent, TxError};
use recovery_log::{FailpointSet, Lsn, MemWal, Wal};

use crate::explore::{ChoiceDriver, Explorable};
use crate::model::{Event, Vote};
use crate::oracle::{Observation, RunOutcome};
use crate::schedule::FaultSchedule;

/// Map the coordinator's protocol journal into reference-model events.
/// Shared with the seeded-sweep 2PC scenarios, which journal the same
/// protocol.
pub(crate) fn model_events_from_journal(events: &[TwoPcEvent]) -> Vec<Event> {
    events
        .iter()
        .map(|event| match event {
            TwoPcEvent::PrepareSent { participant } => {
                Event::PrepareSent { participant: participant.clone() }
            }
            TwoPcEvent::VoteRecorded { participant, vote } => Event::VoteRecorded {
                participant: participant.clone(),
                vote: match vote {
                    ots::VoteKind::Commit => Vote::Commit,
                    ots::VoteKind::ReadOnly => Vote::ReadOnly,
                    ots::VoteKind::Rollback => Vote::Rollback,
                    ots::VoteKind::Failed => Vote::Failed,
                },
            },
            TwoPcEvent::DecisionForced { commit } => Event::DecisionForced { commit: *commit },
            TwoPcEvent::OutcomeDelivered { participant, commit, .. } => {
                Event::OutcomeDelivered { participant: participant.clone(), commit: *commit }
            }
            TwoPcEvent::Forgotten { participant } => {
                Event::Forgotten { participant: participant.clone() }
            }
            TwoPcEvent::Completed { committed } => Event::TxCompleted { committed: *committed },
        })
        .collect()
}

/// Three-participant logged 2PC with explorer-steered delivery order.
pub struct ExplorableTwoPhase;

impl Explorable for ExplorableTwoPhase {
    fn name(&self) -> &str {
        "explorable-two-phase"
    }

    fn run_exploration(&self, faults: &FaultSchedule, driver: &Arc<ChoiceDriver>) -> Observation {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let failpoints = FailpointSet::new();
        faults.arm_into(&failpoints);
        let journal = ots::ProtocolJournal::new();
        // The black box the explorer staples to a shrunk divergence.
        let recorder = telemetry::FlightRecorder::new(
            "coordinator",
            telemetry::DEFAULT_RECORDER_CAPACITY,
        );
        journal.set_recorder(recorder.clone());
        failpoints.set_recorder(recorder.clone());
        let factory = TransactionFactory::with_wal(Arc::clone(&wal))
            .with_failpoints(failpoints.clone())
            .with_dispatch(DispatchConfig::serial())
            .with_sequencer(Arc::clone(driver) as Arc<dyn orb::DeliverySequencer>)
            .with_journal(journal.clone());
        let store = Arc::new(TransactionalKv::new("store"));
        let witness = Arc::new(TransactionalKv::new("witness"));
        let ledger = Arc::new(TransactionalKv::new("ledger"));

        let control = factory.create().expect("begin record");
        for (kv, key, value) in
            [(&store, "k", 1i64), (&witness, "w", 2i64), (&ledger, "l", 3i64)]
        {
            kv.enlist(&control).expect("enlist");
            kv.write(control.id(), key, Value::from(value)).expect("write");
        }

        let commit = control.terminator().commit();
        let mut trace = String::new();
        let _ = writeln!(trace, "commit: {commit:?}");

        let mut obs = Observation::new(RunOutcome::Committed);
        let mut model_events = model_events_from_journal(&journal.events());
        match commit {
            Ok(_) => {}
            Err(TxError::Log(_)) => {
                // The injected crash: disarm, then a fresh factory (no
                // sequencer, no journal — recovery has no ordering
                // freedom) replays the surviving log.
                failpoints.clear();
                let decision_durable = wal
                    .scan(Lsn::new(0))
                    .expect("scan wal")
                    .iter()
                    .any(|r| r.kind == KIND_TX_DECISION);
                let (store2, witness2, ledger2) =
                    (Arc::clone(&store), Arc::clone(&witness), Arc::clone(&ledger));
                let resolver = move |name: &str| -> Option<Arc<dyn Resource>> {
                    match name {
                        "store" => Some(store2.clone()),
                        "witness" => Some(witness2.clone()),
                        "ledger" => Some(ledger2.clone()),
                        _ => None,
                    }
                };
                let report = TransactionFactory::with_wal(Arc::clone(&wal))
                    .recover(&resolver)
                    .expect("recovery");
                let replayed = if report.recommitted.is_empty() {
                    RunOutcome::Aborted
                } else {
                    RunOutcome::Committed
                };
                let _ = writeln!(
                    trace,
                    "recovered: recommitted={:?} presumed_aborted={:?}",
                    report.recommitted, report.presumed_aborted
                );
                let second = TransactionFactory::with_wal(Arc::clone(&wal))
                    .recover(&resolver)
                    .expect("second recovery");
                obs.replay_stable =
                    Some(second.recommitted.is_empty() && second.presumed_aborted.is_empty());
                obs.decision_durable = Some(decision_durable);
                obs.replay_outcome = Some(replayed);
                obs.outcome = replayed;
                // The crash cut the journal short of its terminal event;
                // recovery settled the direction, so close the model
                // trace with it (the §12 rules still apply: a committed
                // close without a forced decision is a divergence).
                model_events.push(Event::TxCompleted {
                    committed: replayed == RunOutcome::Committed,
                });
            }
            Err(other) => {
                let _ = writeln!(trace, "non-crash failure: {other:?}");
                obs.outcome = RunOutcome::Aborted;
            }
        }

        obs.participant_commits = vec![
            ("store".into(), store.read_committed("k").is_some()),
            ("witness".into(), witness.read_committed("w").is_some()),
            ("ledger".into(), ledger.read_committed("l").is_some()),
        ];
        let _ = writeln!(
            trace,
            "final: store={:?} witness={:?} ledger={:?}",
            store.read_committed("k"),
            witness.read_committed("w"),
            ledger.read_committed("l")
        );
        obs.trace = trace;
        obs.observed_sites = failpoints.observed_sites();
        obs.model_events = Some(model_events);
        obs.recorder_events = Some(
            recorder
                .events()
                .iter()
                .map(|e| (e.kind.label().to_owned(), e.detail.clone()))
                .collect(),
        );
        obs.recorder_fingerprint = Some(recorder.fingerprint());
        obs.recorder_dump = Some(recorder.dump());
        obs
    }
}

/// The planted fixture: a commit loop that decides from the last vote.
pub struct BrokenAtomicCommitScenario;

struct BrokenParticipant {
    name: &'static str,
    vote: Vote,
    has_effect: bool,
}

impl Explorable for BrokenAtomicCommitScenario {
    fn name(&self) -> &str {
        "broken-atomic-commit"
    }

    fn run_exploration(&self, _faults: &FaultSchedule, driver: &Arc<ChoiceDriver>) -> Observation {
        // "auditor" vetoes but holds no forward effects, so atomicity has
        // nothing to disagree with — only the decision rule is wrong.
        let participants = [
            BrokenParticipant { name: "store", vote: Vote::Commit, has_effect: true },
            BrokenParticipant { name: "witness", vote: Vote::Commit, has_effect: true },
            BrokenParticipant { name: "auditor", vote: Vote::Rollback, has_effect: false },
        ];
        let mut events = Vec::new();
        let mut trace = String::new();
        // Even the planted bug keeps a black box: its dump rides the
        // minimized divergence, showing the vote order that exposed it.
        let recorder = telemetry::FlightRecorder::new(
            "broken-coordinator",
            telemetry::DEFAULT_RECORDER_CAPACITY,
        );

        // Vote solicitation in sequencer order. The bug: instead of
        // requiring unanimity, the decision tracks whichever vote arrived
        // last — under registration order that happens to be the veto, so
        // the default path looks correct.
        let mut pending: Vec<usize> = (0..participants.len()).collect();
        let mut last_vote = None;
        while !pending.is_empty() {
            let labels: Vec<&str> = pending.iter().map(|i| participants[*i].name).collect();
            let pick = if pending.len() > 1 {
                orb::choice::clamp_choice(driver.next_delivery("prepare", &labels), labels.len())
            } else {
                0
            };
            let participant = &participants[pending.remove(pick)];
            events.push(Event::PrepareSent { participant: participant.name.to_owned() });
            events.push(Event::VoteRecorded {
                participant: participant.name.to_owned(),
                vote: participant.vote,
            });
            driver.report("prepare", participant.name, participant.vote.is_yes());
            recorder.record(telemetry::RecordKind::Protocol, || {
                format!("vote_recorded({}, {:?})", participant.name, participant.vote)
            });
            let _ = writeln!(trace, "voted: {} {:?}", participant.name, participant.vote);
            last_vote = Some(participant.vote);
        }
        let commit = last_vote == Some(Vote::Commit);
        recorder
            .record(telemetry::RecordKind::Protocol, || format!("decision_forced(commit={commit})"));

        if commit {
            events.push(Event::DecisionForced { commit: true });
            for participant in participants.iter().filter(|p| p.vote == Vote::Commit) {
                events.push(Event::OutcomeDelivered {
                    participant: participant.name.to_owned(),
                    commit: true,
                });
                events.push(Event::Forgotten { participant: participant.name.to_owned() });
            }
        } else {
            for participant in &participants {
                events.push(Event::OutcomeDelivered {
                    participant: participant.name.to_owned(),
                    commit: false,
                });
            }
        }
        events.push(Event::TxCompleted { committed: commit });
        let _ = writeln!(trace, "decision: commit={commit}");

        let mut obs =
            Observation::new(if commit { RunOutcome::Committed } else { RunOutcome::Aborted });
        obs.participant_commits = participants
            .iter()
            .filter(|p| p.has_effect)
            .map(|p| (p.name.to_owned(), commit))
            .collect();
        obs.trace = trace;
        obs.model_events = Some(events);
        obs.recorder_events = Some(
            recorder
                .events()
                .iter()
                .map(|e| (e.kind.label().to_owned(), e.detail.clone()))
                .collect(),
        );
        obs.recorder_fingerprint = Some(recorder.fingerprint());
        obs.recorder_dump = Some(recorder.dump());
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig};
    use crate::oracle;

    #[test]
    fn default_order_commits_cleanly_and_refines_the_model() {
        let driver = ChoiceDriver::new(Vec::new());
        let obs = ExplorableTwoPhase.run_exploration(&FaultSchedule::empty(), &driver);
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert!(oracle::check_all(&obs).is_empty(), "{:?}", oracle::check_all(&obs));
        // Three participants in serial 2PC: two real delivery choices per
        // round (3 pending, then 2), prepare and phase two.
        assert_eq!(driver.taken().len(), 4);
        // The probe sees every ots site, so the explorer's fault plans
        // cover the full crash matrix.
        assert_eq!(obs.observed_sites.len(), ots::failpoints::FAILPOINT_SITES.len());
    }

    #[test]
    fn a_prescribed_reordering_still_refines_the_model() {
        let driver = ChoiceDriver::new(vec![2, 1, 1, 0]);
        let obs = ExplorableTwoPhase.run_exploration(&FaultSchedule::empty(), &driver);
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert!(oracle::check_all(&obs).is_empty(), "{:?}", oracle::check_all(&obs));
    }

    #[test]
    fn the_broken_fixture_is_clean_in_registration_order() {
        let driver = ChoiceDriver::new(Vec::new());
        let obs = BrokenAtomicCommitScenario.run_exploration(&FaultSchedule::empty(), &driver);
        // The veto happens to be polled last, so the bug stays hidden.
        assert_eq!(obs.outcome, RunOutcome::Aborted);
        assert!(oracle::check_all(&obs).is_empty(), "{:?}", oracle::check_all(&obs));
    }

    #[test]
    fn polling_the_veto_first_forces_a_commit_after_a_no_vote() {
        let driver = ChoiceDriver::new(vec![2]);
        let obs = BrokenAtomicCommitScenario.run_exploration(&FaultSchedule::empty(), &driver);
        assert_eq!(obs.outcome, RunOutcome::Committed);
        let violations = oracle::check_all(&obs);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].oracle, "refinement");
        assert!(violations[0].detail.contains("presumed abort"), "{}", violations[0].detail);
    }

    #[test]
    fn exploration_of_the_real_protocol_finds_no_divergence() {
        // Bounded but complete: every delivery order × every single-crash
        // plan, small enough to run in-tree (the full-budget version with
        // the reduction-factor assertion lives in tests/model_check.rs).
        let report = explore(&ExplorableTwoPhase, &ExploreConfig::default());
        assert!(!report.truncated);
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
        assert_eq!(report.fault_plans, 1 + ots::failpoints::FAILPOINT_SITES.len());
    }
}
