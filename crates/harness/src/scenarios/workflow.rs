//! Fig. 10-style workflow signalling over the simulated ORB: a coordinator
//! broadcasts a work signal to a remote action behind a scripted network.
//! With the `ExactlyOnceAction` wrapper, message duplication and loss must
//! never multiply the effect.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use activity_service::{
    ActionServant, ActivityService, BroadcastSignalSet, DispatchConfig, ExactlyOnceAction,
    FnAction, Outcome, RemoteActionProxy, Signal, TraceLog,
};
use orb::{NetworkConfig, Orb, RetryPolicy, SimClock, Value};
use recovery_log::{FailpointSet, MemWal, Wal};

use crate::oracle::{EffectCount, Observation, RunOutcome};
use crate::scenario::Scenario;
use crate::schedule::FaultSchedule;

/// Fixed network seed: every run replays the identical latency stream.
const NETWORK_SEED: u64 = 0x5EED_0001;

/// How the workflow's remote signal delivery handles transport faults.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RetryMode {
    /// The ORB's legacy immediate at-least-once loop (no policy layer, no
    /// fault accounting — the liveness oracle does not bind).
    Legacy,
    /// The `orb::retry` reliability layer with `attempts` total attempts
    /// and deterministic backoff. Reports fault accounting, so the
    /// liveness-under-bounded-faults oracle binds.
    Policy {
        /// Total attempts (retry budget is `attempts - 1`).
        attempts: u32,
    },
    /// A single attempt, no retry: the negative control demonstrating that
    /// without the reliability layer a single dropped message kills
    /// liveness.
    None,
}

/// Shared wiring for the workflow scenario and the intentionally broken
/// fixture: `exactly_once` selects whether the remote effect is wrapped in
/// the WAL-backed dedup layer.
pub(crate) fn run_workflow(schedule: &FaultSchedule, exactly_once: bool) -> Observation {
    run_workflow_with(schedule, exactly_once, RetryMode::Legacy)
}

/// Full wiring: `retry` selects the transport reliability layer.
pub(crate) fn run_workflow_with(
    schedule: &FaultSchedule,
    exactly_once: bool,
    retry: RetryMode,
) -> Observation {
    let clock = SimClock::new();
    // Spans are timestamped off the run's virtual clock, and the recorder
    // feeds oracle #7: the tree must stay well-formed on every schedule and
    // its event projection byte-identical to the coordinator trace.
    let telemetry = telemetry::Telemetry::with_time(Arc::new(clock.clone()));
    // The coordinator's flight recorder (oracle #11): every trace event,
    // span open/close and failpoint passage lands in the ring on the same
    // virtual clock, so its fingerprint must be bit-identical across the
    // determinism oracle's double runs.
    let recorder = telemetry::FlightRecorder::with_time(
        "coordinator",
        telemetry::DEFAULT_RECORDER_CAPACITY,
        Arc::new(clock.clone()),
    );
    telemetry.attach_recorder(recorder.clone());
    let orb = Orb::builder()
        .network(NetworkConfig::lossy(0.0, 0.0, NETWORK_SEED))
        .clock(clock)
        .retry_budget(64)
        .telemetry(telemetry.clone())
        .build();
    orb.add_node("coordinator").expect("coordinator node");
    let worker = orb.add_node("worker").expect("worker node");
    orb.network().install_script(schedule.to_fault_script());

    let effects = Arc::new(AtomicU32::new(0));
    let effects2 = Arc::clone(&effects);
    let inner: Arc<dyn activity_service::Action> =
        Arc::new(FnAction::new("debit", move |_s: &Signal| {
            effects2.fetch_add(1, Ordering::SeqCst);
            Ok(Outcome::done())
        }));
    let servant_action: Arc<dyn activity_service::Action> = if exactly_once {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        ExactlyOnceAction::new("eo-debit", inner, wal).expect("exactly-once wrapper") as _
    } else {
        inner
    };
    let obj = worker
        .activate("Action", ActionServant::new(servant_action))
        .expect("activate action");

    let failpoints = FailpointSet::new();
    if exactly_once {
        schedule.arm_into(&failpoints);
    }
    let service = ActivityService::new();
    // A crashed completion intentionally keeps the thread association (so a
    // real caller can repair and retry); the harness drains any leftover
    // association instead, so every run is hermetic. A leaked activity would
    // re-parent this run's activity and shift its id, and that id lands in
    // span attrs — tripping the span-fingerprint half of oracle #7.
    while service.depth() > 0 {
        let _ = service.suspend();
    }
    let activity = service.begin("billing-run").expect("begin activity");
    activity.coordinator().set_dispatch_config(DispatchConfig::serial());
    activity.coordinator().set_failpoints(failpoints.clone());
    let trace = TraceLog::new();
    trace.set_recorder(recorder.clone());
    failpoints.set_recorder(recorder.clone());
    activity.coordinator().set_trace(trace.clone());
    activity.coordinator().set_telemetry(telemetry.clone());
    activity
        .coordinator()
        .add_signal_set(Box::new(BroadcastSignalSet::new("Bill", "charge", Value::U64(25))))
        .expect("signal set");
    activity.set_completion_signal_set("Bill");
    let mut proxy = RemoteActionProxy::new("remote", orb.clone(), "coordinator", obj);
    match retry {
        RetryMode::Legacy => {}
        RetryMode::Policy { attempts } => {
            proxy = proxy.with_policy(
                RetryPolicy::new(attempts)
                    .with_base_backoff(std::time::Duration::from_millis(1)),
            );
        }
        RetryMode::None => proxy = proxy.with_policy(RetryPolicy::none()),
    }
    activity.coordinator().register_action("Bill", Arc::new(proxy) as _);

    let result = service.complete();
    while service.depth() > 0 {
        let _ = service.suspend();
    }
    let mut obs = Observation::new(match &result {
        Ok(outcome) if outcome.is_done() => RunOutcome::Committed,
        Ok(_) => RunOutcome::Aborted,
        Err(_) => RunOutcome::Crashed,
    });
    // At-least-once delivery with dedup: a committed run has exactly one
    // effect; a failed/crashed run may have stopped before (0) or after (1)
    // the delivery, but never more than one.
    let (min, max) = match obs.outcome {
        RunOutcome::Committed => (1, 1),
        RunOutcome::Aborted | RunOutcome::Crashed => (0, 1),
    };
    obs.effects = vec![EffectCount {
        action: "debit".into(),
        observed: u64::from(effects.load(Ordering::SeqCst)),
        min,
        max,
    }];
    obs.trace = trace.render();
    let span_tree = telemetry.span_tree();
    obs.span_wellformed = Some(span_tree.verify());
    obs.span_projection = Some(span_tree.coordinator_projection());
    obs.span_fingerprint = Some(span_tree.fingerprint());
    obs.trace_log_events = Some(trace.events().iter().map(ToString::to_string).collect());
    obs.recorder_events = Some(
        recorder
            .events()
            .iter()
            .map(|e| (e.kind.label().to_owned(), e.detail.clone()))
            .collect(),
    );
    obs.recorder_fingerprint = Some(recorder.fingerprint());
    obs.recorder_dump = Some(recorder.dump());
    obs.critical_path_exact = span_tree.critical_path().map(|path| path.is_exact());
    obs.observed_sites = failpoints.observed_sites();
    obs.remote_messages = orb.network().remote_messages();
    // Fault accounting for the liveness oracle: only reported when the
    // run's reliability layer is explicit, so the legacy scenarios'
    // observations (and fingerprints) are untouched.
    match retry {
        RetryMode::Legacy => {}
        RetryMode::Policy { attempts } => {
            obs.transient_faults = Some(schedule.transient_fault_count());
            obs.hard_faults = Some(schedule.hard_fault_count());
            obs.retry_budget = Some(attempts.saturating_sub(1));
        }
        RetryMode::None => {
            obs.transient_faults = Some(schedule.transient_fault_count());
            obs.hard_faults = Some(schedule.hard_fault_count());
            obs.retry_budget = Some(0);
        }
    }
    obs
}

/// The well-behaved workflow: remote effect wrapped in
/// [`ExactlyOnceAction`], activity failpoints armable.
pub struct WorkflowScenario;

impl Scenario for WorkflowScenario {
    fn name(&self) -> &'static str {
        "workflow-exactly-once"
    }

    fn run(&self, schedule: &FaultSchedule) -> Observation {
        run_workflow(schedule, true)
    }
}

/// The workflow with the `orb::retry` reliability layer enabled (8 attempts,
/// deterministic backoff + jitter on the virtual clock). Reports fault
/// accounting, so every sweep run additionally checks
/// **liveness-under-bounded-faults**: a schedule of ≤7 message drops and no
/// crash failpoints must still commit.
pub struct WorkflowRetryScenario;

impl Scenario for WorkflowRetryScenario {
    fn name(&self) -> &'static str {
        "workflow-retries"
    }

    fn run(&self, schedule: &FaultSchedule) -> Observation {
        run_workflow_with(schedule, true, RetryMode::Policy { attempts: 8 })
    }
}

/// The negative control: the same workflow with retry compiled down to a
/// single attempt. Used to demonstrate that the liveness property is really
/// carried by the reliability layer (a pinned drop schedule aborts here and
/// commits under [`WorkflowRetryScenario`]).
pub struct WorkflowNoRetryScenario;

impl Scenario for WorkflowNoRetryScenario {
    fn name(&self) -> &'static str {
        "workflow-no-retries"
    }

    fn run(&self, schedule: &FaultSchedule) -> Observation {
        run_workflow_with(schedule, true, RetryMode::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::schedule::FaultEvent;

    #[test]
    fn fault_free_workflow_charges_once() {
        let obs = WorkflowScenario.run(&FaultSchedule::empty());
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert_eq!(obs.effects[0].observed, 1);
        assert!(oracle::check_all(&obs).is_empty());
        assert!(obs.remote_messages > 0, "the probe must count remote messages");
        let mut expected: Vec<String> = activity_service::failpoints::FAILPOINT_SITES
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        expected.sort();
        assert_eq!(obs.observed_sites, expected);
    }

    #[test]
    fn duplicated_charge_message_is_deduplicated() {
        let schedule =
            FaultSchedule::from_events(vec![FaultEvent::DuplicateMessage { nth: 0 }]);
        let obs = WorkflowScenario.run(&schedule);
        assert_eq!(obs.effects[0].observed, 1, "exactly-once wrapper must dedup");
        assert!(oracle::check_all(&obs).is_empty(), "{:?}", oracle::check_all(&obs));
    }

    #[test]
    fn dropped_charge_message_is_retried() {
        let schedule = FaultSchedule::from_events(vec![FaultEvent::DropMessage { nth: 0 }]);
        let obs = WorkflowScenario.run(&schedule);
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert_eq!(obs.effects[0].observed, 1);
        assert!(oracle::check_all(&obs).is_empty());
    }

    #[test]
    fn retry_layer_is_invisible_on_the_fault_free_path() {
        // With no faults scheduled, enabling the reliability layer must not
        // change a single observable byte: same trace, same outcome, same
        // effect counts, same message count.
        let legacy = WorkflowScenario.run(&FaultSchedule::empty());
        let retrying = WorkflowRetryScenario.run(&FaultSchedule::empty());
        assert_eq!(legacy.trace, retrying.trace, "fault-free traces must be byte-identical");
        assert_eq!(legacy.outcome, retrying.outcome);
        assert_eq!(legacy.effects, retrying.effects);
        assert_eq!(legacy.remote_messages, retrying.remote_messages);
        let none = WorkflowNoRetryScenario.run(&FaultSchedule::empty());
        assert_eq!(legacy.trace, none.trace);
        assert_eq!(legacy.outcome, none.outcome);
    }

    #[test]
    fn bounded_drops_commit_with_retries_and_abort_without() {
        // One dropped request leg: within the retry budget the run must
        // commit; with retries disabled the same schedule loses liveness —
        // and the liveness oracle reports exactly that asymmetry.
        let schedule = FaultSchedule::from_events(vec![FaultEvent::DropMessage { nth: 0 }]);
        let retrying = WorkflowRetryScenario.run(&schedule);
        assert_eq!(retrying.outcome, RunOutcome::Committed);
        assert_eq!(retrying.transient_faults, Some(1));
        assert_eq!(retrying.hard_faults, Some(0));
        assert!(oracle::check_all(&retrying).is_empty(), "{:?}", oracle::check_all(&retrying));

        let bare = WorkflowNoRetryScenario.run(&schedule);
        assert_ne!(bare.outcome, RunOutcome::Committed, "no retry, no liveness");
        // Budget 0 < 1 transient fault: outside the envelope, so the oracle
        // stays silent — aborting is the *correct* bare-transport behaviour.
        assert!(oracle::check_all(&bare).is_empty(), "{:?}", oracle::check_all(&bare));
    }

    #[test]
    fn coordinator_crash_is_bounded_by_the_contract() {
        let schedule = FaultSchedule::from_events(vec![FaultEvent::ArmFailpoint {
            site: activity_service::failpoints::BEFORE_TRANSMIT.into(),
            after: 0,
        }]);
        let obs = WorkflowScenario.run(&schedule);
        assert_eq!(obs.outcome, RunOutcome::Crashed);
        assert_eq!(obs.effects[0].observed, 0);
        assert!(oracle::check_all(&obs).is_empty());
    }
}
