//! BTP atoms (fig. 11/12): scripted cancellation votes at the prepare
//! stage; the atomicity oracle demands all-confirmed or all-cancelled.

use std::sync::Arc;

use activity_service::{Activity, DispatchConfig, TraceLog};
use btp::{Atom, AtomState, BtpError, BtpParticipant, BtpVote, Reservation, ReservationState};
use orb::SimClock;
use recovery_log::FailpointSet;

use crate::oracle::{Observation, RunOutcome};
use crate::scenario::Scenario;
use crate::schedule::FaultSchedule;

const PARTICIPANTS: &[&str] = &["taxi", "hotel", "flight"];

fn vote_site(name: &str) -> String {
    format!("btp.vote.{name}")
}

/// One atom with three reservations. Arming `btp.vote.<name>` turns that
/// participant's prepare vote into a cancellation, which must cancel the
/// whole atom.
pub struct BtpAtomScenario;

impl Scenario for BtpAtomScenario {
    fn name(&self) -> &'static str {
        "btp-atom"
    }

    fn run(&self, schedule: &FaultSchedule) -> Observation {
        let failpoints = FailpointSet::new();
        schedule.arm_into(&failpoints);

        let activity = Activity::new_root("atom", SimClock::new());
        activity.coordinator().set_dispatch_config(DispatchConfig::serial());
        let trace = TraceLog::new();
        activity.coordinator().set_trace(trace.clone());
        let atom = Atom::new("booking", activity).expect("bind atom");

        let reservations: Vec<Arc<Reservation>> = PARTICIPANTS
            .iter()
            .map(|name| {
                let vote = if failpoints.hit(&vote_site(name)).is_err() {
                    BtpVote::Cancelled
                } else {
                    BtpVote::Prepared
                };
                Reservation::voting(*name, vote)
            })
            .collect();
        for reservation in &reservations {
            atom.enroll(Arc::clone(reservation) as Arc<dyn BtpParticipant>).expect("enroll");
        }

        match atom.prepare() {
            Ok(()) => atom.confirm().expect("confirm"),
            Err(BtpError::Cancelled) => {}
            Err(other) => panic!("unexpected atom failure: {other:?}"),
        }

        let mut obs = Observation::new(match atom.state() {
            AtomState::Confirmed => RunOutcome::Committed,
            AtomState::Cancelled => RunOutcome::Aborted,
            other => panic!("atom left non-terminal: {other:?}"),
        });
        obs.participant_commits = reservations
            .iter()
            .map(|r| (r.name().to_owned(), r.state() == ReservationState::Confirmed))
            .collect();
        obs.trace = trace.render();
        obs.observed_sites = failpoints.observed_sites();
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::schedule::FaultEvent;

    #[test]
    fn fault_free_atom_confirms_everyone() {
        let obs = BtpAtomScenario.run(&FaultSchedule::empty());
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert!(obs.participant_commits.iter().all(|(_, c)| *c));
        assert!(oracle::check_all(&obs).is_empty());
        assert_eq!(obs.observed_sites.len(), PARTICIPANTS.len());
    }

    #[test]
    fn one_cancellation_vote_cancels_the_atom() {
        let schedule = FaultSchedule::from_events(vec![FaultEvent::ArmFailpoint {
            site: vote_site("hotel"),
            after: 0,
        }]);
        let obs = BtpAtomScenario.run(&schedule);
        assert_eq!(obs.outcome, RunOutcome::Aborted);
        assert!(obs.participant_commits.iter().all(|(_, c)| !*c));
        assert!(oracle::check_all(&obs).is_empty(), "{:?}", oracle::check_all(&obs));
    }
}
