//! The intentionally broken fixture: the same workflow as
//! [`super::WorkflowScenario`] but with the non-idempotent action
//! registered *without* its [`activity_service::ExactlyOnceAction`]
//! wrapper. A duplicated request message then executes the effect twice —
//! the exactly-once oracle must catch it, and the explorer must shrink the
//! schedule to the single duplication event.

use crate::oracle::Observation;
use crate::scenario::Scenario;
use crate::schedule::FaultSchedule;

use super::workflow::run_workflow;

/// The buggy workflow (dedup layer removed). Exists to prove the sweep
/// catches real bugs; never part of [`super::all`].
pub struct BrokenWorkflowScenario;

impl Scenario for BrokenWorkflowScenario {
    fn name(&self) -> &'static str {
        "broken-workflow-no-dedup"
    }

    fn run(&self, schedule: &FaultSchedule) -> Observation {
        run_workflow(schedule, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{self, RunOutcome};
    use crate::schedule::FaultEvent;

    #[test]
    fn fault_free_broken_fixture_still_passes() {
        // The bug is latent: without duplication the raw action behaves.
        let obs = BrokenWorkflowScenario.run(&FaultSchedule::empty());
        assert_eq!(obs.outcome, RunOutcome::Committed);
        assert!(oracle::check_all(&obs).is_empty());
    }

    #[test]
    fn duplication_doubles_the_effect_and_trips_the_oracle() {
        let schedule =
            FaultSchedule::from_events(vec![FaultEvent::DuplicateMessage { nth: 0 }]);
        let obs = BrokenWorkflowScenario.run(&schedule);
        assert_eq!(obs.effects[0].observed, 2, "no dedup layer: both copies execute");
        let violations = oracle::check_all(&obs);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].oracle, "exactly-once");
    }
}
