//! WSCF — the Web Services Coordination Framework of the paper's §5.2,
//! built on the Activity Service.
//!
//! "The Activity Service can be used as a basis of supporting a family of
//! extended transaction models for Web Services. … the only noticeable
//! difference between the Web Services version of the Activity Service and
//! its CORBA original is that the former does not assume an underlying OTS
//! implementation: **all coordination services (including transactions)
//! must be constructed on top of the framework.**"
//!
//! Accordingly this crate has **no dependency on the `ots` crate**:
//!
//! * [`context::CoordinationContext`] — the token identifying coordinated
//!   work (id, coordination type, registration endpoint) that rides inside
//!   application messages;
//! * [`service::CoordinationService`] — activation (context creation per
//!   registered coordination type), registration (local and, through an
//!   ORB servant, remote), and protocol driving;
//! * [`acid::AtomicTransaction`] — ACID transactions whose *entire*
//!   coordinator is the signal framework (the §5.2(i) use);
//! * [`business::BusinessAgreement`] — the close/compensate long-running
//!   protocol (the §5.2(ii)/BTP-flavoured use; full BTP atoms and
//!   cohesions live in the sibling `btp` crate, equally OTS-free).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use wscf::{AtomicTransaction, StagedLedger, WsAtomicParticipant};
//! use activity_service::Activity;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let activity = Activity::new_root("ws-tx", orb::SimClock::new());
//! let tx = AtomicTransaction::new(activity)?;
//! let ledger = StagedLedger::new("inventory");
//! ledger.stage("widgets", orb::Value::I64(5));
//! tx.enroll(Arc::clone(&ledger) as Arc<dyn WsAtomicParticipant>)?;
//! tx.commit()?;
//! assert_eq!(ledger.read("widgets"), Some(orb::Value::I64(5)));
//! # Ok(())
//! # }
//! ```

pub mod acid;
pub mod business;
pub mod context;
pub mod error;
pub mod service;

pub use acid::{AtomicState, AtomicTransaction, StagedLedger, WsAtomicParticipant, WsParticipantAction, WsVote};
pub use business::{
    BusinessAgreement, BusinessAgreementSignalSet, BusinessParticipant, BUSINESS_AGREEMENT_SET,
    SIG_CLOSE, SIG_COMPENSATE,
};
pub use context::{CoordinationContext, TYPE_ATOMIC_TRANSACTION, TYPE_BUSINESS_AGREEMENT};
pub use error::WscfError;
pub use service::{register_remote, CoordinationService, ProtocolSuite, REGISTER_OP};
