//! Coordination contexts: the WS-Coordination-style token that identifies
//! a coordinated piece of work and says where to register for it.

use orb::{ObjectRef, Value, ValueMap};

use crate::error::WscfError;

/// Well-known coordination type for atomic (ACID-style) transactions.
pub const TYPE_ATOMIC_TRANSACTION: &str = "wscf:atomic-transaction";
/// Well-known coordination type for long-running business agreements.
pub const TYPE_BUSINESS_AGREEMENT: &str = "wscf:business-agreement";

/// The token that travels with application messages: which coordinated
/// work this is, what coordination type governs it, and (optionally) the
/// registration service to enlist with.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinationContext {
    id: String,
    coordination_type: String,
    registration: Option<ObjectRef>,
}

impl CoordinationContext {
    /// Build a context. Normally produced by
    /// [`crate::service::CoordinationService::create_context`].
    pub fn new(id: impl Into<String>, coordination_type: impl Into<String>) -> Self {
        CoordinationContext {
            id: id.into(),
            coordination_type: coordination_type.into(),
            registration: None,
        }
    }

    /// Builder-style: attach the registration service's reference so
    /// remote participants can enlist.
    #[must_use]
    pub fn with_registration(mut self, registration: ObjectRef) -> Self {
        self.registration = Some(registration);
        self
    }

    /// The context's unique id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The governing coordination type.
    pub fn coordination_type(&self) -> &str {
        &self.coordination_type
    }

    /// The registration endpoint, if one was attached.
    pub fn registration(&self) -> Option<&ObjectRef> {
        self.registration.as_ref()
    }

    /// Serialise for transport (rides in application messages).
    pub fn to_value(&self) -> Value {
        let mut m = ValueMap::new();
        m.insert("id".into(), Value::from(self.id.as_str()));
        m.insert("type".into(), Value::from(self.coordination_type.as_str()));
        if let Some(reg) = &self.registration {
            m.insert("registration".into(), reg.to_value());
        }
        Value::Map(m)
    }

    /// Inverse of [`CoordinationContext::to_value`].
    ///
    /// # Errors
    ///
    /// [`WscfError::Codec`] on malformed input.
    pub fn from_value(value: &Value) -> Result<Self, WscfError> {
        let m = value
            .as_map()
            .ok_or_else(|| WscfError::Codec("context must be a map".into()))?;
        let id = m
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| WscfError::Codec("context missing id".into()))?;
        let coordination_type = m
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| WscfError::Codec("context missing type".into()))?;
        let registration = m
            .get("registration")
            .map(|v| ObjectRef::from_value(v).map_err(|e| WscfError::Codec(e.to_string())))
            .transpose()?;
        Ok(CoordinationContext {
            id: id.to_owned(),
            coordination_type: coordination_type.to_owned(),
            registration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orb::ObjectId;

    #[test]
    fn roundtrip_without_registration() {
        let ctx = CoordinationContext::new("ctx-1", TYPE_ATOMIC_TRANSACTION);
        let back = CoordinationContext::from_value(&ctx.to_value()).unwrap();
        assert_eq!(back, ctx);
        assert!(back.registration().is_none());
    }

    #[test]
    fn roundtrip_with_registration() {
        let reg = ObjectRef::new(ObjectId::new(1, 2), "node", "Registration");
        let ctx =
            CoordinationContext::new("ctx-2", TYPE_BUSINESS_AGREEMENT).with_registration(reg.clone());
        let back = CoordinationContext::from_value(&ctx.to_value()).unwrap();
        assert_eq!(back.registration(), Some(&reg));
        assert_eq!(back.coordination_type(), TYPE_BUSINESS_AGREEMENT);
    }

    #[test]
    fn malformed_contexts_rejected() {
        assert!(CoordinationContext::from_value(&Value::Null).is_err());
        let mut m = ValueMap::new();
        m.insert("id".into(), Value::from("x"));
        assert!(CoordinationContext::from_value(&Value::Map(m)).is_err());
    }
}
