//! The business-agreement protocol: the long-running, compensation-based
//! counterpart to [`crate::acid`] (the WS-BusinessActivity shape, which the
//! paper's framework — via WSCF — was designed to host alongside BTP).
//!
//! Participants do their work *immediately* (no prepared state); the
//! coordinator later tells each either `close` (the agreement succeeded;
//! discard compensation data) or `compensate` (undo). This is §4.2's
//! compensation idea packaged as a reusable coordination protocol.

use std::sync::Arc;

use activity_service::signal_set::{AfterResponse, NextSignal, SignalSet};
use activity_service::{ActionError, Activity, CompletionStatus, Outcome, Signal};
use orb::Value;
use parking_lot::Mutex;

use crate::error::WscfError;

/// Conventional name of the business-agreement signal set.
pub const BUSINESS_AGREEMENT_SET: &str = "BusinessAgreementSignalSet";

/// Signal name: the agreement succeeded; participants may discard their
/// compensation information.
pub const SIG_CLOSE: &str = "close";
/// Signal name: the agreement failed; participants must undo their work.
pub const SIG_COMPENSATE: &str = "compensate";

/// A participant in a business agreement.
pub trait BusinessParticipant: Send + Sync {
    /// The agreement succeeded; drop compensation data.
    ///
    /// # Errors
    ///
    /// Reported in the collated outcome.
    fn close(&self) -> Result<(), String>;

    /// The agreement failed; undo the completed work. Must be idempotent.
    ///
    /// # Errors
    ///
    /// Reported in the collated outcome (a compensation failure is a
    /// serious, operator-visible event).
    fn compensate(&self) -> Result<(), String>;

    /// Diagnostic name.
    fn name(&self) -> &str;
}

struct BusinessParticipantAction {
    participant: Arc<dyn BusinessParticipant>,
}

impl activity_service::Action for BusinessParticipantAction {
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        let result = match signal.name() {
            SIG_CLOSE => self.participant.close(),
            SIG_COMPENSATE => self.participant.compensate(),
            other => return Err(ActionError::new(format!("unexpected signal {other:?}"))),
        };
        match result {
            Ok(()) => Ok(Outcome::done()),
            Err(e) => Ok(Outcome::from_error(e)),
        }
    }

    fn name(&self) -> &str {
        self.participant.name()
    }
}

/// The agreement's completion protocol: one `close` or `compensate`
/// broadcast, direction chosen by the completion status.
#[derive(Debug, Default)]
pub struct BusinessAgreementSignalSet {
    sent: bool,
    failures: usize,
    completion: CompletionStatus,
}

impl BusinessAgreementSignalSet {
    /// A fresh protocol instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SignalSet for BusinessAgreementSignalSet {
    fn signal_set_name(&self) -> &str {
        BUSINESS_AGREEMENT_SET
    }

    fn get_signal(&mut self) -> NextSignal {
        if self.sent {
            return NextSignal::End;
        }
        self.sent = true;
        let name = if self.completion.is_failure() { SIG_COMPENSATE } else { SIG_CLOSE };
        NextSignal::LastSignal(Signal::new(name, BUSINESS_AGREEMENT_SET))
    }

    fn set_response(&mut self, response: &Outcome) -> AfterResponse {
        if response.is_negative() {
            self.failures += 1;
        }
        AfterResponse::Continue
    }

    fn get_outcome(&mut self) -> Outcome {
        if self.failures == 0 {
            Outcome::done()
        } else {
            Outcome::abort().with_data(Value::U64(self.failures as u64))
        }
    }

    fn set_completion_status(&mut self, status: CompletionStatus) {
        self.completion = status;
    }

    fn completion_status(&self) -> CompletionStatus {
        self.completion
    }
}

/// A business agreement bound to one activity.
pub struct BusinessAgreement {
    activity: Activity,
    closed: Mutex<Option<bool>>, // None = open, Some(true) = closed, Some(false) = compensated
}

impl std::fmt::Debug for BusinessAgreement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BusinessAgreement")
            .field("activity", &self.activity.id())
            .field("closed", &*self.closed.lock())
            .finish()
    }
}

impl BusinessAgreement {
    /// Bind an agreement to `activity`.
    ///
    /// # Errors
    ///
    /// Propagates coordinator failures.
    pub fn new(activity: Activity) -> Result<Arc<Self>, WscfError> {
        activity
            .coordinator()
            .add_signal_set(Box::new(BusinessAgreementSignalSet::new()))?;
        activity.set_completion_signal_set(BUSINESS_AGREEMENT_SET);
        Ok(Arc::new(BusinessAgreement { activity, closed: Mutex::new(None) }))
    }

    /// The bound activity.
    pub fn activity(&self) -> &Activity {
        &self.activity
    }

    /// Enrol a participant (its forward work is already done or happens
    /// independently; the agreement only coordinates the ending).
    ///
    /// # Errors
    ///
    /// [`WscfError::InvalidState`] once ended.
    pub fn enroll(&self, participant: Arc<dyn BusinessParticipant>) -> Result<(), WscfError> {
        if self.closed.lock().is_some() {
            return Err(WscfError::InvalidState {
                operation: "enroll".into(),
                state: "ended".into(),
            });
        }
        self.activity.coordinator().register_action(
            BUSINESS_AGREEMENT_SET,
            Arc::new(BusinessParticipantAction { participant }) as _,
        );
        Ok(())
    }

    /// End the agreement successfully: `close` to everyone.
    ///
    /// # Errors
    ///
    /// [`WscfError::Aborted`] when any participant's close failed.
    pub fn close(&self) -> Result<(), WscfError> {
        self.end(CompletionStatus::Success, true)
    }

    /// End the agreement in failure: `compensate` to everyone.
    ///
    /// # Errors
    ///
    /// [`WscfError::Aborted`] when any compensation failed (an
    /// operator-visible condition).
    pub fn compensate(&self) -> Result<(), WscfError> {
        self.end(CompletionStatus::FailOnly, false)
    }

    fn end(&self, status: CompletionStatus, closing: bool) -> Result<(), WscfError> {
        {
            let closed = self.closed.lock();
            if closed.is_some() {
                return Err(WscfError::InvalidState {
                    operation: if closing { "close".into() } else { "compensate".into() },
                    state: "ended".into(),
                });
            }
        }
        self.activity.set_completion_status(status)?;
        let outcome = self.activity.complete()?;
        *self.closed.lock() = Some(closing);
        if outcome.is_negative() {
            Err(WscfError::Aborted(format!(
                "{} participant(s) failed to {}",
                outcome.data().as_u64().unwrap_or(0),
                if closing { "close" } else { "compensate" },
            )))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orb::SimClock;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct Hotel {
        name: String,
        closes: AtomicU32,
        compensations: AtomicU32,
        fail_compensation: bool,
    }

    impl Hotel {
        fn new(name: &str) -> Arc<Self> {
            Arc::new(Hotel {
                name: name.into(),
                closes: AtomicU32::new(0),
                compensations: AtomicU32::new(0),
                fail_compensation: false,
            })
        }
    }

    impl BusinessParticipant for Hotel {
        fn close(&self) -> Result<(), String> {
            self.closes.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
        fn compensate(&self) -> Result<(), String> {
            if self.fail_compensation {
                return Err("records lost".into());
            }
            self.compensations.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
        fn name(&self) -> &str {
            &self.name
        }
    }

    fn agreement_with(hotels: &[Arc<Hotel>]) -> Arc<BusinessAgreement> {
        let activity = Activity::new_root("agreement", SimClock::new());
        let ba = BusinessAgreement::new(activity).unwrap();
        for h in hotels {
            ba.enroll(Arc::clone(h) as Arc<dyn BusinessParticipant>).unwrap();
        }
        ba
    }

    #[test]
    fn close_reaches_everyone() {
        let a = Hotel::new("a");
        let b = Hotel::new("b");
        let ba = agreement_with(&[Arc::clone(&a), Arc::clone(&b)]);
        ba.close().unwrap();
        assert_eq!(a.closes.load(Ordering::SeqCst), 1);
        assert_eq!(b.closes.load(Ordering::SeqCst), 1);
        assert_eq!(a.compensations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn compensate_reaches_everyone() {
        let a = Hotel::new("a");
        let b = Hotel::new("b");
        let ba = agreement_with(&[Arc::clone(&a), Arc::clone(&b)]);
        ba.compensate().unwrap();
        assert_eq!(a.compensations.load(Ordering::SeqCst), 1);
        assert_eq!(b.compensations.load(Ordering::SeqCst), 1);
        assert_eq!(a.closes.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn failed_compensation_is_loud() {
        let broken = Arc::new(Hotel {
            name: "broken".into(),
            closes: AtomicU32::new(0),
            compensations: AtomicU32::new(0),
            fail_compensation: true,
        });
        let fine = Hotel::new("fine");
        let ba = agreement_with(&[broken, Arc::clone(&fine)]);
        let err = ba.compensate().unwrap_err();
        assert!(matches!(err, WscfError::Aborted(_)));
        // The healthy participant still compensated.
        assert_eq!(fine.compensations.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn agreement_ends_exactly_once() {
        let ba = agreement_with(&[Hotel::new("a")]);
        ba.close().unwrap();
        assert!(matches!(ba.close(), Err(WscfError::InvalidState { .. })));
        assert!(matches!(ba.compensate(), Err(WscfError::InvalidState { .. })));
        assert!(matches!(ba.enroll(Hotel::new("late") as _), Err(WscfError::InvalidState { .. })));
    }
}
