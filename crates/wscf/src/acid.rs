//! ACID transactions built **purely on the framework** — no OTS below.
//!
//! §5.2: "the only noticeable difference between the Web Services version
//! of the Activity Service and its CORBA original is that the former does
//! not assume an underlying OTS implementation: **all coordination services
//! (including transactions) must be constructed on top of the framework**."
//!
//! This module is that construction: [`AtomicTransaction`] drives the
//! `tx-models` two-phase SignalSet over [`WsAtomicParticipant`]s that are
//! plain web-service endpoints adapted into Actions — the OTS never
//! appears.

use std::sync::Arc;

use activity_service::{ActionError, Activity, CompletionStatus, Outcome, Signal};
use orb::Value;
use parking_lot::Mutex;
use tx_models::common::{
    OUT_COMMITTED, OUT_READ_ONLY, SIG_COMMIT, SIG_PREPARE, SIG_ROLLBACK,
};
use tx_models::{TwoPhaseCommitSignalSet, TWO_PC_SET};

use crate::error::WscfError;

/// A participant's phase-one answer at the web-service level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WsVote {
    /// Prepared: will commit or roll back on request.
    Prepared,
    /// Nothing to commit; drops out of phase two.
    ReadOnly,
    /// Refuses; the transaction must roll back.
    Aborted,
}

/// A web service taking part in an atomic transaction. No locking or
/// isolation model is imposed — each service keeps its own discipline,
/// exactly as in BTP and WS-AT.
pub trait WsAtomicParticipant: Send + Sync {
    /// Phase one.
    ///
    /// # Errors
    ///
    /// A failure counts as an [`WsVote::Aborted`] vote.
    fn prepare(&self) -> Result<WsVote, String>;

    /// Phase two, forward. Must be idempotent.
    ///
    /// # Errors
    ///
    /// Reported as a heuristic-style contradiction.
    fn commit(&self) -> Result<(), String>;

    /// Phase two, backward. Must be idempotent.
    ///
    /// # Errors
    ///
    /// Reported but presumed to eventually succeed.
    fn rollback(&self) -> Result<(), String>;

    /// Diagnostic name.
    fn name(&self) -> &str;
}

/// Adapts a [`WsAtomicParticipant`] into an Action for the 2PC SignalSet.
pub struct WsParticipantAction {
    participant: Arc<dyn WsAtomicParticipant>,
}

impl WsParticipantAction {
    /// Wrap `participant`.
    pub fn new(participant: Arc<dyn WsAtomicParticipant>) -> Arc<Self> {
        Arc::new(WsParticipantAction { participant })
    }
}

impl activity_service::Action for WsParticipantAction {
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        match signal.name() {
            SIG_PREPARE => match self.participant.prepare() {
                Ok(WsVote::Prepared) => Ok(Outcome::done()),
                Ok(WsVote::ReadOnly) => Ok(Outcome::new(OUT_READ_ONLY)),
                Ok(WsVote::Aborted) | Err(_) => Ok(Outcome::abort()),
            },
            SIG_COMMIT => match self.participant.commit() {
                Ok(()) => Ok(Outcome::done()),
                Err(e) => Ok(Outcome::from_error(e)),
            },
            SIG_ROLLBACK => match self.participant.rollback() {
                Ok(()) => Ok(Outcome::done()),
                Err(e) => Ok(Outcome::from_error(e)),
            },
            other => Err(ActionError::new(format!("unexpected signal {other:?}"))),
        }
    }

    fn name(&self) -> &str {
        self.participant.name()
    }
}

/// State of an [`AtomicTransaction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicState {
    /// Accepting enrolments and work.
    Active,
    /// Terminal: committed.
    Committed,
    /// Terminal: rolled back.
    Aborted,
}

impl std::fmt::Display for AtomicState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AtomicState::Active => "active",
            AtomicState::Committed => "committed",
            AtomicState::Aborted => "aborted",
        })
    }
}

/// An ACID transaction whose whole coordinator is the signal framework.
pub struct AtomicTransaction {
    activity: Activity,
    state: Mutex<AtomicState>,
}

impl std::fmt::Debug for AtomicTransaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicTransaction")
            .field("activity", &self.activity.id())
            .field("state", &*self.state.lock())
            .finish()
    }
}

impl AtomicTransaction {
    /// Bind a transaction to `activity`, associating the 2PC SignalSet.
    ///
    /// # Errors
    ///
    /// Propagates coordinator failures.
    pub fn new(activity: Activity) -> Result<Arc<Self>, WscfError> {
        activity
            .coordinator()
            .add_signal_set(Box::new(TwoPhaseCommitSignalSet::new()))?;
        activity.set_completion_signal_set(TWO_PC_SET);
        Ok(Arc::new(AtomicTransaction { activity, state: Mutex::new(AtomicState::Active) }))
    }

    /// The bound activity.
    pub fn activity(&self) -> &Activity {
        &self.activity
    }

    /// Current state.
    pub fn state(&self) -> AtomicState {
        *self.state.lock()
    }

    /// Enrol a participant.
    ///
    /// # Errors
    ///
    /// [`WscfError::InvalidState`] once terminated.
    pub fn enroll(&self, participant: Arc<dyn WsAtomicParticipant>) -> Result<(), WscfError> {
        let state = self.state.lock();
        if *state != AtomicState::Active {
            return Err(WscfError::InvalidState {
                operation: "enroll".into(),
                state: state.to_string(),
            });
        }
        self.activity
            .coordinator()
            .register_action(TWO_PC_SET, WsParticipantAction::new(participant) as _);
        Ok(())
    }

    /// Commit: runs the full prepare/commit protocol through the framework.
    ///
    /// # Errors
    ///
    /// [`WscfError::Aborted`] when any participant voted to abort (all
    /// participants have then been rolled back); [`WscfError::InvalidState`]
    /// when already terminated.
    pub fn commit(&self) -> Result<(), WscfError> {
        {
            let state = self.state.lock();
            if *state != AtomicState::Active {
                return Err(WscfError::InvalidState {
                    operation: "commit".into(),
                    state: state.to_string(),
                });
            }
        }
        let outcome = self.activity.complete()?;
        if outcome.name() == OUT_COMMITTED {
            *self.state.lock() = AtomicState::Committed;
            Ok(())
        } else {
            *self.state.lock() = AtomicState::Aborted;
            Err(WscfError::Aborted("a participant voted to roll back".into()))
        }
    }

    /// Roll everything back.
    ///
    /// # Errors
    ///
    /// [`WscfError::InvalidState`] when already terminated.
    pub fn rollback(&self) -> Result<(), WscfError> {
        {
            let state = self.state.lock();
            if *state != AtomicState::Active {
                return Err(WscfError::InvalidState {
                    operation: "rollback".into(),
                    state: state.to_string(),
                });
            }
        }
        self.activity.set_completion_status(CompletionStatus::FailOnly)?;
        let _ = self.activity.complete()?;
        *self.state.lock() = AtomicState::Aborted;
        Ok(())
    }
}

/// A ready-made participant: an in-memory staged ledger. Writes buffer
/// until `prepare` moves them to a prepared buffer; `commit` applies them;
/// `rollback` discards. Idempotent throughout.
pub struct StagedLedger {
    name: String,
    committed: Mutex<std::collections::BTreeMap<String, Value>>,
    staged: Mutex<std::collections::BTreeMap<String, Value>>,
    prepared: Mutex<Option<std::collections::BTreeMap<String, Value>>>,
    refuse_prepare: bool,
}

impl std::fmt::Debug for StagedLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagedLedger").field("name", &self.name).finish_non_exhaustive()
    }
}

impl StagedLedger {
    /// A cooperative ledger.
    pub fn new(name: impl Into<String>) -> Arc<Self> {
        Arc::new(StagedLedger {
            name: name.into(),
            committed: Mutex::new(Default::default()),
            staged: Mutex::new(Default::default()),
            prepared: Mutex::new(None),
            refuse_prepare: false,
        })
    }

    /// A ledger that votes to abort at prepare time (for tests/demos).
    pub fn refusing(name: impl Into<String>) -> Arc<Self> {
        Arc::new(StagedLedger {
            name: name.into(),
            committed: Mutex::new(Default::default()),
            staged: Mutex::new(Default::default()),
            prepared: Mutex::new(None),
            refuse_prepare: true,
        })
    }

    /// Stage a write (invisible until commit).
    pub fn stage(&self, key: impl Into<String>, value: Value) {
        self.staged.lock().insert(key.into(), value);
    }

    /// Read the committed value.
    pub fn read(&self, key: &str) -> Option<Value> {
        self.committed.lock().get(key).cloned()
    }
}

impl WsAtomicParticipant for StagedLedger {
    fn prepare(&self) -> Result<WsVote, String> {
        if self.refuse_prepare {
            return Ok(WsVote::Aborted);
        }
        let staged = std::mem::take(&mut *self.staged.lock());
        if staged.is_empty() && self.prepared.lock().is_none() {
            return Ok(WsVote::ReadOnly);
        }
        let mut prepared = self.prepared.lock();
        if prepared.is_none() {
            *prepared = Some(staged);
        }
        Ok(WsVote::Prepared)
    }

    fn commit(&self) -> Result<(), String> {
        if let Some(prepared) = self.prepared.lock().take() {
            self.committed.lock().extend(prepared);
        }
        Ok(())
    }

    fn rollback(&self) -> Result<(), String> {
        self.staged.lock().clear();
        *self.prepared.lock() = None;
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orb::SimClock;

    fn tx_with(ledgers: &[Arc<StagedLedger>]) -> Arc<AtomicTransaction> {
        let activity = Activity::new_root("ws-tx", SimClock::new());
        let tx = AtomicTransaction::new(activity).unwrap();
        for l in ledgers {
            tx.enroll(Arc::clone(l) as Arc<dyn WsAtomicParticipant>).unwrap();
        }
        tx
    }

    #[test]
    fn commit_applies_staged_writes_without_any_ots() {
        let a = StagedLedger::new("a");
        let b = StagedLedger::new("b");
        a.stage("x", Value::I64(1));
        b.stage("y", Value::I64(2));
        let tx = tx_with(&[Arc::clone(&a), Arc::clone(&b)]);
        tx.commit().unwrap();
        assert_eq!(tx.state(), AtomicState::Committed);
        assert_eq!(a.read("x"), Some(Value::I64(1)));
        assert_eq!(b.read("y"), Some(Value::I64(2)));
    }

    #[test]
    fn abort_vote_rolls_everyone_back() {
        let good = StagedLedger::new("good");
        let bad = StagedLedger::refusing("bad");
        good.stage("x", Value::I64(1));
        bad.stage("y", Value::I64(2));
        let tx = tx_with(&[Arc::clone(&good), Arc::clone(&bad)]);
        assert!(matches!(tx.commit(), Err(WscfError::Aborted(_))));
        assert_eq!(tx.state(), AtomicState::Aborted);
        assert_eq!(good.read("x"), None);
        assert_eq!(bad.read("y"), None);
    }

    #[test]
    fn explicit_rollback_discards() {
        let a = StagedLedger::new("a");
        a.stage("x", Value::I64(1));
        let tx = tx_with(&[Arc::clone(&a)]);
        tx.rollback().unwrap();
        assert_eq!(tx.state(), AtomicState::Aborted);
        assert_eq!(a.read("x"), None);
        assert!(matches!(tx.commit(), Err(WscfError::InvalidState { .. })));
    }

    #[test]
    fn read_only_participants_skip_phase_two() {
        let writer = StagedLedger::new("writer");
        let reader = StagedLedger::new("reader");
        writer.stage("x", Value::I64(1));
        let tx = tx_with(&[Arc::clone(&writer), Arc::clone(&reader)]);
        tx.commit().unwrap();
        assert_eq!(writer.read("x"), Some(Value::I64(1)));
    }

    #[test]
    fn terminated_transactions_reject_enrolment() {
        let tx = tx_with(&[]);
        tx.commit().unwrap();
        assert!(matches!(
            tx.enroll(StagedLedger::new("late") as _),
            Err(WscfError::InvalidState { .. })
        ));
        assert!(matches!(tx.rollback(), Err(WscfError::InvalidState { .. })));
    }

    #[test]
    fn participant_operations_are_idempotent() {
        let a = StagedLedger::new("a");
        a.stage("x", Value::I64(7));
        assert_eq!(a.prepare().unwrap(), WsVote::Prepared);
        assert_eq!(a.prepare().unwrap(), WsVote::Prepared, "redelivered prepare");
        a.commit().unwrap();
        a.commit().unwrap();
        assert_eq!(a.read("x"), Some(Value::I64(7)));
        a.rollback().unwrap();
        assert_eq!(a.read("x"), Some(Value::I64(7)), "late rollback is a no-op");
    }
}
