//! Error type for the coordination framework.

use std::fmt;

/// Errors raised by the coordination service and its protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WscfError {
    /// No protocol suite is registered for this coordination type.
    UnknownCoordinationType(String),
    /// The referenced coordination context does not exist (or has
    /// terminated).
    UnknownContext(String),
    /// The named protocol is not part of the context's coordination type.
    UnknownProtocol {
        /// Coordination type consulted.
        coordination_type: String,
        /// Protocol asked for.
        protocol: String,
    },
    /// The operation is illegal in the coordination's current state.
    InvalidState {
        /// What was attempted.
        operation: String,
        /// Current state.
        state: String,
    },
    /// The transaction/agreement had to abort.
    Aborted(String),
    /// The underlying activity machinery failed.
    Activity(String),
    /// A remote registration failed.
    Remote(String),
    /// A context failed to (de)serialise.
    Codec(String),
}

impl fmt::Display for WscfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WscfError::UnknownCoordinationType(t) => {
                write!(f, "unknown coordination type {t:?}")
            }
            WscfError::UnknownContext(id) => write!(f, "unknown coordination context {id:?}"),
            WscfError::UnknownProtocol { coordination_type, protocol } => write!(
                f,
                "coordination type {coordination_type:?} has no protocol {protocol:?}"
            ),
            WscfError::InvalidState { operation, state } => {
                write!(f, "cannot {operation} while {state}")
            }
            WscfError::Aborted(reason) => write!(f, "coordination aborted: {reason}"),
            WscfError::Activity(msg) => write!(f, "activity failure: {msg}"),
            WscfError::Remote(msg) => write!(f, "remote registration failure: {msg}"),
            WscfError::Codec(msg) => write!(f, "context codec failure: {msg}"),
        }
    }
}

impl std::error::Error for WscfError {}

impl From<activity_service::ActivityError> for WscfError {
    fn from(e: activity_service::ActivityError) -> Self {
        WscfError::Activity(e.to_string())
    }
}

impl From<orb::OrbError> for WscfError {
    fn from(e: orb::OrbError) -> Self {
        WscfError::Remote(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            WscfError::UnknownCoordinationType("t".into()),
            WscfError::UnknownContext("c".into()),
            WscfError::UnknownProtocol { coordination_type: "t".into(), protocol: "p".into() },
            WscfError::InvalidState { operation: "o".into(), state: "s".into() },
            WscfError::Aborted("r".into()),
            WscfError::Activity("a".into()),
            WscfError::Remote("r".into()),
            WscfError::Codec("c".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
