//! The coordination service: context creation, protocol plug-in, and
//! (remote) participant registration — the WS-Coordination triad of
//! Activation, Registration and protocol services, hosted on the Activity
//! Service.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use activity_service::signal_set::SignalSet;
use activity_service::{
    Action, ActionServant, Activity, CompletionStatus, Outcome, RemoteActionProxy,
};
use orb::{Node, ObjectRef, Orb, Request, Servant, SimClock, Value};
use parking_lot::Mutex;

use crate::context::CoordinationContext;
use crate::error::WscfError;

type ProtocolFactory = Arc<dyn Fn() -> Box<dyn SignalSet> + Send + Sync>;

/// A named bundle of protocol (SignalSet) factories: one coordination type.
#[derive(Clone, Default)]
pub struct ProtocolSuite {
    factories: HashMap<String, ProtocolFactory>,
}

impl std::fmt::Debug for ProtocolSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&String> = self.factories.keys().collect();
        names.sort();
        f.debug_struct("ProtocolSuite").field("protocols", &names).finish()
    }
}

impl ProtocolSuite {
    /// An empty suite.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a protocol. `factory` must produce sets whose
    /// `signal_set_name()` equals `protocol` (checked at context creation).
    #[must_use]
    pub fn with<F>(mut self, protocol: impl Into<String>, factory: F) -> Self
    where
        F: Fn() -> Box<dyn SignalSet> + Send + Sync + 'static,
    {
        self.factories.insert(protocol.into(), Arc::new(factory));
        self
    }
}

struct ActiveContext {
    activity: Activity,
    coordination_type: String,
}

/// The coordination service: knows the registered coordination types,
/// creates contexts (one activity per coordinated piece of work, carrying
/// its type's protocol SignalSets), and registers participants —
/// locally or through its ORB-exposed registration servant.
pub struct CoordinationService {
    clock: SimClock,
    types: Mutex<HashMap<String, ProtocolSuite>>,
    contexts: Mutex<HashMap<String, ActiveContext>>,
    counter: AtomicU64,
    registration_ref: Mutex<Option<ObjectRef>>,
}

impl std::fmt::Debug for CoordinationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoordinationService")
            .field("types", &self.types.lock().len())
            .field("contexts", &self.contexts.lock().len())
            .finish()
    }
}

impl Default for CoordinationService {
    fn default() -> Self {
        Self::new(SimClock::new())
    }
}

impl CoordinationService {
    /// A service with no coordination types registered yet.
    pub fn new(clock: SimClock) -> Self {
        CoordinationService {
            clock,
            types: Mutex::new(HashMap::new()),
            contexts: Mutex::new(HashMap::new()),
            counter: AtomicU64::new(1),
            registration_ref: Mutex::new(None),
        }
    }

    /// Register (or replace) a coordination type.
    pub fn register_coordination_type(&self, coordination_type: impl Into<String>, suite: ProtocolSuite) {
        self.types.lock().insert(coordination_type.into(), suite);
    }

    /// Sorted names of registered coordination types.
    pub fn coordination_types(&self) -> Vec<String> {
        let mut names: Vec<String> = self.types.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Create a coordination context of the given type: a fresh activity
    /// with every protocol SignalSet of the type's suite associated.
    ///
    /// # Errors
    ///
    /// [`WscfError::UnknownCoordinationType`]; [`WscfError::InvalidState`]
    /// when a factory produces a set whose name disagrees with its
    /// protocol key.
    pub fn create_context(
        &self,
        coordination_type: &str,
    ) -> Result<CoordinationContext, WscfError> {
        let suite = self
            .types
            .lock()
            .get(coordination_type)
            .cloned()
            .ok_or_else(|| WscfError::UnknownCoordinationType(coordination_type.to_owned()))?;
        let id = format!("wscf-ctx-{}", self.counter.fetch_add(1, Ordering::Relaxed));
        let activity = Activity::new_root(id.clone(), self.clock.clone());
        for (protocol, factory) in &suite.factories {
            let set = factory();
            if set.signal_set_name() != protocol {
                return Err(WscfError::InvalidState {
                    operation: format!("install protocol {protocol:?}"),
                    state: format!("factory produced set {:?}", set.signal_set_name()),
                });
            }
            activity.coordinator().add_signal_set(set)?;
        }
        self.contexts.lock().insert(
            id.clone(),
            ActiveContext { activity, coordination_type: coordination_type.to_owned() },
        );
        let mut context = CoordinationContext::new(id, coordination_type);
        if let Some(reg) = self.registration_ref.lock().clone() {
            context = context.with_registration(reg);
        }
        Ok(context)
    }

    /// Register a local participant Action with one of the context's
    /// protocols.
    ///
    /// # Errors
    ///
    /// [`WscfError::UnknownContext`] / [`WscfError::UnknownProtocol`].
    pub fn register(
        &self,
        context_id: &str,
        protocol: &str,
        action: Arc<dyn Action>,
    ) -> Result<(), WscfError> {
        let contexts = self.contexts.lock();
        let ctx = contexts
            .get(context_id)
            .ok_or_else(|| WscfError::UnknownContext(context_id.to_owned()))?;
        let known = self
            .types
            .lock()
            .get(&ctx.coordination_type)
            .is_some_and(|s| s.factories.contains_key(protocol));
        if !known {
            return Err(WscfError::UnknownProtocol {
                coordination_type: ctx.coordination_type.clone(),
                protocol: protocol.to_owned(),
            });
        }
        ctx.activity.coordinator().register_action(protocol, action);
        Ok(())
    }

    /// Drive one of the context's protocols now (mid-lifetime).
    ///
    /// # Errors
    ///
    /// [`WscfError::UnknownContext`]; coordinator failures.
    pub fn drive(&self, context_id: &str, protocol: &str) -> Result<Outcome, WscfError> {
        let activity = self.activity(context_id)?;
        Ok(activity.signal(protocol)?)
    }

    /// Complete the coordinated work: set the status on the designated
    /// completion protocol (if any) and complete the activity.
    ///
    /// # Errors
    ///
    /// [`WscfError::UnknownContext`]; coordinator failures.
    pub fn complete(
        &self,
        context_id: &str,
        protocol: &str,
        status: CompletionStatus,
    ) -> Result<Outcome, WscfError> {
        let activity = self.activity(context_id)?;
        activity.set_completion_signal_set(protocol);
        activity.coordinator().set_completion_status(protocol, status)?;
        activity.set_completion_status(status)?;
        let outcome = activity.complete()?;
        self.contexts.lock().remove(context_id);
        Ok(outcome)
    }

    /// The activity behind a context (escape hatch for protocol wrappers
    /// like [`crate::acid::AtomicTransaction`]).
    ///
    /// # Errors
    ///
    /// [`WscfError::UnknownContext`].
    pub fn activity(&self, context_id: &str) -> Result<Activity, WscfError> {
        self.contexts
            .lock()
            .get(context_id)
            .map(|c| c.activity.clone())
            .ok_or_else(|| WscfError::UnknownContext(context_id.to_owned()))
    }

    /// Expose this service's registration operation as a servant on `node`
    /// so remote participants can enlist through the ORB. Returns the
    /// registration reference that subsequently rides inside every created
    /// context.
    ///
    /// # Errors
    ///
    /// Propagates activation failures.
    pub fn expose_registration(
        self: &Arc<Self>,
        orb: &Orb,
        node: &Node,
    ) -> Result<ObjectRef, WscfError> {
        let servant = RegistrationServant { service: Arc::clone(self), orb: orb.clone() };
        let reference = node.activate("wscf:Registration", servant)?;
        *self.registration_ref.lock() = Some(reference.clone());
        Ok(reference)
    }
}

/// Operation name of the registration servant.
pub const REGISTER_OP: &str = "register";

/// The ORB servant accepting remote registrations: the participant sends
/// its context id, protocol name, and the [`ObjectRef`] of its own
/// [`ActionServant`]; the coordinator side wires a [`RemoteActionProxy`]
/// (at-least-once delivery) back to it.
struct RegistrationServant {
    service: Arc<CoordinationService>,
    orb: Orb,
}

impl Servant for RegistrationServant {
    fn dispatch(&self, request: &Request) -> Result<Value, orb::OrbError> {
        if request.operation() != REGISTER_OP {
            return Err(orb::OrbError::BadOperation(request.operation().to_owned()));
        }
        let context_id = request
            .arg("context")
            .and_then(Value::as_str)
            .ok_or_else(|| orb::OrbError::Codec("missing context".into()))?;
        let protocol = request
            .arg("protocol")
            .and_then(Value::as_str)
            .ok_or_else(|| orb::OrbError::Codec("missing protocol".into()))?;
        let target = request
            .arg("participant")
            .ok_or_else(|| orb::OrbError::Codec("missing participant".into()))?;
        let target = ObjectRef::from_value(target)?;
        let name = request
            .arg("name")
            .and_then(Value::as_str)
            .unwrap_or("remote-participant")
            .to_owned();
        let proxy = RemoteActionProxy::new(name, self.orb.clone(), target.node().to_owned(), target);
        self.service
            .register(context_id, protocol, Arc::new(proxy) as Arc<dyn Action>)
            .map_err(|e| orb::OrbError::Application(e.to_string()))?;
        Ok(Value::Bool(true))
    }
}

/// Client-side helper: register a local action (exposed as a servant on
/// `node`) with a remote coordination context.
///
/// # Errors
///
/// [`WscfError::Remote`] when the context has no registration endpoint or
/// the invocation fails.
pub fn register_remote(
    orb: &Orb,
    node: &Node,
    context: &CoordinationContext,
    protocol: &str,
    action: Arc<dyn Action>,
) -> Result<(), WscfError> {
    let registration = context
        .registration()
        .ok_or_else(|| WscfError::Remote("context carries no registration endpoint".into()))?;
    let name = action.name().to_owned();
    let servant_ref = node.activate("wscf:Action", ActionServant::new(action))?;
    let request = Request::new(REGISTER_OP)
        .with_arg("context", Value::from(context.id()))
        .with_arg("protocol", Value::from(protocol))
        .with_arg("participant", servant_ref.to_value())
        .with_arg("name", Value::from(name));
    orb.invoke_at_least_once(node.name(), registration, request)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TYPE_ATOMIC_TRANSACTION;
    use activity_service::{BroadcastSignalSet, FnAction, Signal};
    use std::sync::atomic::{AtomicU32, Ordering as AOrdering};
    use tx_models::{TwoPhaseCommitSignalSet, TWO_PC_SET};

    fn service_with_types() -> Arc<CoordinationService> {
        let service = Arc::new(CoordinationService::default());
        service.register_coordination_type(
            TYPE_ATOMIC_TRANSACTION,
            ProtocolSuite::new().with(TWO_PC_SET, || Box::new(TwoPhaseCommitSignalSet::new()) as _),
        );
        service.register_coordination_type(
            "wscf:notify",
            ProtocolSuite::new()
                .with("Notify", || Box::new(BroadcastSignalSet::new("Notify", "wake", Value::Null)) as _),
        );
        service
    }

    #[test]
    fn contexts_carry_type_and_unique_ids() {
        let service = service_with_types();
        let a = service.create_context(TYPE_ATOMIC_TRANSACTION).unwrap();
        let b = service.create_context(TYPE_ATOMIC_TRANSACTION).unwrap();
        assert_ne!(a.id(), b.id());
        assert_eq!(a.coordination_type(), TYPE_ATOMIC_TRANSACTION);
        assert!(matches!(
            service.create_context("nope"),
            Err(WscfError::UnknownCoordinationType(_))
        ));
        assert_eq!(service.coordination_types().len(), 2);
    }

    #[test]
    fn registration_validates_context_and_protocol() {
        let service = service_with_types();
        let ctx = service.create_context("wscf:notify").unwrap();
        let action: Arc<dyn Action> =
            Arc::new(FnAction::new("a", |_s: &Signal| Ok(Outcome::done())));
        service.register(ctx.id(), "Notify", Arc::clone(&action)).unwrap();
        assert!(matches!(
            service.register("ghost", "Notify", Arc::clone(&action)),
            Err(WscfError::UnknownContext(_))
        ));
        assert!(matches!(
            service.register(ctx.id(), "Ghost", action),
            Err(WscfError::UnknownProtocol { .. })
        ));
    }

    #[test]
    fn mismatched_factory_name_is_rejected() {
        let service = Arc::new(CoordinationService::default());
        service.register_coordination_type(
            "bad-type",
            ProtocolSuite::new()
                .with("Expected", || Box::new(BroadcastSignalSet::new("Actual", "x", Value::Null)) as _),
        );
        assert!(matches!(
            service.create_context("bad-type"),
            Err(WscfError::InvalidState { .. })
        ));
    }

    #[test]
    fn drive_and_complete_run_the_protocols() {
        let service = service_with_types();
        let ctx = service.create_context("wscf:notify").unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let hits2 = Arc::clone(&hits);
        service
            .register(
                ctx.id(),
                "Notify",
                Arc::new(FnAction::new("counter", move |_s: &Signal| {
                    hits2.fetch_add(1, AOrdering::SeqCst);
                    Ok(Outcome::done())
                })),
            )
            .unwrap();
        let outcome = service.drive(ctx.id(), "Notify").unwrap();
        assert!(outcome.is_done());
        assert_eq!(hits.load(AOrdering::SeqCst), 1);
        // Context gone after completion... first re-add a fresh set so the
        // completion has something to drive.
        service
            .activity(ctx.id())
            .unwrap()
            .coordinator()
            .add_signal_set(Box::new(BroadcastSignalSet::new("Notify", "wake", Value::Null)))
            .unwrap();
        service.complete(ctx.id(), "Notify", CompletionStatus::Success).unwrap();
        assert!(matches!(
            service.drive(ctx.id(), "Notify"),
            Err(WscfError::UnknownContext(_))
        ));
    }

    #[test]
    fn remote_registration_over_the_orb() {
        use crate::acid::{StagedLedger, WsParticipantAction};

        let orb = Orb::new();
        let coordinator_node = orb.add_node("coordinator").unwrap();
        let participant_node = orb.add_node("participant-host").unwrap();

        let service = service_with_types();
        service.expose_registration(&orb, &coordinator_node).unwrap();
        let ctx = service.create_context(TYPE_ATOMIC_TRANSACTION).unwrap();
        assert!(ctx.registration().is_some(), "contexts advertise the endpoint");

        // The remote side: a staged ledger exposed as an Action servant,
        // registered through the wire.
        let ledger = StagedLedger::new("remote-ledger");
        ledger.stage("k", Value::I64(42));
        register_remote(
            &orb,
            &participant_node,
            &ctx,
            TWO_PC_SET,
            WsParticipantAction::new(ledger.clone() as _) as Arc<dyn Action>,
        )
        .unwrap();

        // The coordinator completes the transaction; 2PC crosses the wire.
        let outcome = service
            .complete(ctx.id(), TWO_PC_SET, CompletionStatus::Success)
            .unwrap();
        assert_eq!(outcome.name(), "committed");
        assert_eq!(ledger.read("k"), Some(Value::I64(42)));
    }

    #[test]
    fn context_value_roundtrips_through_wire_form() {
        let service = service_with_types();
        let ctx = service.create_context(TYPE_ATOMIC_TRANSACTION).unwrap();
        let wire = ctx.to_value().encode();
        let back =
            CoordinationContext::from_value(&Value::decode(&wire).unwrap()).unwrap();
        assert_eq!(back, ctx);
    }
}
