//! F5 — fig. 5: coordinator signal dispatch latency vs registered actions,
//! serial vs parallel fan-out.
//!
//! The `trivial/*` series keeps the original zero-work broadcast (pure
//! framework overhead). The `serial/*` vs `parallel8/*` series sweep the
//! action count with a 50µs simulated remote-invocation latency per
//! action — the regime the parallel dispatch layer targets; the expected
//! result is parallel ≥2× serial from 16 actions up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const WORK_US: u64 = 50;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_dispatch");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for actions in [1usize, 64, 1024] {
        group.bench_with_input(BenchmarkId::new("trivial", actions), &actions, |b, &actions| {
            b.iter(|| assert_eq!(bench::fig5_dispatch(actions), actions as u64))
        });
    }
    for actions in [1usize, 2, 4, 8, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::new("serial", actions), &actions, |b, &n| {
            b.iter(|| assert_eq!(bench::fig5_dispatch_configured(n, 1, WORK_US), n as u64))
        });
        group.bench_with_input(BenchmarkId::new("parallel8", actions), &actions, |b, &n| {
            b.iter(|| assert_eq!(bench::fig5_dispatch_configured(n, 8, WORK_US), n as u64))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
