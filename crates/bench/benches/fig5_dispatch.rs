//! F5 — fig. 5: coordinator signal dispatch latency vs registered actions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_dispatch");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for actions in [1usize, 64, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(actions), &actions, |b, &actions| {
            b.iter(|| assert_eq!(bench::fig5_dispatch(actions), actions as u64))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
