//! F1 — fig. 1: lock-hold time and competitor contention, activity-chain
//! vs monolithic transaction, swept over the number of steps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_lock_hold");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for steps in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("chained", steps), &steps, |b, &steps| {
            b.iter(|| {
                let sample = bench::fig1_booking(steps, true);
                assert!(sample.competitor_successes > 0);
                sample
            })
        });
        group.bench_with_input(BenchmarkId::new("monolithic", steps), &steps, |b, &steps| {
            b.iter(|| {
                let sample = bench::fig1_booking(steps, false);
                assert!(sample.competitor_conflicts > 0);
                sample
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
