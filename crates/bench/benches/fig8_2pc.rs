//! F8 — fig. 8: two-phase commit through the signal framework vs the
//! native OTS coordinator, swept over participants, plus the serial vs
//! parallel phase fan-out sweep with a 50µs simulated participant
//! latency (prepare and commit each).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const WORK_US: u64 = 50;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_2pc");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for participants in [2usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("signal_framework", participants),
            &participants,
            |b, &n| b.iter(|| assert!(bench::fig8_signal_2pc(n))),
        );
        group.bench_with_input(
            BenchmarkId::new("native_ots", participants),
            &participants,
            |b, &n| b.iter(|| assert!(bench::fig8_native_2pc(n))),
        );
    }
    for participants in [1usize, 2, 4, 8, 16, 32] {
        group.bench_with_input(
            BenchmarkId::new("serial", participants),
            &participants,
            |b, &n| b.iter(|| assert!(bench::fig8_2pc_configured(n, 1, WORK_US))),
        );
        group.bench_with_input(
            BenchmarkId::new("parallel8", participants),
            &participants,
            |b, &n| b.iter(|| assert!(bench::fig8_2pc_configured(n, 8, WORK_US))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
