//! X2 — §3.4: activity-structure recovery (log replay + rebinding) vs log
//! size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_replay");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for records in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(records), &records, |b, &n| {
            b.iter(|| assert_eq!(bench::recovery_replay(n), n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
