//! F10 — fig. 10: workflow engine makespan over width and depth, sequential
//! vs batch-parallel scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_workflow");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for (width, depth) in [(2usize, 8usize), (8, 2), (8, 8)] {
        let tasks = width * depth;
        group.bench_with_input(
            BenchmarkId::new("sequential", format!("{width}x{depth}")),
            &(width, depth),
            |b, &(w, d)| b.iter(|| assert_eq!(bench::fig10_workflow(w, d, false), tasks)),
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", format!("{width}x{depth}")),
            &(width, depth),
            |b, &(w, d)| b.iter(|| assert_eq!(bench::fig10_workflow(w, d, true), tasks)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
