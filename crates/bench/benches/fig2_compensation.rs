//! F2 — fig. 2: the compensation path (saga failure at the last step),
//! swept over chain length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_compensation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for steps in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            b.iter(|| assert_eq!(bench::fig2_compensation(steps), steps - 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
