//! Micro-bench for the coordinator's trace gate: with tracing off,
//! `record()` is a single relaxed atomic load and must add nothing
//! measurable to the dispatch loop; with a TraceLog attached every
//! Transmit/SetResponse pair takes the mutex and allocates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_trace_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_gate");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(400));
    group.warm_up_time(std::time::Duration::from_millis(150));
    for actions in [16usize, 256] {
        group.bench_with_input(BenchmarkId::new("off", actions), &actions, |b, &n| {
            b.iter(|| assert_eq!(bench::fig5_dispatch_traced(n, false), n as u64))
        });
        group.bench_with_input(BenchmarkId::new("on", actions), &actions, |b, &n| {
            b.iter(|| assert_eq!(bench::fig5_dispatch_traced(n, true), n as u64))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_gate);
criterion_main!(benches);
