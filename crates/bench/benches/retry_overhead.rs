//! R1 — reliability-layer fault-free overhead: the fig. 5 broadcast over
//! the simulated ORB with the `orb::retry` policy enabled vs the legacy
//! at-least-once loop, and the fig. 8 2PC fan-out with the participant
//! failure detector consulted vs absent. The budget pinned in
//! EXPERIMENTS.md: <2% regression on the fault-free path for either layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_retry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("retry_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for actions in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("dispatch_legacy", actions),
            &actions,
            |b, &n| b.iter(|| assert_eq!(bench::remote_dispatch_with_retry(n, false), n as u64)),
        );
        group.bench_with_input(
            BenchmarkId::new("dispatch_retry_policy", actions),
            &actions,
            |b, &n| b.iter(|| assert_eq!(bench::remote_dispatch_with_retry(n, true), n as u64)),
        );
    }
    for participants in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("2pc_no_detector", participants),
            &participants,
            |b, &n| b.iter(|| assert!(bench::two_phase_with_detector(n, false))),
        );
        group.bench_with_input(
            BenchmarkId::new("2pc_with_detector", participants),
            &participants,
            |b, &n| b.iter(|| assert!(bench::two_phase_with_detector(n, true))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_retry_overhead);
criterion_main!(benches);
