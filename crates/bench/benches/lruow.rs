//! X1 — §4.3: LRUOW rehearsal/performance throughput vs a strict-locking
//! baseline, swept over conflict rate (interloper every N operations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const OPS: usize = 500;

fn bench_lruow(c: &mut Criterion) {
    let mut group = c.benchmark_group("lruow_vs_locking");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for conflict_every in [0usize, 20, 2] {
        group.bench_with_input(
            BenchmarkId::new("lruow", conflict_every),
            &conflict_every,
            |b, &ce| b.iter(|| bench::lruow_counter(OPS, ce)),
        );
        group.bench_with_input(
            BenchmarkId::new("locking", conflict_every),
            &conflict_every,
            |b, &ce| b.iter(|| bench::locking_counter(OPS, ce)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lruow);
criterion_main!(benches);
