//! O1 — telemetry disabled-path overhead: the fig. 5 signal broadcast and
//! the fig. 8 native 2PC fan-out with a *disabled* span recorder attached
//! vs the uninstrumented seed path. Every instrumentation site still runs
//! but collapses to an atomic `is_enabled` load. The budget pinned in
//! EXPERIMENTS.md: <2% regression on either hot loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for actions in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("dispatch_bare", actions),
            &actions,
            |b, &n| b.iter(|| assert_eq!(bench::fig5_dispatch_telemetry(n, false), n as u64)),
        );
        group.bench_with_input(
            BenchmarkId::new("dispatch_disabled_recorder", actions),
            &actions,
            |b, &n| b.iter(|| assert_eq!(bench::fig5_dispatch_telemetry(n, true), n as u64)),
        );
    }
    for participants in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("2pc_bare", participants),
            &participants,
            |b, &n| b.iter(|| assert!(bench::two_phase_with_telemetry(n, false))),
        );
        group.bench_with_input(
            BenchmarkId::new("2pc_disabled_recorder", participants),
            &participants,
            |b, &n| b.iter(|| assert!(bench::two_phase_with_telemetry(n, true))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
