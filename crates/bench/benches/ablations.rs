//! Ablation benches for the design choices DESIGN.md calls out:
//! 1. framework dispatch (checked state machine, per-signal snapshots)
//!    vs direct calls;
//! 2. implicit (interceptor) vs explicit context propagation;
//! 3. at-least-once (retrying) vs fire-once delivery on a clean network.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orb::{Orb, Request, Value};

fn dispatch_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dispatch");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for n in [64usize, 1024] {
        let actions = bench::trivial_actions(n);
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, &n| {
            b.iter(|| assert_eq!(bench::direct_dispatch(&actions), n))
        });
        group.bench_with_input(BenchmarkId::new("framework", n), &n, |b, &n| {
            b.iter(|| assert_eq!(bench::fig5_dispatch(n), n as u64))
        });
    }
    group.finish();
}

fn context_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_context");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(200));

    // Bare ORB: no interceptors at all.
    let bare = Orb::new();
    let node = bare.add_node("n").unwrap();
    let obj = node.activate("Svc", |_r: &Request| Ok(Value::Null)).unwrap();
    group.bench_function("no_interceptors", |b| {
        b.iter(|| bare.invoke(&obj, Request::new("op")).unwrap())
    });

    // Activity-service interceptors installed, no current activity.
    let with_svc = Orb::new();
    let service = activity_service::ActivityService::new();
    service.attach_to_orb(&with_svc);
    let node = with_svc.add_node("n").unwrap();
    let obj = node.activate("Svc", |_r: &Request| Ok(Value::Null)).unwrap();
    group.bench_function("interceptors_idle", |b| {
        b.iter(|| with_svc.invoke(&obj, Request::new("op")).unwrap())
    });

    // Deep activity chain propagated on every call.
    service.begin("l1").unwrap();
    service.begin("l2").unwrap();
    service.begin("l3").unwrap();
    group.bench_function("interceptors_depth3", |b| {
        b.iter(|| with_svc.invoke(&obj, Request::new("op")).unwrap())
    });
    group.finish();
}

fn delivery_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_delivery");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(200));
    let orb = Orb::new();
    let node = orb.add_node("n").unwrap();
    let obj = node.activate("Svc", |_r: &Request| Ok(Value::Null)).unwrap();
    let obj2 = obj.clone();
    let orb2 = orb.clone();
    group.bench_function("fire_once", |b| {
        b.iter(|| orb2.invoke(&obj2, Request::new("op")).unwrap())
    });
    group.bench_function("at_least_once_wrapper", |b| {
        b.iter(|| {
            orb.invoke_at_least_once(orb::node::EXTERNAL_CALLER, &obj, Request::new("op"))
                .unwrap()
        })
    });
    drop(Arc::new(()));
    group.finish();
}

fn interposition_ablation(c: &mut Criterion) {
    use activity_service::{interpose, Activity};
    use criterion::BenchmarkId;

    let mut group = c.benchmark_group("ablation_interposition");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for participants in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("flat", participants), &participants, |b, &n| {
            b.iter(|| {
                let orb = Orb::new();
                orb.add_node("superior").unwrap();
                let node = orb.add_node("org").unwrap();
                let activity = Activity::new_root("bench", orb::SimClock::new());
                activity
                    .coordinator()
                    .add_signal_set(Box::new(activity_service::BroadcastSignalSet::new(
                        "S", "go", Value::Null,
                    )))
                    .unwrap();
                for action in bench::trivial_actions(n) {
                    let obj = node
                        .activate("Action", activity_service::ActionServant::new(action))
                        .unwrap();
                    activity.coordinator().register_action(
                        "S",
                        Arc::new(activity_service::RemoteActionProxy::new(
                            "p",
                            orb.clone(),
                            "superior",
                            obj,
                        )) as _,
                    );
                }
                activity.signal("S").unwrap()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("interposed", participants),
            &participants,
            |b, &n| {
                b.iter(|| {
                    let orb = Orb::new();
                    orb.add_node("superior").unwrap();
                    let node = orb.add_node("org").unwrap();
                    let activity = Activity::new_root("bench", orb::SimClock::new());
                    activity
                        .coordinator()
                        .add_signal_set(Box::new(activity_service::BroadcastSignalSet::new(
                            "S", "go", Value::Null,
                        )))
                        .unwrap();
                    let relay =
                        interpose(activity.coordinator(), "S", &orb, &node, "relay").unwrap();
                    for action in bench::trivial_actions(n) {
                        relay.register_local(action);
                    }
                    activity.signal("S").unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    dispatch_ablation,
    context_ablation,
    delivery_ablation,
    interposition_ablation
);
criterion_main!(benches);
