//! F11/F12 — figs. 11–12: BTP atom prepare+confirm and cohesion
//! confirm-set termination, swept over size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_btp");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for size in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("atom", size), &size, |b, &n| {
            b.iter(|| assert!(bench::fig11_atom(n)))
        });
        group.bench_with_input(BenchmarkId::new("cohesion", size), &size, |b, &n| {
            b.iter(|| assert_eq!(bench::fig11_cohesion(n), n / 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
