//! Group-commit WAL throughput sweep (DESIGN.md §12): commit-record
//! throughput of 1–16 concurrent committers forcing records through a real
//! file-backed log, per-record sync vs group commit. One "commit" is the
//! 2PC forcing discipline in miniature: a prepared record and a completion
//! record that may ride a batch, and a decision record awaited durably.
//! Per-record sync pays one fsync per decision; the group-commit wrapper
//! coalesces concurrent decisions under one leader sync, so throughput
//! scales with the committer count instead of flatlining on fsync latency.
//!
//! Writes the machine-readable sweep to the path in `WAL_BENCH_SNAPSHOT`,
//! default `target/wal_throughput.json` (the CI artifact); the committed
//! reference numbers live in `BENCH_wal.json`.
//!
//! Run with: `cargo run -q -p bench --bin wal_throughput --release`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use recovery_log::{FileWal, GroupCommitWal, Wal};

const COMMITTERS: &[usize] = &[1, 2, 4, 8, 16];
const COMMITS_PER_THREAD: usize = 200;
const KIND_PREPARED: u32 = 0x0102;
const KIND_DECISION: u32 = 0x0103;
const KIND_COMPLETED: u32 = 0x0104;

fn bench_path(tag: &str) -> std::path::PathBuf {
    // Under target/ (the build tree's real filesystem), not /tmp: tmpfs
    // would make sync_data free and the comparison meaningless.
    let mut p = std::path::PathBuf::from("target");
    p.push(format!("wal-throughput-{tag}-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Drive `committers` threads, each forcing `COMMITS_PER_THREAD` decision
/// records through `wal`. Returns (commits/sec, syncs observed).
fn run(wal: Arc<dyn Wal>, committers: usize, tel: &telemetry::Telemetry) -> (f64, u64) {
    let before = tel.metrics().counter_value("wal_syncs_total");
    let start = Instant::now();
    let mut handles = Vec::with_capacity(committers);
    for t in 0..committers {
        let wal = Arc::clone(&wal);
        handles.push(std::thread::spawn(move || {
            for i in 0..COMMITS_PER_THREAD {
                let tag = format!("tx-{t}-{i}");
                wal.append(KIND_PREPARED, tag.as_bytes()).expect("prepared");
                wal.append_durable(KIND_DECISION, tag.as_bytes()).expect("decision");
                wal.append(KIND_COMPLETED, tag.as_bytes()).expect("completed");
            }
        }));
    }
    for h in handles {
        h.join().expect("committer thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    wal.sync().expect("final sync");
    let syncs = tel.metrics().counter_value("wal_syncs_total") - before;
    ((committers * COMMITS_PER_THREAD) as f64 / elapsed, syncs)
}

fn main() {
    println!("## W1 (sec 12): group-commit WAL throughput, commits/sec");
    println!(
        "# {COMMITS_PER_THREAD} commits/thread; commit = prepared + forced decision + completed"
    );
    println!(
        "{:>10} {:>14} {:>14} {:>9} {:>12} {:>12}",
        "committers", "per-record", "group", "speedup", "syncs(rec)", "syncs(grp)"
    );

    let mut rows = String::new();
    let mut speedup_at_8 = 0.0f64;
    for &n in COMMITTERS {
        // Per-record sync: the default `append_durable` on FileWal is
        // append + its own fsync, serialized through the log.
        let tel_rec = telemetry::Telemetry::new();
        let path = bench_path(&format!("rec-{n}"));
        let file = FileWal::open(&path).expect("open per-record wal");
        file.set_telemetry(&tel_rec);
        let (rec_tput, rec_syncs) = run(Arc::new(file), n, &tel_rec);
        let _ = std::fs::remove_file(&path);

        // Group commit: same sink, one leader sync per batch.
        let tel_grp = telemetry::Telemetry::new();
        let path = bench_path(&format!("grp-{n}"));
        let group = GroupCommitWal::new(FileWal::open(&path).expect("open group wal"));
        group.set_telemetry(&tel_grp);
        let (grp_tput, grp_syncs) = run(Arc::new(group), n, &tel_grp);
        let _ = std::fs::remove_file(&path);

        let speedup = grp_tput / rec_tput;
        if n == 8 {
            speedup_at_8 = speedup;
        }
        println!(
            "{n:>10} {rec_tput:>14.0} {grp_tput:>14.0} {speedup:>8.1}x {rec_syncs:>12} {grp_syncs:>12}"
        );
        let _ = write!(
            rows,
            "{}{{\"committers\":{n},\"per_record_commits_per_sec\":{rec_tput:.0},\
             \"group_commits_per_sec\":{grp_tput:.0},\"speedup\":{speedup:.2},\
             \"per_record_syncs\":{rec_syncs},\"group_syncs\":{grp_syncs}}}",
            if rows.is_empty() { "" } else { "," }
        );
    }
    println!("# speedup at 8 committers: {speedup_at_8:.1}x (regression floor: 3x)");

    let json = format!(
        "{{\"experiment\":\"wal_throughput\",\"commits_per_thread\":{COMMITS_PER_THREAD},\
         \"rows\":[{rows}]}}\n"
    );
    let path = std::env::var("WAL_BENCH_SNAPSHOT")
        .unwrap_or_else(|_| "target/wal_throughput.json".to_owned());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("# sweep snapshot written to {path}"),
        Err(e) => println!("# sweep snapshot NOT written ({path}: {e})"),
    }

    if std::env::var_os("WAL_BENCH_ENFORCE").is_some() {
        assert!(
            speedup_at_8 >= 3.0,
            "group commit must be >=3x per-record sync at 8 committers, got {speedup_at_8:.1}x"
        );
        println!("# regression floor enforced: ok");
    }
}
