//! Prints the paper's sequence diagrams — figs. 8, 10, 11 and 12 — as
//! recorded from live protocol runs, so the figures can be compared line
//! by line against the published ones.
//!
//! Run with: `cargo run -q -p bench --bin traces`

use std::sync::Arc;

use activity_service::{Activity, CompletionStatus, FnAction, Outcome, Signal, TraceLog};
use orb::{SimClock, Value};

fn banner(title: &str) {
    println!("\n==== {title} ====");
}

fn print_trace(trace: &TraceLog) {
    for line in trace.render().lines() {
        println!("  {line}");
    }
}

fn fig8() {
    banner("fig. 8 — two-phase commit with Signals, SignalSets and Actions");
    let activity = Activity::new_root("tx", SimClock::new());
    let trace = TraceLog::new();
    activity.coordinator().set_trace(trace.clone());
    activity
        .coordinator()
        .add_signal_set(Box::new(tx_models::TwoPhaseCommitSignalSet::new()))
        .unwrap();
    activity.set_completion_signal_set(tx_models::TWO_PC_SET);
    for name in ["Action-1", "Action-2"] {
        activity.coordinator().register_action(
            tx_models::TWO_PC_SET,
            Arc::new(FnAction::new(name, |_s: &Signal| Ok(Outcome::done()))) as _,
        );
    }
    activity.complete().unwrap();
    print_trace(&trace);
}

fn fig10() {
    banner("fig. 10 — workflow coordination: a starts b and c");
    let activity = Activity::new_root("a", SimClock::new());
    let trace = TraceLog::new();
    activity.coordinator().set_trace(trace.clone());
    activity
        .coordinator()
        .add_signal_set(Box::new(tx_models::TaskStartSignalSet::new(Value::from("order"))))
        .unwrap();
    for name in ["b", "c"] {
        activity.coordinator().register_action(
            tx_models::TASK_START_SET,
            tx_models::TaskAction::new(name, |_p: &Value| Ok(Value::from("started"))) as _,
        );
    }
    activity.signal(tx_models::TASK_START_SET).unwrap();
    print_trace(&trace);

    println!("  --- child b reports its outcome back to a ---");
    let child = activity.begin_child("b").unwrap();
    let child_trace = TraceLog::new();
    child.coordinator().set_trace(child_trace.clone());
    child
        .coordinator()
        .add_signal_set(Box::new(tx_models::CompletedSignalSet::new(Value::from("b-result"))))
        .unwrap();
    child.set_completion_signal_set(tx_models::COMPLETED_SET);
    child.coordinator().register_action(
        tx_models::COMPLETED_SET,
        tx_models::OutcomeCollector::new("a") as _,
    );
    child.complete().unwrap();
    print_trace(&child_trace);
}

fn fig11_12() {
    banner("fig. 11 — the BTP PrepareSignalSet");
    let activity = Activity::new_root("atom", SimClock::new());
    let trace = TraceLog::new();
    activity.coordinator().set_trace(trace.clone());
    let atom = btp::Atom::new("booking", activity).unwrap();
    for name in ["Action-1", "Action-2"] {
        atom.enroll(btp::Reservation::new(name) as _).unwrap();
    }
    atom.prepare().unwrap();
    print_trace(&trace);

    banner("fig. 12 — the BTP CompleteSignalSet (confirm)");
    trace.clear();
    atom.confirm().unwrap();
    print_trace(&trace);

    banner("fig. 12 variant — cancel in place of confirm");
    let activity = Activity::new_root("atom-2", SimClock::new());
    let trace = TraceLog::new();
    activity.coordinator().set_trace(trace.clone());
    let atom = btp::Atom::new("booking-2", activity).unwrap();
    for name in ["Action-1", "Action-2"] {
        atom.enroll(btp::Reservation::new(name) as _).unwrap();
    }
    atom.prepare().unwrap();
    trace.clear();
    atom.cancel().unwrap();
    print_trace(&trace);
}

fn fig9() {
    banner("fig. 9 / sec 4.2 — open nesting: B propagates, A fails, !B runs");
    let registry = tx_models::InMemoryActivityRegistry::new();
    let a = Activity::new_root("A", SimClock::new());
    let a_trace = TraceLog::new();
    a.coordinator().set_trace(a_trace.clone());
    a.coordinator()
        .add_signal_set(Box::new(tx_models::CompletionSignalSet::new()))
        .unwrap();
    a.set_completion_signal_set(tx_models::COMPLETION_SET);
    registry.register(&a);

    let b = a.begin_child("B").unwrap();
    let b_trace = TraceLog::new();
    b.coordinator().set_trace(b_trace.clone());
    b.coordinator()
        .add_signal_set(Box::new(tx_models::CompletionSignalSet::propagating_to(a.id())))
        .unwrap();
    b.set_completion_signal_set(tx_models::COMPLETION_SET);
    let undo = tx_models::CompensationAction::new(
        "CompensationAction",
        registry as Arc<dyn tx_models::ActivityRegistry>,
        || Ok(()),
    );
    b.coordinator()
        .register_action(tx_models::COMPLETION_SET, undo as _);

    b.complete().unwrap();
    println!("  --- B completes successfully: Propagate carries A's identity ---");
    print_trace(&b_trace);

    a.set_completion_status(CompletionStatus::FailOnly).unwrap();
    a.complete().unwrap();
    println!("  --- A later fails: the propagated action receives Failure and starts !B ---");
    print_trace(&a_trace);
}

fn main() {
    println!("Sequence-diagram reproduction: each block below is the live trace of the");
    println!("corresponding figure's protocol, in the paper's own message vocabulary.");
    fig8();
    fig9();
    fig10();
    fig11_12();
}
