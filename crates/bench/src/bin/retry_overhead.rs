//! Reliability-layer fault-free overhead harness (DESIGN.md §10): the cost
//! of enabling `orb::retry` policies on the remote dispatch path and the
//! participant failure detector on the 2PC fan-out, measured on fully
//! healthy, fault-free runs where neither layer should ever act. The budget
//! pinned in EXPERIMENTS.md is <2% — within measurement noise.
//!
//! Run with: `cargo run -q -p bench --bin retry_overhead --release`

use std::time::Instant;

/// One timed batch: µs/op over `iters` iterations.
fn batch_us(op: &mut impl FnMut(), iters: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    samples[samples.len() / 2]
}

/// Paired interleaved measurement: each batch times the baseline and the
/// layered workload back to back, so slow machine-load drift hits both
/// sides equally; the reported delta is the median of per-batch deltas.
fn compare(
    n: usize,
    mut baseline: impl FnMut(),
    mut layered: impl FnMut(),
    iters: u32,
    batches: u32,
) {
    for _ in 0..iters {
        baseline();
        layered();
    }
    let mut base_samples = Vec::with_capacity(batches as usize);
    let mut layer_samples = Vec::with_capacity(batches as usize);
    let mut deltas = Vec::with_capacity(batches as usize);
    for _ in 0..batches {
        let b = batch_us(&mut baseline, iters);
        let l = batch_us(&mut layered, iters);
        deltas.push((l - b) / b * 100.0);
        base_samples.push(b);
        layer_samples.push(l);
    }
    println!(
        "{n:>8} {:>13.1} {:>13.1} {:>+9.1}%",
        median(base_samples),
        median(layer_samples),
        median(deltas)
    );
}

fn main() {
    const BATCHES: u32 = 15;
    println!("## R1 (sec 10): reliability-layer fault-free overhead, µs/op");
    println!("# paired interleaved batches, median of {BATCHES}; budget <2% (within noise)");

    println!("# fig. 5 remote dispatch: legacy at-least-once vs RetryPolicy(8)");
    println!("{:>8} {:>13} {:>13} {:>10}", "actions", "legacy", "policy", "delta");
    for n in [4usize, 16, 64] {
        let iters = (8192 / n).max(32) as u32;
        compare(
            n,
            || assert_eq!(bench::remote_dispatch_with_retry(n, false), n as u64),
            || assert_eq!(bench::remote_dispatch_with_retry(n, true), n as u64),
            iters,
            BATCHES,
        );
    }

    println!("# fig. 8 2PC fan-out: no detector vs healthy-participant detector consult");
    println!("{:>8} {:>13} {:>13} {:>10}", "parts", "bare", "detector", "delta");
    for n in [4usize, 16, 64] {
        let iters = (8192 / n).max(32) as u32;
        compare(
            n,
            || assert!(bench::two_phase_with_detector(n, false)),
            || assert!(bench::two_phase_with_detector(n, true)),
            iters,
            BATCHES,
        );
    }
}
