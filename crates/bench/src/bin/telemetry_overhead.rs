//! Telemetry disabled-path overhead harness (DESIGN.md §11): the cost of
//! leaving the span/metrics instrumentation compiled into the hot loops
//! with the recorder *disabled* — every site still runs, but collapses to
//! an atomic `is_enabled` load. Measured on the fig. 5 signal broadcast
//! and the fig. 8 native 2PC fan-out against the uninstrumented seed
//! paths. The budget pinned in EXPERIMENTS.md is <2% — within measurement
//! noise.
//!
//! The third table measures the flight recorder's own gate (DESIGN.md §15):
//! a disabled [`telemetry::FlightRecorder`] attached to the coordinator's
//! journal and failpoint set versus none at all. Setting
//! `RECORDER_BUDGET_PCT` (the CI introspection job sets `2`) turns that
//! budget into a hard failure.
//!
//! Also writes one *enabled* run's metrics-registry JSON snapshot (the CI
//! artifact) to the path in `TELEMETRY_SNAPSHOT`, default
//! `target/telemetry_metrics.json`.
//!
//! Run with: `cargo run -q -p bench --bin telemetry_overhead --release`

use std::time::Instant;

/// One timed batch: µs/op over `iters` iterations.
fn batch_us(op: &mut impl FnMut(), iters: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    samples[samples.len() / 2]
}

/// Paired interleaved measurement: each batch times the baseline and the
/// instrumented workload back to back, so slow machine-load drift hits
/// both sides equally. The printed delta is the median of per-batch
/// deltas; the *returned* delta compares each side's fastest batch —
/// load noise is strictly additive, so min-vs-min estimates the true
/// cost and is what the budget gate enforces.
fn compare(
    n: usize,
    mut baseline: impl FnMut(),
    mut instrumented: impl FnMut(),
    iters: u32,
    batches: u32,
) -> f64 {
    for _ in 0..iters {
        baseline();
        instrumented();
    }
    let mut base_samples = Vec::with_capacity(batches as usize);
    let mut inst_samples = Vec::with_capacity(batches as usize);
    let mut deltas = Vec::with_capacity(batches as usize);
    for _ in 0..batches {
        let b = batch_us(&mut baseline, iters);
        let i = batch_us(&mut instrumented, iters);
        deltas.push((i - b) / b * 100.0);
        base_samples.push(b);
        inst_samples.push(i);
    }
    let best = |s: &[f64]| s.iter().copied().fold(f64::INFINITY, f64::min);
    let (b, i) = (best(&base_samples), best(&inst_samples));
    println!(
        "{n:>8} {:>13.1} {:>13.1} {:>+9.1}%",
        median(base_samples),
        median(inst_samples),
        median(deltas)
    );
    (i - b) / b * 100.0
}

fn main() {
    const BATCHES: u32 = 15;
    println!("## O1 (sec 11): telemetry disabled-path overhead, µs/op");
    println!("# paired interleaved batches, median of {BATCHES}; budget <2% (within noise)");

    println!("# fig. 5 signal broadcast: no recorder vs disabled recorder attached");
    println!("{:>8} {:>13} {:>13} {:>10}", "actions", "bare", "disabled", "delta");
    for n in [4usize, 16, 64] {
        let iters = (8192 / n).max(32) as u32;
        compare(
            n,
            || assert_eq!(bench::fig5_dispatch_telemetry(n, false), n as u64),
            || assert_eq!(bench::fig5_dispatch_telemetry(n, true), n as u64),
            iters,
            BATCHES,
        );
    }

    println!("# fig. 8 2PC fan-out: no recorder vs disabled recorder on the factory");
    println!("{:>8} {:>13} {:>13} {:>10}", "parts", "bare", "disabled", "delta");
    for n in [4usize, 16, 64] {
        let iters = (8192 / n).max(32) as u32;
        compare(
            n,
            || assert!(bench::two_phase_with_telemetry(n, false)),
            || assert!(bench::two_phase_with_telemetry(n, true)),
            iters,
            BATCHES,
        );
    }

    // The flight-recorder gate (DESIGN.md §15): journal + failpoint mirrors
    // attached but disabled, versus no recorder at all. When the
    // `RECORDER_BUDGET_PCT` env is set (the CI introspection job sets it),
    // a median delta above the budget fails the run.
    println!("# fig. 8 2PC fan-out: no flight recorder vs disabled recorder on journal+failpoints");
    println!("{:>8} {:>13} {:>13} {:>10}", "parts", "bare", "disabled", "delta");
    let recorder =
        telemetry::FlightRecorder::disabled("bench", telemetry::DEFAULT_RECORDER_CAPACITY);
    let mut recorder_deltas = Vec::new();
    for n in [4usize, 16, 64] {
        let iters = (8192 / n).max(32) as u32;
        recorder_deltas.push(compare(
            n,
            || assert!(bench::two_phase_with_recorder(n, None)),
            || assert!(bench::two_phase_with_recorder(n, Some(&recorder))),
            iters,
            BATCHES,
        ));
    }
    if let Ok(budget) = std::env::var("RECORDER_BUDGET_PCT") {
        let budget: f64 = budget.parse().expect("RECORDER_BUDGET_PCT must be a number");
        // Median across fan-out sizes of the min-vs-min deltas: single
        // cells still carry machine-load noise the paired batching can't
        // fully cancel (the printed medians flip between -1% and +8% on a
        // loaded container), but each side's fastest batch is stable.
        let typical = median(recorder_deltas);
        assert!(
            typical <= budget,
            "recorder disabled-path overhead {typical:+.1}% exceeds the {budget}% budget"
        );
        println!("# recorder disabled-path within the {budget}% budget ({typical:+.1}%)");
    }

    // One enabled run's registry snapshot, archived by the CI telemetry job.
    let snapshot = bench::instrumented_metrics_snapshot();
    let path = std::env::var("TELEMETRY_SNAPSHOT")
        .unwrap_or_else(|_| "target/telemetry_metrics.json".to_owned());
    match std::fs::write(&path, &snapshot) {
        Ok(()) => println!("# metrics snapshot written to {path}"),
        Err(e) => println!("# metrics snapshot NOT written ({path}: {e})"),
    }
}
