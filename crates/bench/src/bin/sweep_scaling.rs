//! Simulation-sweep scaling harness: wall-clock cost of the deterministic
//! chaos explorer (DESIGN.md §9) as the seeded schedule population grows.
//! `EXPERIMENTS.md` records this output next to the tier-1 sweep's
//! description so the "how much coverage per second" trade-off is explicit.
//!
//! Run with: `cargo run -q -p bench --bin sweep_scaling --release`

use std::time::Instant;

use harness::{sweep, SweepConfig};

fn main() {
    println!("## Simulation sweep: schedule population vs wall-clock");
    println!(
        "# {} scenarios, max 4 fault events/schedule, every run executed",
        harness::scenarios::all().len()
    );
    println!("# twice (trace-determinism oracle), shrinking enabled.");
    println!(
        "{:>14} {:>12} {:>12} {:>14}",
        "seeds/scenario", "schedules", "wall ms", "schedules/s"
    );
    for per_scenario in [5u64, 10, 20, 40, 80, 160] {
        let config = SweepConfig {
            seed_start: 0x2026_0806,
            schedules: per_scenario,
            max_events: 4,
            shrink: true,
        };
        let start = Instant::now();
        let mut total = 0u64;
        let mut failures = 0usize;
        for scenario in harness::scenarios::all() {
            let report = sweep(scenario.as_ref(), &config);
            total += report.schedules_run;
            failures += report.failures.len();
        }
        let elapsed = start.elapsed();
        assert_eq!(failures, 0, "well-behaved scenarios must hold every oracle");
        println!(
            "{:>14} {:>12} {:>12.1} {:>14.0}",
            per_scenario,
            total,
            elapsed.as_secs_f64() * 1e3,
            total as f64 / elapsed.as_secs_f64()
        );
    }
}
