//! Whole-cluster introspection harness (DESIGN.md §15): run one paced 2PC
//! commit across a three-node simulated cluster, install an
//! [`orb::Introspection`] servant on every node, and render what an
//! operator would see — each node's live state table queried **over the
//! wire**, the commit span's critical-path latency attribution as JSON,
//! and the vote-latency quantiles from the metrics registry.
//!
//! Participants are wrapped in [`bench::PacedResource`], which advances the
//! virtual clock on every protocol call, so spans carry real (virtual)
//! durations and the attribution is non-trivial. Everything is
//! deterministic: two runs print byte-identical output.
//!
//! Writes the cluster table to `INTROSPECT_SNAPSHOT` (default
//! `target/introspection.txt`) and the attribution JSON to
//! `INTROSPECT_ATTRIBUTION` (default `target/critical_path.json`) — the CI
//! introspection job archives both.
//!
//! Run with: `cargo run -q -p bench --bin introspect --release`

use std::sync::Arc;
use std::time::Duration;

use orb::{
    DedupWindow, FailureDetector, Introspection, Orb, Request, SimClock, Value,
};
use ots::{
    ProtocolJournal, RecoverableResource, Resource, TransactionFactory, TransactionalKv,
};
use recovery_log::{GroupCommitWal, MemWal, Wal};

const VOTE_PACE: Duration = Duration::from_micros(250);

fn main() {
    let clock = SimClock::new();
    let telemetry = telemetry::Telemetry::with_time(Arc::new(clock.clone()));
    let recorder = telemetry::FlightRecorder::with_time(
        "coordinator",
        telemetry::DEFAULT_RECORDER_CAPACITY,
        Arc::new(clock.clone()),
    );
    telemetry.attach_recorder(recorder.clone());

    // One ORB, three nodes — the same wiring the partition sweeps use.
    let orb = Orb::builder().clock(clock.clone()).build();
    let coordinator = orb.add_node("coordinator").expect("coordinator node");
    let store_node = orb.add_node("store").expect("store node");
    let witness_node = orb.add_node("witness").expect("witness node");

    // Coordinator-side state: group-commit WAL, journal, detector.
    let group = Arc::new(GroupCommitWal::new(MemWal::new()));
    let wal: Arc<dyn Wal> = Arc::clone(&group) as Arc<dyn Wal>;
    let journal = ProtocolJournal::new();
    journal.set_recorder(recorder.clone());
    let detector = FailureDetector::new(clock.clone());
    detector.set_recorder(recorder.clone());
    let factory = TransactionFactory::with_wal(Arc::clone(&wal))
        .with_clock(clock.clone())
        .with_dispatch(ots::DispatchConfig::serial())
        .with_journal(journal.clone())
        .with_telemetry(telemetry.clone());

    // Participant-side state: recoverable wrappers over paced stores, a
    // dedup window with some remembered deliveries.
    let participant_wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    let kv_store = Arc::new(TransactionalKv::new("store"));
    let kv_witness = Arc::new(TransactionalKv::new("witness"));
    let res_store = Arc::new(
        RecoverableResource::new(
            Arc::new(bench::PacedResource::new(
                Arc::clone(&kv_store) as Arc<dyn Resource>,
                clock.clone(),
                VOTE_PACE,
            )) as Arc<dyn Resource>,
            Arc::clone(&participant_wal),
            "coordinator",
        ),
    );
    let res_witness = Arc::new(
        RecoverableResource::new(
            Arc::new(bench::PacedResource::new(
                Arc::clone(&kv_witness) as Arc<dyn Resource>,
                clock.clone(),
                2 * VOTE_PACE,
            )) as Arc<dyn Resource>,
            Arc::clone(&participant_wal),
            "coordinator",
        ),
    );
    let dedup = Arc::new(DedupWindow::new(64));
    dedup.record("delivery-1", Value::from("ok"));
    dedup.record("delivery-2", Value::from("ok"));

    // Drive one paced commit; the detector hears from both participants.
    let control = factory.create().expect("begin record");
    control
        .coordinator()
        .register_resource(Arc::clone(&res_store) as Arc<dyn Resource>)
        .expect("register store");
    control
        .coordinator()
        .register_resource(Arc::clone(&res_witness) as Arc<dyn Resource>)
        .expect("register witness");
    kv_store.write(control.id(), "k", Value::from(1i64)).expect("write store");
    kv_witness.write(control.id(), "w", Value::from(2i64)).expect("write witness");
    control.terminator().commit().expect("commit");
    // Seed the detector with evidence worth rendering: the witness dropped
    // one call and recovered; a flaky replica keeps failing.
    detector.record_failure("witness");
    detector.record_success("witness");
    for _ in 0..3 {
        detector.record_failure("replica-3");
    }

    // The introspection plane: one servant per node, read-only probes over
    // each node's layers, queried over the wire like any other servant.
    let (coord_surface, coord_ref) =
        Introspection::install(&coordinator).expect("install coordinator surface");
    {
        let group = Arc::clone(&group);
        coord_surface.register("wal", move || group.introspect());
        let detector = detector.clone();
        coord_surface.register("detector", move || detector.introspect());
        let journal = journal.clone();
        coord_surface.register("journal", move || {
            journal.events().iter().map(|e| format!("{e}\n")).collect()
        });
        let recorder = recorder.clone();
        coord_surface.register("recorder", move || {
            recorder.tail(8).iter().map(|e| format!("{}\n", e.render())).collect()
        });
    }
    let (store_surface, store_ref) =
        Introspection::install(&store_node).expect("install store surface");
    {
        let res = Arc::clone(&res_store);
        store_surface.register("resource", move || res.introspect());
        let dedup = Arc::clone(&dedup);
        store_surface.register("dedup", move || dedup.introspect());
    }
    let (witness_surface, witness_ref) =
        Introspection::install(&witness_node).expect("install witness surface");
    {
        let res = Arc::clone(&res_witness);
        witness_surface.register("resource", move || res.introspect());
    }

    println!("## cluster introspection (queried over the wire)");
    let mut table = String::new();
    for object in [&coord_ref, &store_ref, &witness_ref] {
        let reply = orb.invoke(object, Request::new("snapshot")).expect("snapshot");
        table.push_str(reply.result.as_str().expect("snapshot renders as a string"));
    }
    print!("{table}");

    // Critical-path attribution over the commit span: phases must
    // partition the root duration exactly on the virtual clock.
    let path = telemetry
        .span_tree()
        .critical_path()
        .expect("the commit produced a span tree");
    assert!(path.is_exact(), "attribution must partition the root span exactly");
    let attribution = path.to_json();
    println!("## critical-path attribution");
    println!("{attribution}");

    println!("## vote-latency quantiles");
    let votes = telemetry
        .metrics()
        .histogram("twopc_vote_latency_seconds")
        .expect("vote latencies were observed");
    for q in [0.5, 0.9, 0.99] {
        let latency = votes.quantile(q).expect("non-empty histogram");
        println!("p{:02}: {:.0}us", (q * 100.0) as u32, latency.as_secs_f64() * 1e6);
    }

    let table_path = std::env::var("INTROSPECT_SNAPSHOT")
        .unwrap_or_else(|_| "target/introspection.txt".to_owned());
    let json_path = std::env::var("INTROSPECT_ATTRIBUTION")
        .unwrap_or_else(|_| "target/critical_path.json".to_owned());
    match std::fs::write(&table_path, &table) {
        Ok(()) => println!("# cluster table written to {table_path}"),
        Err(e) => println!("# cluster table NOT written ({table_path}: {e})"),
    }
    match std::fs::write(&json_path, &attribution) {
        Ok(()) => println!("# attribution written to {json_path}"),
        Err(e) => println!("# attribution NOT written ({json_path}: {e})"),
    }
}
