//! Figure-regeneration harness: prints, for every quantifiable experiment
//! in DESIGN.md's index, the series whose *shape* the paper claims.
//! `EXPERIMENTS.md` records this output next to the paper's qualitative
//! claims.
//!
//! Run with: `cargo run -q -p bench --bin figures --release`

use std::time::Instant;

fn time<R>(f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

fn main() {
    println!("# Figure-regeneration harness");
    println!("# (virtual-time metrics are deterministic; wall-clock ones vary by host)\n");

    // ---------------- F1: fig. 1 — lock hold & competitor throughput ----
    println!("## F1 (fig. 1): activity-chain vs monolithic transaction");
    println!("{:>6} {:>22} {:>22} {:>14} {:>14}",
        "steps", "hold(chained)", "hold(monolithic)", "conf(chain)", "conf(mono)");
    for steps in [1usize, 2, 4, 8, 16, 32] {
        let chained = bench::fig1_booking(steps, true);
        let mono = bench::fig1_booking(steps, false);
        println!(
            "{:>6} {:>20}s {:>20}s {:>14} {:>14}",
            steps,
            chained.mean_hold.as_secs(),
            mono.mean_hold.as_secs(),
            chained.competitor_conflicts,
            mono.competitor_conflicts,
        );
    }
    println!("# shape: chained hold stays ~constant; monolithic grows ~linearly with steps,");
    println!("#        so competitor conflicts grow ~linearly too.\n");

    // ---------------- F2: fig. 2 — compensation sweep cost ---------------
    println!("## F2 (fig. 2): compensation path, failure at the last step");
    println!("{:>6} {:>14} {:>14}", "steps", "compensated", "wall µs");
    for steps in [2usize, 4, 8, 16, 32] {
        let (compensated, elapsed) = time(|| bench::fig2_compensation(steps));
        println!("{:>6} {:>14} {:>14}", steps, compensated, elapsed.as_micros());
    }
    println!("# shape: compensations = steps - 1; cost linear in steps.\n");

    // ---------------- F5: fig. 5 — dispatch fan-out ----------------------
    println!("## F5 (fig. 5): coordinator dispatch vs number of actions");
    println!("{:>8} {:>12} {:>16}", "actions", "wall µs", "µs/action");
    for actions in [1usize, 8, 64, 256, 1024] {
        let (responses, elapsed) = time(|| bench::fig5_dispatch(actions));
        assert_eq!(responses as usize, actions);
        println!(
            "{:>8} {:>12} {:>16.3}",
            actions,
            elapsed.as_micros(),
            elapsed.as_micros() as f64 / actions as f64
        );
    }
    println!("# shape: linear in actions; per-action cost flat (broadcast loop).\n");

    // ---------------- F8: fig. 8 — signal-2PC vs native OTS -------------
    println!("## F8 (fig. 8): two-phase commit, signal framework vs native OTS");
    println!("{:>13} {:>16} {:>16} {:>8}", "participants", "signal µs", "native µs", "ratio");
    for participants in [2usize, 4, 8, 16, 32, 64] {
        // Average over a few runs to steady the small numbers.
        const RUNS: u32 = 20;
        let (_, signal_t) = time(|| {
            for _ in 0..RUNS {
                assert!(bench::fig8_signal_2pc(participants));
            }
        });
        let (_, native_t) = time(|| {
            for _ in 0..RUNS {
                assert!(bench::fig8_native_2pc(participants));
            }
        });
        let s = signal_t.as_micros() as f64 / f64::from(RUNS);
        let n = native_t.as_micros() as f64 / f64::from(RUNS);
        println!("{:>13} {:>16.1} {:>16.1} {:>8.2}", participants, s, n, s / n.max(0.001));
    }
    println!("# shape: both linear in participants; the framework costs a small constant");
    println!("#        factor over the hardwired coordinator (the price of generality).\n");

    // ---------------- F10: fig. 10 — workflow makespan -------------------
    println!("## F10 (fig. 10): workflow engine, width x depth sweeps");
    println!("{:>7} {:>7} {:>10} {:>14} {:>14}", "width", "depth", "tasks", "seq µs", "par µs");
    for (width, depth) in [(1usize, 8usize), (2, 8), (4, 8), (8, 8), (8, 1), (8, 2), (8, 4)] {
        let (done_seq, seq) = time(|| bench::fig10_workflow(width, depth, false));
        let (done_par, par) = time(|| bench::fig10_workflow(width, depth, true));
        assert_eq!(done_seq, width * depth);
        assert_eq!(done_par, width * depth);
        println!(
            "{:>7} {:>7} {:>10} {:>14} {:>14}",
            width,
            depth,
            width * depth,
            seq.as_micros(),
            par.as_micros()
        );
    }
    println!("# shape: cost grows with total tasks; depth costs serial rounds, width is");
    println!("#        amortised by the parallel scheduler.\n");

    // ---------------- F11/F12: BTP atoms & cohesions ---------------------
    println!("## F11/F12 (figs. 11-12): BTP termination");
    println!("{:>8} {:>16} {:>18}", "size", "atom µs", "cohesion µs");
    for size in [2usize, 4, 8, 16, 32] {
        let (_, atom_t) = time(|| assert!(bench::fig11_atom(size)));
        let (confirmed, cohesion_t) = time(|| bench::fig11_cohesion(size));
        assert_eq!(confirmed, size / 2);
        println!(
            "{:>8} {:>16} {:>18}",
            size,
            atom_t.as_micros(),
            cohesion_t.as_micros()
        );
    }
    println!("# shape: both linear; a cohesion of n atoms ~ n independent 2-signal atoms");
    println!("#        plus selection overhead.\n");

    // ---------------- X1: LRUOW vs strict locking ------------------------
    println!("## X1 (sec 4.3): LRUOW rehearsal/perform vs strict 2PL, 2000 increments");
    println!("{:>15} {:>12} {:>14} {:>14} {:>14}",
        "conflict every", "lruow µs", "lruow retries", "locking µs", "lock conflicts");
    for conflict_every in [0usize, 100, 20, 5, 2] {
        let (lruow, lruow_t) = time(|| bench::lruow_counter(2000, conflict_every));
        let (lock_conflicts, locking_t) = time(|| bench::locking_counter(2000, conflict_every));
        println!(
            "{:>15} {:>12} {:>14} {:>14} {:>14}",
            if conflict_every == 0 { "never".to_string() } else { conflict_every.to_string() },
            lruow_t.as_micros(),
            lruow.1,
            locking_t.as_micros(),
            lock_conflicts
        );
    }
    println!("# shape: at low conflict rates LRUOW ~ lock-free and cheap; as conflicts rise");
    println!("#        its retries grow, converging toward the locking baseline's cost.\n");

    // ---------------- X2: recovery replay --------------------------------
    println!("## X2 (sec 3.4): activity-log replay time vs log size");
    println!("{:>12} {:>12} {:>16}", "activities", "wall µs", "µs/activity");
    for records in [10usize, 100, 1000, 5000] {
        let (recovered, elapsed) = time(|| bench::recovery_replay(records));
        assert_eq!(recovered, records);
        println!(
            "{:>12} {:>12} {:>16.2}",
            records,
            elapsed.as_micros(),
            elapsed.as_micros() as f64 / records as f64
        );
    }
    println!("# shape: linear in log size.\n");

    // ---------------- Ablation: framework dispatch overhead --------------
    println!("## Ablation: checked coordinator loop vs direct calls (1024 actions, 100 rounds)");
    let actions = bench::trivial_actions(1024);
    let (_, direct) = time(|| {
        for _ in 0..100 {
            assert_eq!(bench::direct_dispatch(&actions), 1024);
        }
    });
    let (_, framed) = time(|| {
        for _ in 0..100 {
            assert_eq!(bench::fig5_dispatch(1024), 1024);
        }
    });
    println!(
        "direct {:>10} µs   framework {:>10} µs   overhead x{:.2}",
        direct.as_micros(),
        framed.as_micros(),
        framed.as_micros() as f64 / direct.as_micros().max(1) as f64
    );
    println!("# shape: the coordinator's state machine + registration snapshotting costs a");
    println!("#        small multiple of a bare function-call loop.\n");

    // ---------------- X8: interposition economics -------------------------
    println!("## X8: interposition — superior-side network messages per protocol run");
    println!("{:>13} {:>14} {:>18}", "participants", "flat msgs", "interposed msgs");
    for participants in [4usize, 8, 16] {
        let flat = bench::interposition_messages(participants, false);
        let interposed = bench::interposition_messages(participants, true);
        println!("{:>13} {:>14} {:>18}", participants, flat, interposed);
    }
    println!("# shape: flat grows linearly with participants; interposed is constant");
    println!("#        (one relay per node), independent of local fan-out.");
}
