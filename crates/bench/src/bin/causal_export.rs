//! Causal merge-plane export harness (DESIGN.md §16): run one paced 2PC
//! commit across a three-node simulated cluster with the Lamport
//! interceptor pair installed, fold every node's flight-recorder log into
//! the global happens-before DAG, verify it clean, and export the merged
//! history as Perfetto/Chrome-trace JSON — one track per node, a flow
//! arrow for every send→receive wire edge, virtual-clock timestamps.
//!
//! Everything is deterministic: the harness runs the cluster **twice**
//! and asserts the exported JSON is byte-identical, then self-checks the
//! export against [`telemetry::check_perfetto_schema`].
//!
//! Writes the trace to `CAUSAL_TRACE` (default
//! `target/causal_trace.perfetto.json`) — the CI causal-export job
//! archives it; load it in `ui.perfetto.dev` to walk the commit.
//!
//! Run with: `cargo run -q -p bench --bin causal_export --release`

use std::sync::Arc;
use std::time::Duration;

use orb::{Orb, Request, SimClock, Value};
use ots::{ProtocolJournal, TwoPcEvent, VoteKind};

const PACE: Duration = Duration::from_micros(200);
const PARTICIPANTS: [&str; 2] = ["store", "witness"];

/// One paced commit over the wire; returns the Perfetto export, the merge
/// fingerprint, and the number of matched message edges.
fn run_once() -> (String, u64, usize) {
    let clock = SimClock::new();
    let orb = Orb::builder().clock(clock.clone()).build();
    let coordinator = orb.add_node("coordinator").expect("coordinator node");

    let plane = telemetry::CausalityPlane::new();
    let coord_recorder = telemetry::FlightRecorder::with_time(
        "coordinator",
        telemetry::DEFAULT_RECORDER_CAPACITY,
        Arc::new(clock.clone()),
    );
    plane.register(&coord_recorder);
    let journal = ProtocolJournal::new();
    journal.set_recorder(coord_recorder.clone());

    let mut participants = Vec::new();
    for name in PARTICIPANTS {
        let node = orb.add_node(name).expect("participant node");
        let recorder = telemetry::FlightRecorder::with_time(
            name,
            telemetry::DEFAULT_RECORDER_CAPACITY,
            Arc::new(clock.clone()),
        );
        plane.register(&recorder);
        let object = node
            .activate("Resource", |req: &Request| {
                Ok(match req.operation() {
                    "prepare" => Value::from("commit"),
                    _ => Value::from("ack"),
                })
            })
            .expect("activate participant");
        participants.push((name, object));
    }
    orb.install_causality(plane.clone());

    // Phase one: solicit both votes over the wire, paced on the virtual
    // clock so the Perfetto slices spread out visibly.
    for (name, object) in &participants {
        journal.record(TwoPcEvent::PrepareSent { participant: (*name).into() });
        clock.advance(PACE);
        let reply = coordinator.invoke(object, Request::new("prepare")).expect("prepare");
        assert_eq!(reply.result.as_str(), Some("commit"));
        journal.record(TwoPcEvent::VoteRecorded {
            participant: (*name).into(),
            vote: VoteKind::Commit,
        });
    }

    // Decision point, then phase two.
    clock.advance(PACE);
    journal.record(TwoPcEvent::DecisionForced { commit: true });
    for (name, object) in &participants {
        clock.advance(PACE);
        coordinator.invoke(object, Request::new("outcome")).expect("outcome");
        journal.record(TwoPcEvent::OutcomeDelivered {
            participant: (*name).into(),
            commit: true,
            ok: true,
        });
        journal.record(TwoPcEvent::Forgotten { participant: (*name).into() });
    }
    clock.advance(PACE);
    journal.record(TwoPcEvent::Completed { committed: true });

    let dag = plane.merge().build();
    let violations = dag.verify();
    assert!(violations.is_empty(), "fault-free commit must merge clean: {violations:?}");
    (dag.to_perfetto(), dag.fingerprint(), dag.message_edges().len())
}

fn main() {
    let (trace, fingerprint, edges) = run_once();
    let (second, second_fingerprint, _) = run_once();
    assert_eq!(trace, second, "export must be byte-identical across pinned runs");
    assert_eq!(fingerprint, second_fingerprint, "merge fingerprint must be stable");
    telemetry::check_perfetto_schema(&trace).expect("export passes the schema check");

    println!("## causal export: paced 3-node commit, merged happens-before DAG");
    println!("merge fingerprint: {fingerprint:#018x}");
    println!("matched send->receive edges: {edges}");
    println!("perfetto export: {} lines / {} bytes", trace.lines().count(), trace.len());

    let path = std::env::var("CAUSAL_TRACE")
        .unwrap_or_else(|_| "target/causal_trace.perfetto.json".to_owned());
    match std::fs::write(&path, &trace) {
        Ok(()) => println!("# trace written to {path}"),
        Err(e) => println!("# trace NOT written ({path}: {e})"),
    }
}
