//! Shared workload builders for the benchmark suite and the
//! figure-regeneration harness (`cargo run -p bench --bin figures`).
//!
//! Each function here implements one experiment's workload from DESIGN.md's
//! per-experiment index, so the Criterion benches and the printed-table
//! harness measure exactly the same code.

use std::sync::Arc;
use std::time::Duration;

use activity_service::{
    ActionServant, Activity, ActivityService, CompletionStatus, FnAction, Outcome,
    RemoteActionProxy, Signal,
};
use orb::{FailureDetector, NetworkConfig, Orb, RetryPolicy, SimClock, Value};
use ots::{Resource, TransactionFactory, TransactionalKv, TxError, Vote};
use recovery_log::{MemWal, Wal};
use tx_models::{LruowStore, ResourceAction, Saga, TwoPhaseCommitSignalSet, TWO_PC_SET};
use wfengine::{TaskInput, TaskRegistry, TaskResult, WorkflowEngine, WorkflowGraph};

/// Virtual time one booking step takes in the fig. 1 scenario.
pub const STEP_TIME: Duration = Duration::from_secs(60);

/// Outcome of one fig. 1 run: how the locking behaved.
#[derive(Debug, Clone, Copy)]
pub struct Fig1Sample {
    /// Virtual mean lock-hold time across released locks.
    pub mean_hold: Duration,
    /// Competitor attempts (1/s of virtual time on the first resource)
    /// that hit a lock conflict.
    pub competitor_conflicts: u64,
    /// Competitor attempts that succeeded.
    pub competitor_successes: u64,
}

/// Fig. 1 workload: `steps` sequential booking steps, each writing its own
/// key and taking [`STEP_TIME`] of virtual time. In `chained` mode each
/// step is its own top-level transaction inside its own activity (the
/// paper's structure); otherwise one monolithic transaction holds
/// everything to the end. A competitor probes the *first* step's key once
/// per virtual second.
pub fn fig1_booking(steps: usize, chained: bool) -> Fig1Sample {
    let clock = SimClock::new();
    let factory = TransactionFactory::new().with_clock(clock.clone());
    let store = Arc::new(TransactionalKv::with_clock("bookings", clock.clone()));
    let mut conflicts = 0;
    let mut successes = 0;

    let mut probe = |store: &Arc<TransactionalKv>| {
        let tx = factory.create().expect("create probe tx");
        store.enlist(&tx).expect("enlist probe");
        match store.write(tx.id(), "step-0", Value::from("probe")) {
            Ok(()) => {
                successes += 1;
                // Don't actually keep the slot: undo immediately.
                tx.terminator().rollback().expect("probe rollback");
            }
            Err(TxError::LockConflict { .. }) => {
                conflicts += 1;
                tx.terminator().rollback().expect("probe rollback");
            }
            Err(e) => panic!("unexpected probe failure: {e}"),
        }
    };

    if chained {
        for step in 0..steps {
            let tx = factory.create().expect("create tx");
            store.enlist(&tx).expect("enlist");
            store
                .write(tx.id(), &format!("step-{step}"), Value::from(step as i64))
                .expect("write");
            for _ in 0..STEP_TIME.as_secs() {
                clock.advance(Duration::from_secs(1));
                probe(&store);
            }
            tx.terminator().commit().expect("commit");
        }
    } else {
        let tx = factory.create().expect("create tx");
        store.enlist(&tx).expect("enlist");
        for step in 0..steps {
            store
                .write(tx.id(), &format!("step-{step}"), Value::from(step as i64))
                .expect("write");
            for _ in 0..STEP_TIME.as_secs() {
                clock.advance(Duration::from_secs(1));
                probe(&store);
            }
        }
        tx.terminator().commit().expect("commit");
    }

    let stats = store.lock_stats();
    Fig1Sample {
        mean_hold: stats.total_hold / stats.released.max(1) as u32,
        competitor_conflicts: conflicts,
        competitor_successes: successes,
    }
}

/// Fig. 2 workload: a saga of `steps` booking steps where the last fails,
/// driving `steps - 1` compensations. Returns the number of committed
/// steps (all of which get compensated).
pub fn fig2_compensation(steps: usize) -> usize {
    let service = ActivityService::new();
    let mut saga = Saga::new("bench-saga");
    for i in 0..steps.saturating_sub(1) {
        saga = saga.step(format!("t{i}"), || Ok(()), || Ok(()));
    }
    saga = saga.step("failing", || Err("boom".into()), || Ok(()));
    let report = saga.run(&service).expect("saga run");
    report.committed.len()
}

/// Fig. 5 workload: one activity broadcasting one signal to `actions`
/// registered actions; returns the number of responses collated.
pub fn fig5_dispatch(actions: usize) -> u64 {
    let activity = Activity::new_root("dispatch", SimClock::new());
    activity
        .coordinator()
        .add_signal_set(Box::new(activity_service::BroadcastSignalSet::new(
            "Bench",
            "ping",
            Value::Null,
        )))
        .expect("add set");
    for i in 0..actions {
        activity.coordinator().register_action(
            "Bench",
            Arc::new(FnAction::new(format!("a{i}"), |_s: &Signal| Ok(Outcome::done()))) as _,
        );
    }
    let outcome = activity.signal("Bench").expect("signal");
    outcome.data().as_u64().unwrap_or(0)
}

/// Fig. 5 (parallel dispatch) workload: one broadcast to `actions`
/// registered actions, each simulating a remote invocation that takes
/// `work_us` microseconds of latency, fanned out across `workers`
/// (`workers == 1` is the exact legacy serial loop). Returns the number
/// of responses collated.
pub fn fig5_dispatch_configured(actions: usize, workers: usize, work_us: u64) -> u64 {
    let activity = Activity::new_root("dispatch", SimClock::new());
    activity
        .coordinator()
        .set_dispatch_config(activity_service::DispatchConfig::with_workers(workers));
    activity
        .coordinator()
        .add_signal_set(Box::new(activity_service::BroadcastSignalSet::new(
            "Bench",
            "ping",
            Value::Null,
        )))
        .expect("add set");
    for i in 0..actions {
        activity.coordinator().register_action(
            "Bench",
            Arc::new(FnAction::new(format!("a{i}"), move |_s: &Signal| {
                if work_us > 0 {
                    std::thread::sleep(Duration::from_micros(work_us));
                }
                Ok(Outcome::done())
            })) as _,
        );
    }
    let outcome = activity.signal("Bench").expect("signal");
    outcome.data().as_u64().unwrap_or(0)
}

/// Trace-gate micro-workload: the fig. 5 broadcast over trivial actions
/// with tracing either enabled or left off, to measure the cost of the
/// coordinator's `record()` path (an atomic-load fast path when off).
pub fn fig5_dispatch_traced(actions: usize, traced: bool) -> u64 {
    let activity = Activity::new_root("dispatch", SimClock::new());
    activity
        .coordinator()
        .set_dispatch_config(activity_service::DispatchConfig::serial());
    if traced {
        activity.coordinator().set_trace(activity_service::TraceLog::new());
    }
    activity
        .coordinator()
        .add_signal_set(Box::new(activity_service::BroadcastSignalSet::new(
            "Bench",
            "ping",
            Value::Null,
        )))
        .expect("add set");
    for i in 0..actions {
        activity.coordinator().register_action(
            "Bench",
            Arc::new(FnAction::new(format!("a{i}"), |_s: &Signal| Ok(Outcome::done()))) as _,
        );
    }
    let outcome = activity.signal("Bench").expect("signal");
    outcome.data().as_u64().unwrap_or(0)
}

/// Telemetry-gate micro-workload (DESIGN.md §11): the fig. 5 broadcast over
/// trivial actions with a *disabled* span recorder either attached to the
/// coordinator or absent. Every signal dispatch still reaches the
/// instrumentation sites, but `Telemetry::is_enabled` short-circuits them
/// to an atomic load — the delta is the whole disabled-path cost.
pub fn fig5_dispatch_telemetry(actions: usize, instrumented: bool) -> u64 {
    let activity = Activity::new_root("dispatch", SimClock::new());
    activity
        .coordinator()
        .set_dispatch_config(activity_service::DispatchConfig::serial());
    if instrumented {
        activity.coordinator().set_telemetry(telemetry::Telemetry::disabled());
    }
    activity
        .coordinator()
        .add_signal_set(Box::new(activity_service::BroadcastSignalSet::new(
            "Bench",
            "ping",
            Value::Null,
        )))
        .expect("add set");
    for i in 0..actions {
        activity.coordinator().register_action(
            "Bench",
            Arc::new(FnAction::new(format!("a{i}"), |_s: &Signal| Ok(Outcome::done()))) as _,
        );
    }
    let outcome = activity.signal("Bench").expect("signal");
    outcome.data().as_u64().unwrap_or(0)
}

/// Telemetry-gate 2PC workload (DESIGN.md §11): a native-OTS commit over
/// `participants` healthy stores, with a disabled recorder either attached
/// to the factory (so every coordinator it mints carries the gate through
/// both protocol phases) or absent. All spans are skipped at the
/// `is_enabled` check; the delta is pure disabled-path bookkeeping.
pub fn two_phase_with_telemetry(participants: usize, instrumented: bool) -> bool {
    let mut factory = TransactionFactory::new();
    if instrumented {
        factory = factory.with_telemetry(telemetry::Telemetry::disabled());
    }
    let control = factory.create().expect("create");
    for i in 0..participants {
        let store = Arc::new(TransactionalKv::new(format!("s{i}")));
        store.enlist(&control).expect("enlist");
        store.write(control.id(), "k", Value::from(i as i64)).expect("write");
    }
    control.terminator().commit().is_ok()
}

/// Flight-recorder gate workload (DESIGN.md §15): the same native-OTS
/// commit as [`two_phase_with_telemetry`], with a journal and failpoint set
/// on the hot path and a *disabled* [`telemetry::FlightRecorder`] either
/// attached to both or absent. Every journal record and failpoint passage
/// still reaches the mirror, but the closed gate collapses it to one
/// atomic load — the delta is the recorder's whole disabled-path cost.
/// The caller builds the recorder once and passes it in: constructing the
/// ring (one bounded allocation) is setup cost, not per-site cost, and
/// attaching a shared handle is one `Arc` bump per mirror.
pub fn two_phase_with_recorder(
    participants: usize,
    recorder: Option<&telemetry::FlightRecorder>,
) -> bool {
    let journal = ots::ProtocolJournal::new();
    let failpoints = recovery_log::FailpointSet::new();
    if let Some(recorder) = recorder {
        journal.set_recorder(recorder.clone());
        failpoints.set_recorder(recorder.clone());
    }
    let factory = TransactionFactory::new()
        .with_journal(journal)
        .with_failpoints(failpoints);
    let control = factory.create().expect("create");
    for i in 0..participants {
        let store = Arc::new(TransactionalKv::new(format!("s{i}")));
        store.enlist(&control).expect("enlist");
        store.write(control.id(), "k", Value::from(i as i64)).expect("write");
    }
    control.terminator().commit().is_ok()
}

/// A [`Resource`] decorator that advances the virtual clock on every
/// protocol call, so commit spans acquire real (virtual) durations — the
/// substrate the critical-path attribution and latency quantiles in the
/// `introspect` binary are computed from.
pub struct PacedResource {
    inner: Arc<dyn Resource>,
    clock: SimClock,
    pace: Duration,
}

impl PacedResource {
    /// Wrap `inner`, advancing `clock` by `pace` before each protocol call.
    pub fn new(inner: Arc<dyn Resource>, clock: SimClock, pace: Duration) -> Self {
        PacedResource { inner, clock, pace }
    }
}

impl Resource for PacedResource {
    fn prepare(&self, tx: &ots::TxId) -> Result<Vote, TxError> {
        self.clock.advance(self.pace);
        self.inner.prepare(tx)
    }

    fn commit(&self, tx: &ots::TxId) -> Result<(), TxError> {
        self.clock.advance(self.pace);
        self.inner.commit(tx)
    }

    fn rollback(&self, tx: &ots::TxId) -> Result<(), TxError> {
        self.clock.advance(self.pace);
        self.inner.rollback(tx)
    }

    fn forget(&self, tx: &ots::TxId) {
        self.inner.forget(tx);
    }

    fn resource_name(&self) -> &str {
        self.inner.resource_name()
    }
}

/// Run the two §11 workloads once with an *enabled* recorder and return
/// the populated registry's JSON snapshot — the artifact the CI telemetry
/// job archives next to the overhead table.
pub fn instrumented_metrics_snapshot() -> String {
    let tel = telemetry::Telemetry::new();

    let activity = Activity::new_root("dispatch", SimClock::new());
    activity
        .coordinator()
        .set_dispatch_config(activity_service::DispatchConfig::serial());
    activity.coordinator().set_telemetry(tel.clone());
    activity
        .coordinator()
        .add_signal_set(Box::new(activity_service::BroadcastSignalSet::new(
            "Bench",
            "ping",
            Value::Null,
        )))
        .expect("add set");
    for i in 0..8 {
        activity.coordinator().register_action(
            "Bench",
            Arc::new(FnAction::new(format!("a{i}"), |_s: &Signal| Ok(Outcome::done()))) as _,
        );
    }
    activity.signal("Bench").expect("signal");

    let factory = TransactionFactory::new().with_telemetry(tel.clone());
    let control = factory.create().expect("create");
    for i in 0..8 {
        let store = Arc::new(TransactionalKv::new(format!("s{i}")));
        store.enlist(&control).expect("enlist");
        store.write(control.id(), "k", Value::from(i as i64)).expect("write");
    }
    control.terminator().commit().expect("commit");

    tel.metrics().snapshot_json()
}

/// Reliability-layer overhead workload (the fig. 5 broadcast *over the
/// wire*): one activity signalling `actions` remote actions behind the
/// simulated ORB, with the `orb::retry` policy layer either enabled
/// (8 attempts, deterministic backoff — never exercised on this fault-free
/// path) or the legacy immediate at-least-once loop. The delta between the
/// two isolates the per-delivery cost of policy evaluation, delivery-id
/// stamping and deadline checks. Returns responses collated.
pub fn remote_dispatch_with_retry(actions: usize, with_policy: bool) -> u64 {
    let orb = Orb::builder()
        .network(NetworkConfig::lossy(0.0, 0.0, 0x0BE7_CAFE))
        .clock(SimClock::new())
        .retry_budget(8)
        .build();
    orb.add_node("coordinator").expect("coordinator node");
    let worker = orb.add_node("worker").expect("worker node");
    let activity = Activity::new_root("dispatch", SimClock::new());
    activity
        .coordinator()
        .add_signal_set(Box::new(activity_service::BroadcastSignalSet::new(
            "Bench",
            "ping",
            Value::Null,
        )))
        .expect("add set");
    for i in 0..actions {
        let servant: Arc<dyn activity_service::Action> =
            Arc::new(FnAction::new(format!("a{i}"), |_s: &Signal| Ok(Outcome::done())));
        let obj = worker
            .activate("Action", ActionServant::new(servant))
            .expect("activate action");
        let mut proxy = RemoteActionProxy::new(format!("r{i}"), orb.clone(), "coordinator", obj);
        if with_policy {
            proxy = proxy
                .with_policy(RetryPolicy::new(8).with_base_backoff(Duration::from_millis(1)));
        }
        activity.coordinator().register_action("Bench", Arc::new(proxy) as _);
    }
    let outcome = activity.signal("Bench").expect("signal");
    outcome.data().as_u64().unwrap_or(0)
}

/// Detector-consult overhead workload (fig. 8 fan-out): a native-OTS 2PC
/// over `participants` healthy transactional stores, with the participant
/// failure detector either consulted (one `should_skip` + one
/// `record_success` per resource per phase) or absent. All participants stay
/// healthy, so the delta is pure bookkeeping cost on the commit fast path.
pub fn two_phase_with_detector(participants: usize, with_detector: bool) -> bool {
    let mut factory = TransactionFactory::new();
    if with_detector {
        factory = factory.with_detector(FailureDetector::new(SimClock::new()));
    }
    let control = factory.create().expect("create");
    for i in 0..participants {
        let store = Arc::new(TransactionalKv::new(format!("s{i}")));
        store.enlist(&control).expect("enlist");
        store.write(control.id(), "k", Value::from(i as i64)).expect("write");
    }
    control.terminator().commit().is_ok()
}

/// A commit-voting resource whose prepare/commit/rollback each cost
/// `work_us` microseconds of simulated remote latency.
pub fn slow_resource(name: &str, work_us: u64) -> Arc<dyn Resource> {
    struct Slow(String, u64);
    impl Slow {
        fn work(&self) {
            if self.1 > 0 {
                std::thread::sleep(Duration::from_micros(self.1));
            }
        }
    }
    impl Resource for Slow {
        fn prepare(&self, _tx: &ots::TxId) -> Result<Vote, TxError> {
            self.work();
            Ok(Vote::Commit)
        }
        fn commit(&self, _tx: &ots::TxId) -> Result<(), TxError> {
            self.work();
            Ok(())
        }
        fn rollback(&self, _tx: &ots::TxId) -> Result<(), TxError> {
            self.work();
            Ok(())
        }
        fn resource_name(&self) -> &str {
            &self.0
        }
    }
    Arc::new(Slow(name.to_owned(), work_us))
}

/// Fig. 8 (batched fan-out) workload: a native-OTS 2PC over
/// `participants` resources whose prepare/commit each take `work_us`
/// microseconds, with phase fan-out across `workers`.
pub fn fig8_2pc_configured(participants: usize, workers: usize, work_us: u64) -> bool {
    let factory =
        TransactionFactory::new().with_dispatch(ots::DispatchConfig::with_workers(workers));
    let control = factory.create().expect("create");
    for i in 0..participants {
        control
            .coordinator()
            .register_resource(slow_resource(&format!("r{i}"), work_us))
            .expect("register");
    }
    control.terminator().commit().is_ok()
}

/// Fig. 8 workload, signal-framework flavour: a 2PC over `participants`
/// transactional stores driven by the TwoPhaseCommitSignalSet.
pub fn fig8_signal_2pc(participants: usize) -> bool {
    let activity = Activity::new_root("2pc", SimClock::new());
    activity
        .coordinator()
        .add_signal_set(Box::new(TwoPhaseCommitSignalSet::new()))
        .expect("add set");
    activity.set_completion_signal_set(TWO_PC_SET);
    let tx = ots::TxId::top_level(1);
    for i in 0..participants {
        let store = Arc::new(TransactionalKv::new(format!("s{i}")));
        store.write(&tx, "k", Value::from(i as i64)).expect("write");
        activity.coordinator().register_action(
            TWO_PC_SET,
            Arc::new(ResourceAction::new(
                format!("r{i}"),
                tx.clone(),
                store as Arc<dyn Resource>,
            )) as _,
        );
    }
    let outcome = activity.complete().expect("complete");
    outcome.name() == "committed"
}

/// Fig. 8 baseline: the same commit through the native OTS coordinator.
pub fn fig8_native_2pc(participants: usize) -> bool {
    let factory = TransactionFactory::new();
    let control = factory.create().expect("create");
    for i in 0..participants {
        let store = Arc::new(TransactionalKv::new(format!("s{i}")));
        store.enlist(&control).expect("enlist");
        store.write(control.id(), "k", Value::from(i as i64)).expect("write");
    }
    control.terminator().commit().is_ok()
}

/// A `width × depth` layered workflow: `depth` stages of `width` parallel
/// tasks, each stage fully dependent on the previous.
pub fn layered_workflow(width: usize, depth: usize) -> (WorkflowGraph, TaskRegistry) {
    let mut graph = WorkflowGraph::new();
    let mut registry = TaskRegistry::new();
    for d in 0..depth {
        for w in 0..width {
            let name = format!("t-{d}-{w}");
            graph.add_task(&name).expect("add task");
            registry.register(&name, |_i: &TaskInput| TaskResult::ok(Value::Null));
            if d > 0 {
                for upstream in 0..width {
                    graph
                        .add_dependency(&name, &format!("t-{}-{upstream}", d - 1))
                        .expect("dep");
                }
            }
        }
    }
    (graph, registry)
}

/// Fig. 10 workload: run the layered workflow; returns completed count.
pub fn fig10_workflow(width: usize, depth: usize, parallel: bool) -> usize {
    let (graph, registry) = layered_workflow(width, depth);
    let engine = WorkflowEngine::new(graph, registry).expect("engine");
    let service = ActivityService::new();
    let report = if parallel {
        engine.run_parallel(&service, "bench", Value::Null).expect("run")
    } else {
        engine.run(&service, "bench", Value::Null).expect("run")
    };
    report.completed.len()
}

/// Figs. 11/12 workload: one atom with `participants` reservations through
/// prepare + confirm.
pub fn fig11_atom(participants: usize) -> bool {
    let activity = Activity::new_root("atom", SimClock::new());
    let atom = btp::Atom::new("bench", activity).expect("atom");
    for i in 0..participants {
        atom.enroll(btp::Reservation::new(format!("p{i}")) as _).expect("enroll");
    }
    atom.prepare().expect("prepare");
    atom.confirm().is_ok()
}

/// Cohesion workload: `atoms` inferiors, one participant each; half end up
/// in the confirm-set.
pub fn fig11_cohesion(atoms: usize) -> usize {
    let activity = Activity::new_root("cohesion", SimClock::new());
    let cohesion = btp::Cohesion::new("bench", activity);
    let names: Vec<String> = (0..atoms).map(|i| format!("a{i}")).collect();
    for name in &names {
        let atom = cohesion.enroll_atom(name).expect("enroll atom");
        atom.enroll(btp::Reservation::new(format!("{name}-res")) as _).expect("enroll");
        cohesion.prepare(name).expect("prepare");
    }
    let confirm_set: Vec<&str> = names.iter().take(atoms / 2).map(String::as_str).collect();
    let report = cohesion.confirm(&confirm_set).expect("confirm");
    report.confirmed.len()
}

/// X1 workload: `ops` counter increments through LRUOW with an interloper
/// committing a conflicting write every `conflict_every` operations
/// (0 = never). Returns (successful first tries, retries needed).
pub fn lruow_counter(ops: usize, conflict_every: usize) -> (usize, usize) {
    let store = LruowStore::new("counter");
    store.write("n", Value::I64(0));
    let mut first_try = 0;
    let mut retries = 0;
    for i in 0..ops {
        let uow = store.begin_unit_of_work();
        let n = uow.read("n").unwrap().as_i64().unwrap();
        uow.write("n", Value::I64(n + 1));
        if conflict_every > 0 && i % conflict_every == 0 {
            // An interloper moves the key under the rehearsal.
            let v = store.read("n").unwrap().as_i64().unwrap();
            store.write("n", Value::I64(v));
        }
        match uow.perform() {
            Ok(()) => first_try += 1,
            Err(_) => {
                retries += 1;
                let retry = store.begin_unit_of_work();
                let n = retry.read("n").unwrap().as_i64().unwrap();
                retry.write("n", Value::I64(n + 1));
                retry.perform().expect("retry succeeds");
            }
        }
    }
    (first_try, retries)
}

/// X1 baseline: the same increments under strict locking
/// ([`TransactionalKv`]); an interloper holds the lock across every
/// `conflict_every`-th attempt, forcing a retry. Returns lock conflicts.
pub fn locking_counter(ops: usize, conflict_every: usize) -> usize {
    let factory = TransactionFactory::new();
    let store = Arc::new(TransactionalKv::new("counter"));
    let seed = factory.create().unwrap();
    store.enlist(&seed).unwrap();
    store.write(seed.id(), "n", Value::I64(0)).unwrap();
    seed.terminator().commit().unwrap();

    let mut conflicts = 0;
    for i in 0..ops {
        let interloper = if conflict_every > 0 && i % conflict_every == 0 {
            let t = factory.create().unwrap();
            store.enlist(&t).unwrap();
            store.write(t.id(), "n", Value::I64(-1)).unwrap();
            Some(t)
        } else {
            None
        };
        let mut interloper = interloper;
        loop {
            let t = factory.create().unwrap();
            store.enlist(&t).unwrap();
            match store.read(t.id(), "n") {
                Ok(v) => {
                    let n = v.unwrap().as_i64().unwrap();
                    store.write(t.id(), "n", Value::I64(n + 1)).unwrap();
                    t.terminator().commit().unwrap();
                    break;
                }
                Err(TxError::LockConflict { .. }) => {
                    conflicts += 1;
                    t.terminator().rollback().unwrap();
                    // The interloper finishes, releasing the lock.
                    if let Some(it) = interloper.take() {
                        it.terminator().rollback().unwrap();
                    }
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        if let Some(it) = interloper.take() {
            let _ = it.terminator().rollback();
        }
    }
    conflicts
}

/// X2 workload: build a log of `records` completed activities and replay
/// it. Returns the number of completed activities recovered.
pub fn recovery_replay(records: usize) -> usize {
    let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    {
        let service = ActivityService::builder().wal(Arc::clone(&wal)).build();
        for i in 0..records {
            let a = service.begin(format!("a{i}")).expect("begin");
            a.set_completion_status(CompletionStatus::Fail).expect("status");
            a.set_completion_status(CompletionStatus::Success).expect("status");
            service.complete().expect("complete");
        }
    }
    let recovered = activity_service::recover_activities(
        wal,
        &activity_service::SignalSetFactories::new(),
        &activity_service::ActionFactories::new(),
        SimClock::new(),
    )
    .expect("recover");
    recovered.completed.len()
}

/// Ablation: dispatch a signal to actions directly (what "no framework"
/// would cost), for comparison with the checked coordinator loop.
pub fn direct_dispatch(actions: &[Arc<dyn activity_service::Action>]) -> usize {
    let signal = Signal::new("ping", "Bench");
    let mut done = 0;
    for action in actions {
        if action.process_signal(&signal).map(|o| o.is_done()).unwrap_or(false) {
            done += 1;
        }
    }
    done
}

/// Build `n` trivial actions for the ablation benches.
pub fn trivial_actions(n: usize) -> Vec<Arc<dyn activity_service::Action>> {
    (0..n)
        .map(|i| {
            Arc::new(FnAction::new(format!("a{i}"), |_s: &Signal| Ok(Outcome::done())))
                as Arc<dyn activity_service::Action>
        })
        .collect()
}

/// X8 workload: one broadcast over `participants` actions on a remote
/// node, flat (one proxy per action) or interposed (one relay); returns
/// the network messages the run cost.
pub fn interposition_messages(participants: usize, interposed: bool) -> u64 {
    use activity_service::{interpose, ActionServant, RemoteActionProxy};
    let orb = orb::Orb::new();
    orb.add_node("superior").expect("node");
    let node = orb.add_node("org").expect("node");
    let activity = Activity::new_root("x8", SimClock::new());
    activity
        .coordinator()
        .add_signal_set(Box::new(activity_service::BroadcastSignalSet::new(
            "S",
            "go",
            Value::Null,
        )))
        .expect("set");
    if interposed {
        let relay =
            interpose(activity.coordinator(), "S", &orb, &node, "relay").expect("interpose");
        for action in trivial_actions(participants) {
            relay.register_local(action);
        }
    } else {
        for action in trivial_actions(participants) {
            let obj = node.activate("Action", ActionServant::new(action)).expect("activate");
            activity.coordinator().register_action(
                "S",
                Arc::new(RemoteActionProxy::new("p", orb.clone(), "superior", obj)) as _,
            );
        }
    }
    let before = orb.network().stats().sent;
    activity.signal("S").expect("signal");
    orb.network().stats().sent - before
}

/// A commit-voting no-op resource for protocol benches.
pub fn noop_resource(name: &str) -> Arc<dyn Resource> {
    struct Noop(String);
    impl Resource for Noop {
        fn prepare(&self, _tx: &ots::TxId) -> Result<Vote, TxError> {
            Ok(Vote::Commit)
        }
        fn commit(&self, _tx: &ots::TxId) -> Result<(), TxError> {
            Ok(())
        }
        fn rollback(&self, _tx: &ots::TxId) -> Result<(), TxError> {
            Ok(())
        }
        fn resource_name(&self) -> &str {
            &self.0
        }
    }
    Arc::new(Noop(name.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_chained_holds_less_and_conflicts_less() {
        let chained = fig1_booking(8, true);
        let mono = fig1_booking(8, false);
        assert!(chained.mean_hold < mono.mean_hold);
        assert!(chained.competitor_conflicts < mono.competitor_conflicts);
        assert!(chained.competitor_successes > mono.competitor_successes);
    }

    #[test]
    fn fig2_compensates_all_but_failures() {
        assert_eq!(fig2_compensation(5), 4);
    }

    #[test]
    fn fig5_reaches_everyone() {
        assert_eq!(fig5_dispatch(17), 17);
    }

    #[test]
    fn fig8_both_flavours_commit() {
        assert!(fig8_signal_2pc(4));
        assert!(fig8_native_2pc(4));
    }

    #[test]
    fn configured_workloads_agree_across_widths() {
        assert_eq!(fig5_dispatch_configured(9, 1, 0), 9);
        assert_eq!(fig5_dispatch_configured(9, 8, 0), 9);
        assert_eq!(fig5_dispatch_traced(7, true), 7);
        assert_eq!(fig5_dispatch_traced(7, false), 7);
        assert!(fig8_2pc_configured(6, 1, 0));
        assert!(fig8_2pc_configured(6, 8, 0));
    }

    #[test]
    fn retry_overhead_workloads_agree_across_modes() {
        assert_eq!(remote_dispatch_with_retry(5, false), 5);
        assert_eq!(remote_dispatch_with_retry(5, true), 5);
        assert!(two_phase_with_detector(4, false));
        assert!(two_phase_with_detector(4, true));
    }

    #[test]
    fn telemetry_overhead_workloads_agree_across_modes() {
        assert_eq!(fig5_dispatch_telemetry(5, false), 5);
        assert_eq!(fig5_dispatch_telemetry(5, true), 5);
        assert!(two_phase_with_telemetry(4, false));
        assert!(two_phase_with_telemetry(4, true));
    }

    #[test]
    fn fig10_completes_all_tasks() {
        assert_eq!(fig10_workflow(3, 4, false), 12);
        assert_eq!(fig10_workflow(3, 4, true), 12);
    }

    #[test]
    fn fig11_protocols_run() {
        assert!(fig11_atom(5));
        assert_eq!(fig11_cohesion(6), 3);
    }

    #[test]
    fn lruow_conflicts_force_retries() {
        let (_first, retries) = lruow_counter(100, 10);
        assert_eq!(retries, 10);
        let (first, retries) = lruow_counter(100, 0);
        assert_eq!((first, retries), (100, 0));
    }

    #[test]
    fn locking_counter_counts_conflicts() {
        assert_eq!(locking_counter(50, 0), 0);
        assert!(locking_counter(50, 5) > 0);
    }

    #[test]
    fn replay_roundtrips() {
        assert_eq!(recovery_replay(25), 25);
    }

    #[test]
    fn direct_dispatch_matches() {
        let actions = trivial_actions(9);
        assert_eq!(direct_dispatch(&actions), 9);
    }

    #[test]
    fn noop_resource_commits() {
        let r = noop_resource("x");
        assert_eq!(r.prepare(&ots::TxId::top_level(1)).unwrap(), Vote::Commit);
    }
}
