//! Per-node flight recorder: a bounded ring of causally-ordered protocol
//! events on the virtual clock.
//!
//! The span tree answers "what was the causal structure"; the recorder
//! answers "what did *this node* believe, in order, right before it
//! failed". Every layer mirrors its journal into the ring — span
//! open/close from [`crate::Telemetry`], `TraceLog`/`ProtocolJournal`/
//! `ActivityJournal` entries, failpoint hits, detector transitions,
//! partition open/heal, restarts — each stamped with a recorder-wide
//! sequence number and the virtual time it happened.
//!
//! Discipline matches the rest of the telemetry plane:
//!
//! - **Allocation-free when disabled.** [`FlightRecorder::record`] takes
//!   the detail as a closure; when the gate is closed the call is a single
//!   atomic load and the closure never runs — no formatting, no lock.
//! - **Bounded.** The ring holds at most `capacity` events; recording the
//!   `capacity + 1`-th evicts the oldest. Eviction is strictly
//!   oldest-first, so the surviving window is always a causally-contiguous
//!   suffix.
//! - **Deterministic.** Sequence numbers and virtual timestamps come from
//!   the simulation, so [`FlightRecorder::fingerprint`] is bit-identical
//!   across double runs of a pinned seed — harness oracle #11 checks
//!   exactly that, and [`FlightRecorder::dump`] is what the explorer
//!   staples to a shrunk reproducer.

use crate::causality::LamportClock;
use crate::TimeSource;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default ring capacity: generous enough that no sweep scenario wraps,
/// small enough that a wrapped node stays bounded.
pub const DEFAULT_RECORDER_CAPACITY: usize = 256;

/// Taxonomy of recorded events (DESIGN.md §15 table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordKind {
    /// A telemetry span opened (detail: span name).
    SpanOpen,
    /// A telemetry span closed (detail: span name).
    SpanClose,
    /// A coordinator `TraceLog` event (detail: the rendered trace line).
    Trace,
    /// An OTS `ProtocolJournal` event (2PC lifecycle).
    Protocol,
    /// An `ActivityJournal` event (activity begun/completed).
    Activity,
    /// A failpoint site was passed (detail: site, and whether it fired).
    Failpoint,
    /// A failure-detector state transition.
    Detector,
    /// A metric delta worth narrating (e.g. heuristic counters).
    Metric,
    /// A partition window opened.
    PartitionOpen,
    /// A partition healed.
    PartitionHeal,
    /// A participant was killed and rebuilt from its WAL.
    Restart,
    /// A message left this node (detail: wire token, operation, route).
    WireSend,
    /// A message arrived at this node (detail mirrors the send's).
    WireRecv,
}

impl RecordKind {
    /// Stable label used in renderings and fingerprints.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RecordKind::SpanOpen => "span-open",
            RecordKind::SpanClose => "span-close",
            RecordKind::Trace => "trace",
            RecordKind::Protocol => "protocol",
            RecordKind::Activity => "activity",
            RecordKind::Failpoint => "failpoint",
            RecordKind::Detector => "detector",
            RecordKind::Metric => "metric",
            RecordKind::PartitionOpen => "partition-open",
            RecordKind::PartitionHeal => "partition-heal",
            RecordKind::Restart => "restart",
            RecordKind::WireSend => "wire-send",
            RecordKind::WireRecv => "wire-recv",
        }
    }
}

impl fmt::Display for RecordKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One entry of the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedEvent {
    /// Recorder-wide sequence number (never reused; survives eviction, so
    /// a wrapped dump shows exactly how much history was lost).
    pub seq: u64,
    /// Virtual time of the event.
    pub at: Duration,
    /// Lamport stamp: every local record ticks the node's clock, wire
    /// receives observe the sender's stamp (§16 stamp discipline), so a
    /// merged multi-node log is a happens-before DAG.
    pub lamport: u64,
    /// The recording node — [`crate::CausalMerge`] folds logs from many
    /// nodes, so each event carries its origin.
    pub node: String,
    pub kind: RecordKind,
    pub detail: String,
}

impl RecordedEvent {
    /// The canonical one-line rendering fingerprints and dumps share.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "#{:<4} @{:>10}us L{:<5} {:<14} {}",
            self.seq,
            self.at.as_micros(),
            self.lamport,
            self.kind,
            self.detail
        )
    }
}

struct ZeroTime;

impl TimeSource for ZeroTime {
    fn virtual_now(&self) -> Duration {
        Duration::ZERO
    }
}

struct RecorderInner {
    enabled: AtomicBool,
    time: Arc<dyn TimeSource>,
    node: String,
    capacity: usize,
    seq: AtomicU64,
    /// The node's Lamport clock. Plain [`FlightRecorder::record`] ticks
    /// it; the ORB's wire interceptors tick/observe it directly and
    /// record the resulting stamp via [`FlightRecorder::record_stamped`],
    /// so local and wire events share one counter.
    lamport: LamportClock,
    ring: Mutex<VecDeque<RecordedEvent>>,
}

/// The shared recorder handle; cloning is one `Arc` bump, all clones feed
/// one ring (mirroring the `TraceLog`/`Telemetry` handle style).
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("node", &self.inner.node)
            .field("capacity", &self.inner.capacity)
            .field("recorded", &self.total_recorded())
            .finish()
    }
}

impl FlightRecorder {
    /// An enabled recorder for `node` with the zero time source.
    pub fn new(node: &str, capacity: usize) -> FlightRecorder {
        FlightRecorder::build(node, capacity, true, Arc::new(ZeroTime))
    }

    /// An enabled recorder reading virtual time from `time` (pass the
    /// simulation clock so dumps carry real virtual timestamps).
    pub fn with_time(node: &str, capacity: usize, time: Arc<dyn TimeSource>) -> FlightRecorder {
        FlightRecorder::build(node, capacity, true, time)
    }

    /// A recorder whose gate starts closed: every [`FlightRecorder::record`]
    /// is a single atomic load until [`FlightRecorder::set_enabled`] opens it.
    pub fn disabled(node: &str, capacity: usize) -> FlightRecorder {
        FlightRecorder::build(node, capacity, false, Arc::new(ZeroTime))
    }

    fn build(
        node: &str,
        capacity: usize,
        enabled: bool,
        time: Arc<dyn TimeSource>,
    ) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                enabled: AtomicBool::new(enabled),
                time,
                node: node.to_string(),
                capacity: capacity.max(1),
                seq: AtomicU64::new(0),
                lamport: LamportClock::new(),
                ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
            }),
        }
    }

    /// Which node this black box belongs to.
    pub fn node(&self) -> &str {
        &self.inner.node
    }

    /// The node's Lamport clock (shared with every clone). Register the
    /// recorder with a [`crate::CausalityPlane`] and the ORB's wire
    /// stamps advance this same counter.
    #[must_use]
    pub fn lamport_clock(&self) -> LamportClock {
        self.inner.lamport.clone()
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Acquire)
    }

    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Release);
    }

    /// Ring capacity (events retained at most).
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.ring.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.ring.lock().is_empty()
    }

    /// Total events ever recorded, evicted ones included.
    pub fn total_recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Record one event, ticking the node's Lamport clock. The gate is
    /// checked before `detail` runs, so the disabled path does no
    /// formatting and takes no lock.
    pub fn record(&self, kind: RecordKind, detail: impl FnOnce() -> String) {
        if !self.is_enabled() {
            return;
        }
        self.push(kind, self.inner.lamport.tick(), detail());
    }

    /// Record one event carrying an explicit Lamport stamp — for wire
    /// events, where the caller already ticked (send) or observed
    /// (receive) the node's clock and the recorded stamp must equal the
    /// on-wire value exactly. Does NOT tick the clock.
    pub fn record_stamped(&self, kind: RecordKind, lamport: u64, detail: impl FnOnce() -> String) {
        if !self.is_enabled() {
            return;
        }
        self.push(kind, lamport, detail());
    }

    fn push(&self, kind: RecordKind, lamport: u64, detail: String) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let event = RecordedEvent {
            seq,
            at: self.inner.time.virtual_now(),
            lamport,
            node: self.inner.node.clone(),
            kind,
            detail,
        };
        let mut ring = self.inner.ring.lock();
        if ring.len() == self.inner.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Snapshot of the retained window, oldest first.
    pub fn events(&self) -> Vec<RecordedEvent> {
        self.inner.ring.lock().iter().cloned().collect()
    }

    /// The last `n` retained events, oldest first. `tail(0)` returns an
    /// empty vector without touching the ring (`Vec::new` does not
    /// allocate), and `n >= len` clones the whole window into a single
    /// exactly-sized allocation — no over-allocation, no reallocation.
    pub fn tail(&self, n: usize) -> Vec<RecordedEvent> {
        if n == 0 {
            return Vec::new();
        }
        let ring = self.inner.ring.lock();
        let take = ring.len().min(n);
        let skip = ring.len() - take;
        let mut out = Vec::with_capacity(take);
        out.extend(ring.iter().skip(skip).cloned());
        out
    }

    /// Detail strings of every retained event of `kind`, in causal order —
    /// what oracle #11 compares against the node's `TraceLog`.
    pub fn details_of_kind(&self, kind: RecordKind) -> Vec<String> {
        self.inner
            .ring
            .lock()
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.detail.clone())
            .collect()
    }

    /// FNV-1a over the canonical rendering of the retained window. Since
    /// sequence numbers and virtual timestamps are simulation-driven, a
    /// pinned seed must reproduce this bit-identically (oracle #11).
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for event in self.inner.ring.lock().iter() {
            for byte in event.render().as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= u64::from(b'\n');
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// The black-box dump: header plus the retained window, one event per
    /// line. Rendered by the harness whenever an oracle fires, a heuristic
    /// outcome stands, or a participant restarts; attached to shrunk
    /// repros.
    pub fn dump(&self) -> String {
        let ring = self.inner.ring.lock();
        let total = self.inner.seq.load(Ordering::Relaxed);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight-recorder node={} retained={}/{} (capacity {}) fingerprint={:016x}",
            self.inner.node,
            ring.len(),
            total,
            self.inner.capacity,
            {
                // fingerprint() would deadlock on the held lock; fold inline.
                let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
                for event in ring.iter() {
                    for byte in event.render().as_bytes() {
                        hash ^= u64::from(*byte);
                        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                    }
                    hash ^= u64::from(b'\n');
                    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                }
                hash
            }
        );
        match ring.front() {
            Some(first) if first.seq > 0 => {
                let _ = writeln!(out, "  ... {} earlier events evicted ...", first.seq);
            }
            // An empty ring dumps a self-describing marker instead of a
            // bare header (a recorder that never recorded and one whose
            // whole window was evicted render distinguishably).
            None if total > 0 => {
                let _ = writeln!(out, "  ... all {total} events evicted ...");
            }
            None => {
                let _ = writeln!(out, "  (no events retained)");
            }
            Some(_) => {}
        }
        for event in ring.iter() {
            let _ = writeln!(out, "  {}", event.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let rec = FlightRecorder::new("coordinator", 8);
        rec.record(RecordKind::Protocol, || "prepare_sent(store)".into());
        rec.record(RecordKind::Protocol, || "vote_recorded(store, Commit)".into());
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[0].detail, "prepare_sent(store)");
        assert_eq!(rec.total_recorded(), 2);
    }

    #[test]
    fn disabled_gate_skips_the_closure_entirely() {
        let rec = FlightRecorder::disabled("node", 8);
        let mut ran = false;
        rec.record(RecordKind::Trace, || {
            ran = true;
            "never".into()
        });
        assert!(!ran, "the detail closure must not run behind a closed gate");
        assert_eq!(rec.len(), 0);
        assert_eq!(rec.total_recorded(), 0);
        rec.set_enabled(true);
        rec.record(RecordKind::Trace, || "now".into());
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest_first_and_stays_bounded() {
        let rec = FlightRecorder::new("node", 3);
        for i in 0..10 {
            rec.record(RecordKind::Trace, || format!("event-{i}"));
        }
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(rec.total_recorded(), 10);
        // The survivors are the exact tail, in order, original seqs kept.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(events[0].detail, "event-7");
        let dump = rec.dump();
        assert!(dump.contains("7 earlier events evicted"), "{dump}");
        assert!(dump.contains("retained=3/10"), "{dump}");
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let build = |detail: &str| {
            let rec = FlightRecorder::new("node", 8);
            rec.record(RecordKind::Protocol, || detail.to_string());
            rec.fingerprint()
        };
        assert_eq!(build("a"), build("a"));
        assert_ne!(build("a"), build("b"));
    }

    #[test]
    fn dump_header_fingerprint_matches_the_method() {
        let rec = FlightRecorder::new("node", 8);
        rec.record(RecordKind::Failpoint, || "ots.before_decision fired".into());
        let expected = format!("{:016x}", rec.fingerprint());
        assert!(rec.dump().contains(&expected));
    }

    #[test]
    fn details_of_kind_filters_in_causal_order() {
        let rec = FlightRecorder::new("node", 8);
        rec.record(RecordKind::Trace, || "get_signal(Bill)".into());
        rec.record(RecordKind::Protocol, || "decision_forced(true)".into());
        rec.record(RecordKind::Trace, || "get_outcome(Bill) = success".into());
        assert_eq!(
            rec.details_of_kind(RecordKind::Trace),
            vec!["get_signal(Bill)".to_string(), "get_outcome(Bill) = success".to_string()]
        );
    }

    #[test]
    fn tail_returns_the_last_n() {
        let rec = FlightRecorder::new("node", 8);
        for i in 0..5 {
            rec.record(RecordKind::Trace, || format!("e{i}"));
        }
        let tail = rec.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].detail, "e3");
        assert_eq!(tail[1].detail, "e4");
    }

    #[test]
    fn tail_zero_and_oversized_edges() {
        let rec = FlightRecorder::new("node", 8);
        assert!(rec.tail(0).is_empty(), "tail(0) of an empty ring");
        assert!(rec.tail(3).is_empty(), "tail(n) of an empty ring");
        for i in 0..4 {
            rec.record(RecordKind::Trace, || format!("e{i}"));
        }
        assert!(rec.tail(0).is_empty(), "tail(0) of a populated ring");
        let full = rec.tail(4);
        assert_eq!(full.len(), 4);
        assert_eq!(full.capacity(), 4, "n == len: one exactly-sized allocation");
        let over = rec.tail(100);
        assert_eq!(over.len(), 4, "n > len clamps to the window");
        assert_eq!(over.capacity(), 4, "n > len must not over-allocate");
        assert_eq!(over, rec.events());
    }

    #[test]
    fn empty_ring_dump_is_self_describing() {
        let rec = FlightRecorder::new("node", 2);
        let dump = rec.dump();
        assert!(dump.contains("retained=0/0"), "{dump}");
        assert!(dump.contains("(no events retained)"), "{dump}");
    }

    #[test]
    fn record_ticks_lamport_and_record_stamped_does_not() {
        let rec = FlightRecorder::new("node", 8);
        rec.record(RecordKind::Trace, || "a".into());
        rec.record(RecordKind::Trace, || "b".into());
        let events = rec.events();
        assert_eq!(events[0].lamport, 1);
        assert_eq!(events[1].lamport, 2);
        assert_eq!(events[0].node, "node");
        // A wire event carries the caller-computed stamp verbatim.
        let stamp = rec.lamport_clock().observe(41);
        assert_eq!(stamp, 42);
        rec.record_stamped(RecordKind::WireRecv, stamp, || "t@41 op peer->node".into());
        assert_eq!(rec.events()[2].lamport, 42);
        // The next local tick continues past the observed stamp.
        rec.record(RecordKind::Trace, || "c".into());
        assert_eq!(rec.events()[3].lamport, 43);
    }
}
