//! Span-tree reconstruction, well-formedness checking, canonical
//! fingerprinting and the coordinator-event projection.
//!
//! The tree is the telemetry plane's ground truth: oracle #7 in the
//! harness asserts per seed that it is well-formed (single root per trace,
//! no orphans, parents open-before/close-after children, no span left
//! open) and that the merged point-event stream is byte-identical to the
//! `TraceLog` the figure-regeneration pipeline already trusts.

use crate::span::{SpanId, SpanRecord, TraceId};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::time::Duration;

/// One phase of an attributed critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseAttribution {
    pub phase: String,
    pub duration: Duration,
}

/// End-to-end commit latency attributed to protocol phases.
///
/// The phases form an **exact partition** of the root span's interval on
/// the virtual clock: gaps between consecutive direct children are named
/// phases too (decision forcing lives in the gap between `prepare` and
/// `phase2`), and child intervals are clamped to the cursor so overlap
/// can never double-count. [`CriticalPath::is_exact`] therefore holds by
/// construction for any well-formed tree — the sweep asserts it across
/// every seed.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Name of the root span the walk attributed.
    pub root: String,
    /// Root span duration (the end-to-end latency being explained).
    pub total: Duration,
    /// The exact partition, in virtual-time order.
    pub phases: Vec<PhaseAttribution>,
    /// Slowest child of the `prepare` span (participant vote), if any —
    /// an annotation outside the partition.
    pub slowest_vote: Option<(String, Duration)>,
    /// Number of retry-attempt spans anywhere under the root.
    pub retries: u64,
    /// Total duration of those retry-attempt spans.
    pub retry_time: Duration,
}

impl CriticalPath {
    /// Whether the phase durations sum exactly to the root duration.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.phases.iter().map(|p| p.duration).sum::<Duration>() == self.total
    }

    /// JSON rendering for the latency-attribution report.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"root\": \"{}\", \"total_us\": {}, \"exact\": {}, \"phases\": [",
            self.root.replace('"', "\\\""),
            self.total.as_micros(),
            self.is_exact()
        );
        for (i, phase) in self.phases.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(
                out,
                "{sep}{{\"phase\": \"{}\", \"us\": {}}}",
                phase.phase.replace('"', "\\\""),
                phase.duration.as_micros()
            );
        }
        out.push(']');
        if let Some((name, duration)) = &self.slowest_vote {
            let _ = write!(
                out,
                ", \"slowest_vote\": {{\"span\": \"{}\", \"us\": {}}}",
                name.replace('"', "\\\""),
                duration.as_micros()
            );
        }
        let _ = write!(
            out,
            ", \"retries\": {}, \"retry_us\": {}}}",
            self.retries,
            self.retry_time.as_micros()
        );
        out
    }
}

/// An immutable snapshot of every span a recorder has seen, in
/// allocation order.
#[derive(Debug, Clone)]
pub struct SpanTree {
    spans: Vec<SpanRecord>,
}

impl SpanTree {
    pub(crate) fn new(spans: Vec<SpanRecord>) -> SpanTree {
        SpanTree { spans }
    }

    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Distinct trace ids, in first-appearance order.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for span in &self.spans {
            if seen.insert(span.context.trace_id) {
                out.push(span.context.trace_id);
            }
        }
        out
    }

    /// Spans with no parent, in allocation order.
    pub fn roots(&self) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.context.parent.is_none())
            .collect()
    }

    /// Children of `parent`, in allocation order.
    pub fn children(&self, parent: SpanId) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.context.parent == Some(parent))
            .collect()
    }

    /// First span whose name matches, in allocation order.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Well-formedness check; an empty vector means the tree is sound.
    ///
    /// Invariants (oracle #7, tentpole §3): per trace id exactly one
    /// root; every parent id resolves within the same trace (no
    /// orphans); every span was closed; parents open before and close
    /// after each of their children.
    pub fn verify(&self) -> Vec<String> {
        let mut errors = Vec::new();
        let by_id: HashMap<SpanId, &SpanRecord> =
            self.spans.iter().map(|s| (s.context.span_id, s)).collect();
        let mut roots_per_trace: HashMap<TraceId, Vec<&str>> = HashMap::new();
        for span in &self.spans {
            if span.end.is_none() {
                errors.push(format!("span '{}' was never closed", span.name));
            }
            match span.context.parent {
                None => roots_per_trace
                    .entry(span.context.trace_id)
                    .or_default()
                    .push(&span.name),
                Some(parent_id) => match by_id.get(&parent_id) {
                    None => errors.push(format!(
                        "span '{}' is an orphan: parent {} not in tree",
                        span.name, parent_id
                    )),
                    Some(parent) => {
                        if parent.context.trace_id != span.context.trace_id {
                            errors.push(format!(
                                "span '{}' crosses traces: parent '{}' has a different trace id",
                                span.name, parent.name
                            ));
                        }
                        if span.start < parent.start {
                            errors.push(format!(
                                "span '{}' opens before its parent '{}'",
                                span.name, parent.name
                            ));
                        }
                        if let (Some(child_end), Some(parent_end)) = (span.end, parent.end) {
                            if child_end > parent_end {
                                errors.push(format!(
                                    "span '{}' closes after its parent '{}'",
                                    span.name, parent.name
                                ));
                            }
                        }
                    }
                },
            }
        }
        for (trace, roots) in roots_per_trace {
            if roots.len() != 1 {
                errors.push(format!(
                    "trace {trace} has {} roots ({}), expected exactly one",
                    roots.len(),
                    roots.join(", ")
                ));
            }
        }
        errors.sort();
        errors
    }

    /// Canonical structural fingerprint: FNV-1a over a rendering that
    /// ignores raw id allocation order (children are sorted by their
    /// canonical form), so the same causal structure hashes identically
    /// even if ids were handed out in a different interleaving.
    pub fn fingerprint(&self) -> u64 {
        let mut children: HashMap<Option<SpanId>, Vec<&SpanRecord>> = HashMap::new();
        for span in &self.spans {
            children.entry(span.context.parent).or_default().push(span);
        }
        let mut roots: Vec<String> = children
            .get(&None)
            .map(|roots| roots.iter().map(|r| canonical(r, &children)).collect())
            .unwrap_or_default();
        roots.sort();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for canon in roots {
            for byte in canon.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }

    /// The coordinator projection: every point event on every span,
    /// merged back into emission order (the recorder-wide sequence
    /// number) and joined with newlines — the exact shape of
    /// `TraceLog::render()`. Oracle #7 compares the two byte for byte.
    pub fn coordinator_projection(&self) -> String {
        let mut events: Vec<(u64, &str)> = self
            .spans
            .iter()
            .flat_map(|s| s.events.iter().map(|(seq, text)| (*seq, text.as_str())))
            .collect();
        events.sort_by_key(|(seq, _)| *seq);
        events
            .iter()
            .map(|(_, text)| *text)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Fig. 8/10-style ASCII message-sequence chart; see
    /// [`crate::sequence::render_sequence`].
    pub fn render_sequence(&self) -> String {
        crate::sequence::render_sequence(self)
    }

    /// Attribute the root commit span's duration to protocol phases.
    ///
    /// The walk picks the first root named `commit:*` (falling back to
    /// the first root), orders its direct children by virtual start time,
    /// and sweeps a cursor across the root interval: time inside a child
    /// is that child's phase (`prepare` → `solicitation`, `phase2` →
    /// `phase2-fanout`, anything else keeps its span name), time between
    /// children is a named gap — before the first child `demarcation`
    /// (registration/before_completion work), between `prepare` and the
    /// next child `decision-force` (the forced decision write), after the
    /// last child `completion`. Child intervals are clamped to the cursor
    /// and the root end, so the phases partition the root exactly —
    /// [`CriticalPath::is_exact`] holds for every well-formed tree.
    ///
    /// Returns `None` when the tree has no roots.
    pub fn critical_path(&self) -> Option<CriticalPath> {
        let roots = self.roots();
        let root = roots
            .iter()
            .find(|r| r.name.starts_with("commit:"))
            .or_else(|| roots.first())?;
        let root_start = root.start;
        let root_end = root.end.unwrap_or(root.start).max(root.start);
        let total = root_end - root_start;

        let mut kids = self.children(root.context.span_id);
        kids.sort_by_key(|k| k.start);

        let phase_name = |span: &SpanRecord| -> String {
            match span.name.as_str() {
                "prepare" => "solicitation".to_string(),
                "phase2" => "phase2-fanout".to_string(),
                other => other.to_string(),
            }
        };

        let mut phases = Vec::new();
        let mut cursor = root_start;
        let mut previous: Option<&SpanRecord> = None;
        for kid in &kids {
            let open = kid.start.clamp(cursor, root_end);
            let close = kid.end.unwrap_or(kid.start).clamp(open, root_end);
            let gap_name = match previous {
                None => "demarcation".to_string(),
                Some(prev) if prev.name == "prepare" => "decision-force".to_string(),
                Some(prev) => format!("after:{}", prev.name),
            };
            phases.push(PhaseAttribution { phase: gap_name, duration: open - cursor });
            phases.push(PhaseAttribution { phase: phase_name(kid), duration: close - open });
            cursor = close;
            previous = Some(kid);
        }
        phases.push(PhaseAttribution {
            phase: if previous.is_some() { "completion".to_string() } else { "self".to_string() },
            duration: root_end - cursor,
        });

        // Slowest vote: the longest child of the `prepare` span (ties go
        // to the earliest in allocation order, for determinism).
        let slowest_vote = kids
            .iter()
            .find(|k| k.name == "prepare")
            .map(|prepare| self.children(prepare.context.span_id))
            .and_then(|votes| {
                votes.iter().fold(None::<(String, Duration)>, |best, vote| {
                    let duration =
                        vote.end.unwrap_or(vote.start).saturating_sub(vote.start);
                    match best {
                        Some((_, d)) if d >= duration => best,
                        _ => Some((vote.name.clone(), duration)),
                    }
                })
            });

        // Retry accounting: every `attempt:*` span in the root's trace.
        let mut retries = 0u64;
        let mut retry_time = Duration::ZERO;
        for span in &self.spans {
            if span.context.trace_id == root.context.trace_id
                && span.name.starts_with("attempt:")
            {
                retries += 1;
                retry_time += span.end.unwrap_or(span.start).saturating_sub(span.start);
            }
        }

        Some(CriticalPath {
            root: root.name.clone(),
            total,
            phases,
            slowest_vote,
            retries,
            retry_time,
        })
    }
}

fn canonical(span: &SpanRecord, children: &HashMap<Option<SpanId>, Vec<&SpanRecord>>) -> String {
    let mut kids: Vec<String> = children
        .get(&Some(span.context.span_id))
        .map(|kids| kids.iter().map(|k| canonical(k, children)).collect())
        .unwrap_or_default();
    kids.sort();
    let attrs = span
        .attrs
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",");
    let events = span
        .events
        .iter()
        .map(|(_, text)| text.as_str())
        .collect::<Vec<_>>()
        .join("&");
    let end = span.end.map(|e| e.as_nanos() as u64).unwrap_or(u64::MAX);
    format!(
        "{}[{attrs}]@{}..{end}<{events}>({})",
        span.name,
        span.start.as_nanos() as u64,
        kids.join(";")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanContext;
    use std::time::Duration;

    fn span(
        id: u64,
        parent: Option<u64>,
        name: &str,
        start: u64,
        end: Option<u64>,
    ) -> SpanRecord {
        SpanRecord {
            context: SpanContext {
                trace_id: TraceId(1),
                span_id: SpanId(id),
                parent: parent.map(SpanId),
            },
            name: name.to_string(),
            start: Duration::from_nanos(start),
            end: end.map(Duration::from_nanos),
            attrs: Vec::new(),
            events: Vec::new(),
        }
    }

    #[test]
    fn sound_tree_verifies_clean() {
        let tree = SpanTree::new(vec![
            span(1, None, "root", 0, Some(10)),
            span(2, Some(1), "child", 1, Some(5)),
            span(3, Some(1), "child2", 5, Some(9)),
        ]);
        assert!(tree.verify().is_empty(), "{:?}", tree.verify());
    }

    #[test]
    fn violations_are_reported() {
        let tree = SpanTree::new(vec![
            span(1, None, "root", 5, Some(10)),
            span(2, Some(1), "early", 1, Some(6)),
            span(3, Some(1), "late", 6, Some(12)),
            span(4, Some(99), "orphan", 6, Some(7)),
            span(5, Some(1), "open", 6, None),
            span(6, None, "second-root", 0, Some(1)),
        ]);
        let errors = tree.verify();
        assert!(errors.iter().any(|e| e.contains("opens before")));
        assert!(errors.iter().any(|e| e.contains("closes after")));
        assert!(errors.iter().any(|e| e.contains("orphan")));
        assert!(errors.iter().any(|e| e.contains("never closed")));
        assert!(errors.iter().any(|e| e.contains("expected exactly one")));
    }

    #[test]
    fn fingerprint_ignores_id_allocation_order() {
        // Same structure, ids handed out in a different order: spans 2/3
        // swap ids but keep identical (name, start, end) shape.
        let a = SpanTree::new(vec![
            span(1, None, "root", 0, Some(10)),
            span(2, Some(1), "left", 1, Some(4)),
            span(3, Some(1), "right", 5, Some(9)),
        ]);
        let b = SpanTree::new(vec![
            span(7, None, "root", 0, Some(10)),
            span(9, Some(7), "right", 5, Some(9)),
            span(8, Some(7), "left", 1, Some(4)),
        ]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = SpanTree::new(vec![
            span(1, None, "root", 0, Some(10)),
            span(2, Some(1), "left", 1, Some(4)),
        ]);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn critical_path_partitions_the_root_exactly() {
        // commit: 0..100; prepare 10..40 (votes 10..25, 25..40);
        // phase2 55..90. Gaps: demarcation 10, decision-force 15,
        // completion 10.
        let tree = SpanTree::new(vec![
            span(1, None, "commit:tx-1", 0, Some(100)),
            span(2, Some(1), "prepare", 10, Some(40)),
            span(3, Some(2), "vote:store", 10, Some(20)),
            span(4, Some(2), "vote:ledger", 25, Some(40)),
            span(5, Some(1), "phase2", 55, Some(90)),
        ]);
        let path = tree.critical_path().expect("has a root");
        assert_eq!(path.root, "commit:tx-1");
        assert_eq!(path.total, Duration::from_nanos(100));
        assert!(path.is_exact(), "{path:?}");
        let named: Vec<(&str, u64)> =
            path.phases.iter().map(|p| (p.phase.as_str(), p.duration.as_nanos() as u64)).collect();
        assert_eq!(
            named,
            vec![
                ("demarcation", 10),
                ("solicitation", 30),
                ("decision-force", 15),
                ("phase2-fanout", 35),
                ("completion", 10),
            ]
        );
        assert_eq!(
            path.slowest_vote,
            Some(("vote:ledger".to_string(), Duration::from_nanos(15)))
        );
        assert_eq!(path.retries, 0);
        let json = path.to_json();
        assert!(json.contains("\"exact\": true"), "{json}");
        assert!(json.contains("\"phase\": \"solicitation\""), "{json}");
    }

    #[test]
    fn critical_path_clamps_overlapping_children() {
        // Children overlap (phase2 opens before prepare closes): the
        // cursor clamp keeps the partition exact, no double counting.
        let tree = SpanTree::new(vec![
            span(1, None, "commit:tx-2", 0, Some(50)),
            span(2, Some(1), "prepare", 0, Some(30)),
            span(3, Some(1), "phase2", 20, Some(45)),
        ]);
        let path = tree.critical_path().expect("has a root");
        assert!(path.is_exact(), "{path:?}");
        let sum: Duration = path.phases.iter().map(|p| p.duration).sum();
        assert_eq!(sum, Duration::from_nanos(50));
    }

    #[test]
    fn critical_path_zero_duration_tree_is_exact() {
        // Scenario trees run on a never-advancing clock: everything is
        // zero-width and the partition is trivially exact.
        let tree = SpanTree::new(vec![
            span(1, None, "commit:tx-3", 0, Some(0)),
            span(2, Some(1), "prepare", 0, Some(0)),
            span(3, Some(1), "phase2", 0, Some(0)),
        ]);
        let path = tree.critical_path().expect("has a root");
        assert!(path.is_exact());
        assert_eq!(path.total, Duration::ZERO);
    }

    #[test]
    fn critical_path_counts_retry_attempts() {
        let tree = SpanTree::new(vec![
            span(1, None, "commit:tx-4", 0, Some(40)),
            span(2, Some(1), "prepare", 0, Some(20)),
            span(3, Some(2), "attempt:prepare", 0, Some(5)),
            span(4, Some(2), "attempt:prepare", 5, Some(20)),
        ]);
        let path = tree.critical_path().expect("has a root");
        assert_eq!(path.retries, 2);
        assert_eq!(path.retry_time, Duration::from_nanos(20));
    }

    #[test]
    fn critical_path_without_children_or_commit_root() {
        let tree = SpanTree::new(vec![span(1, None, "activity:billing", 3, Some(9))]);
        let path = tree.critical_path().expect("falls back to the first root");
        assert_eq!(path.root, "activity:billing");
        assert!(path.is_exact());
        assert_eq!(path.phases.len(), 1);
        assert_eq!(path.phases[0].phase, "self");
        assert_eq!(path.phases[0].duration, Duration::from_nanos(6));
        assert!(SpanTree::new(Vec::new()).critical_path().is_none());
    }

    #[test]
    fn projection_merges_events_by_sequence() {
        let mut root = span(1, None, "root", 0, Some(10));
        let mut child = span(2, Some(1), "child", 1, Some(5));
        root.events.push((0, "get_signal(Bill)".to_string()));
        child.events.push((1, "\"charge\" -> debit".to_string()));
        root.events.push((2, "get_outcome(Bill) = success".to_string()));
        let tree = SpanTree::new(vec![root, child]);
        assert_eq!(
            tree.coordinator_projection(),
            "get_signal(Bill)\n\"charge\" -> debit\nget_outcome(Bill) = success"
        );
    }
}
