//! Span-tree reconstruction, well-formedness checking, canonical
//! fingerprinting and the coordinator-event projection.
//!
//! The tree is the telemetry plane's ground truth: oracle #7 in the
//! harness asserts per seed that it is well-formed (single root per trace,
//! no orphans, parents open-before/close-after children, no span left
//! open) and that the merged point-event stream is byte-identical to the
//! `TraceLog` the figure-regeneration pipeline already trusts.

use crate::span::{SpanId, SpanRecord, TraceId};
use std::collections::{HashMap, HashSet};

/// An immutable snapshot of every span a recorder has seen, in
/// allocation order.
#[derive(Debug, Clone)]
pub struct SpanTree {
    spans: Vec<SpanRecord>,
}

impl SpanTree {
    pub(crate) fn new(spans: Vec<SpanRecord>) -> SpanTree {
        SpanTree { spans }
    }

    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Distinct trace ids, in first-appearance order.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for span in &self.spans {
            if seen.insert(span.context.trace_id) {
                out.push(span.context.trace_id);
            }
        }
        out
    }

    /// Spans with no parent, in allocation order.
    pub fn roots(&self) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.context.parent.is_none())
            .collect()
    }

    /// Children of `parent`, in allocation order.
    pub fn children(&self, parent: SpanId) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.context.parent == Some(parent))
            .collect()
    }

    /// First span whose name matches, in allocation order.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Well-formedness check; an empty vector means the tree is sound.
    ///
    /// Invariants (oracle #7, tentpole §3): per trace id exactly one
    /// root; every parent id resolves within the same trace (no
    /// orphans); every span was closed; parents open before and close
    /// after each of their children.
    pub fn verify(&self) -> Vec<String> {
        let mut errors = Vec::new();
        let by_id: HashMap<SpanId, &SpanRecord> =
            self.spans.iter().map(|s| (s.context.span_id, s)).collect();
        let mut roots_per_trace: HashMap<TraceId, Vec<&str>> = HashMap::new();
        for span in &self.spans {
            if span.end.is_none() {
                errors.push(format!("span '{}' was never closed", span.name));
            }
            match span.context.parent {
                None => roots_per_trace
                    .entry(span.context.trace_id)
                    .or_default()
                    .push(&span.name),
                Some(parent_id) => match by_id.get(&parent_id) {
                    None => errors.push(format!(
                        "span '{}' is an orphan: parent {} not in tree",
                        span.name, parent_id
                    )),
                    Some(parent) => {
                        if parent.context.trace_id != span.context.trace_id {
                            errors.push(format!(
                                "span '{}' crosses traces: parent '{}' has a different trace id",
                                span.name, parent.name
                            ));
                        }
                        if span.start < parent.start {
                            errors.push(format!(
                                "span '{}' opens before its parent '{}'",
                                span.name, parent.name
                            ));
                        }
                        if let (Some(child_end), Some(parent_end)) = (span.end, parent.end) {
                            if child_end > parent_end {
                                errors.push(format!(
                                    "span '{}' closes after its parent '{}'",
                                    span.name, parent.name
                                ));
                            }
                        }
                    }
                },
            }
        }
        for (trace, roots) in roots_per_trace {
            if roots.len() != 1 {
                errors.push(format!(
                    "trace {trace} has {} roots ({}), expected exactly one",
                    roots.len(),
                    roots.join(", ")
                ));
            }
        }
        errors.sort();
        errors
    }

    /// Canonical structural fingerprint: FNV-1a over a rendering that
    /// ignores raw id allocation order (children are sorted by their
    /// canonical form), so the same causal structure hashes identically
    /// even if ids were handed out in a different interleaving.
    pub fn fingerprint(&self) -> u64 {
        let mut children: HashMap<Option<SpanId>, Vec<&SpanRecord>> = HashMap::new();
        for span in &self.spans {
            children.entry(span.context.parent).or_default().push(span);
        }
        let mut roots: Vec<String> = children
            .get(&None)
            .map(|roots| roots.iter().map(|r| canonical(r, &children)).collect())
            .unwrap_or_default();
        roots.sort();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for canon in roots {
            for byte in canon.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }

    /// The coordinator projection: every point event on every span,
    /// merged back into emission order (the recorder-wide sequence
    /// number) and joined with newlines — the exact shape of
    /// `TraceLog::render()`. Oracle #7 compares the two byte for byte.
    pub fn coordinator_projection(&self) -> String {
        let mut events: Vec<(u64, &str)> = self
            .spans
            .iter()
            .flat_map(|s| s.events.iter().map(|(seq, text)| (*seq, text.as_str())))
            .collect();
        events.sort_by_key(|(seq, _)| *seq);
        events
            .iter()
            .map(|(_, text)| *text)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Fig. 8/10-style ASCII message-sequence chart; see
    /// [`crate::sequence::render_sequence`].
    pub fn render_sequence(&self) -> String {
        crate::sequence::render_sequence(self)
    }
}

fn canonical(span: &SpanRecord, children: &HashMap<Option<SpanId>, Vec<&SpanRecord>>) -> String {
    let mut kids: Vec<String> = children
        .get(&Some(span.context.span_id))
        .map(|kids| kids.iter().map(|k| canonical(k, children)).collect())
        .unwrap_or_default();
    kids.sort();
    let attrs = span
        .attrs
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",");
    let events = span
        .events
        .iter()
        .map(|(_, text)| text.as_str())
        .collect::<Vec<_>>()
        .join("&");
    let end = span.end.map(|e| e.as_nanos() as u64).unwrap_or(u64::MAX);
    format!(
        "{}[{attrs}]@{}..{end}<{events}>({})",
        span.name,
        span.start.as_nanos() as u64,
        kids.join(";")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanContext;
    use std::time::Duration;

    fn span(
        id: u64,
        parent: Option<u64>,
        name: &str,
        start: u64,
        end: Option<u64>,
    ) -> SpanRecord {
        SpanRecord {
            context: SpanContext {
                trace_id: TraceId(1),
                span_id: SpanId(id),
                parent: parent.map(SpanId),
            },
            name: name.to_string(),
            start: Duration::from_nanos(start),
            end: end.map(Duration::from_nanos),
            attrs: Vec::new(),
            events: Vec::new(),
        }
    }

    #[test]
    fn sound_tree_verifies_clean() {
        let tree = SpanTree::new(vec![
            span(1, None, "root", 0, Some(10)),
            span(2, Some(1), "child", 1, Some(5)),
            span(3, Some(1), "child2", 5, Some(9)),
        ]);
        assert!(tree.verify().is_empty(), "{:?}", tree.verify());
    }

    #[test]
    fn violations_are_reported() {
        let tree = SpanTree::new(vec![
            span(1, None, "root", 5, Some(10)),
            span(2, Some(1), "early", 1, Some(6)),
            span(3, Some(1), "late", 6, Some(12)),
            span(4, Some(99), "orphan", 6, Some(7)),
            span(5, Some(1), "open", 6, None),
            span(6, None, "second-root", 0, Some(1)),
        ]);
        let errors = tree.verify();
        assert!(errors.iter().any(|e| e.contains("opens before")));
        assert!(errors.iter().any(|e| e.contains("closes after")));
        assert!(errors.iter().any(|e| e.contains("orphan")));
        assert!(errors.iter().any(|e| e.contains("never closed")));
        assert!(errors.iter().any(|e| e.contains("expected exactly one")));
    }

    #[test]
    fn fingerprint_ignores_id_allocation_order() {
        // Same structure, ids handed out in a different order: spans 2/3
        // swap ids but keep identical (name, start, end) shape.
        let a = SpanTree::new(vec![
            span(1, None, "root", 0, Some(10)),
            span(2, Some(1), "left", 1, Some(4)),
            span(3, Some(1), "right", 5, Some(9)),
        ]);
        let b = SpanTree::new(vec![
            span(7, None, "root", 0, Some(10)),
            span(9, Some(7), "right", 5, Some(9)),
            span(8, Some(7), "left", 1, Some(4)),
        ]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = SpanTree::new(vec![
            span(1, None, "root", 0, Some(10)),
            span(2, Some(1), "left", 1, Some(4)),
        ]);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn projection_merges_events_by_sequence() {
        let mut root = span(1, None, "root", 0, Some(10));
        let mut child = span(2, Some(1), "child", 1, Some(5));
        root.events.push((0, "get_signal(Bill)".to_string()));
        child.events.push((1, "\"charge\" -> debit".to_string()));
        root.events.push((2, "get_outcome(Bill) = success".to_string()));
        let tree = SpanTree::new(vec![root, child]);
        assert_eq!(
            tree.coordinator_projection(),
            "get_signal(Bill)\n\"charge\" -> debit\nget_outcome(Bill) = success"
        );
    }
}
