//! Span identities and records.
//!
//! A [`SpanContext`] is the triple the paper's §3 implicit-propagation
//! machinery carries in `Request` service contexts: a trace id naming the
//! causal tree, a span id naming this node of it, and the parent span id.
//! [`SpanRecord`] is the recorder-side state: name, virtual-time interval
//! (from `SimClock`, via the recorder's `TimeSource`), attributes, and
//! point events with a global sequence number so cross-span orderings
//! (e.g. the fig. 5 coordinator loop) survive tree reconstruction.

use std::fmt;
use std::time::Duration;

/// Identifier of one causal tree (one activity/transaction episode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifier of one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The propagated part of a span: what travels in a service context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    pub trace_id: TraceId,
    pub span_id: SpanId,
    pub parent: Option<SpanId>,
}

impl SpanContext {
    /// The null context returned by a disabled recorder: every operation
    /// on it is a no-op. Id 0 is never allocated to a live span.
    pub const DISABLED: SpanContext = SpanContext {
        trace_id: TraceId(0),
        span_id: SpanId(0),
        parent: None,
    };

    /// True when this context names a live, recorded span.
    pub fn is_recording(&self) -> bool {
        self.span_id.0 != 0
    }

    /// Wire encoding carried in `Request` service contexts:
    /// `"{trace_id}:{span_id}"`, both as fixed-width hex.
    pub fn to_wire(&self) -> String {
        format!("{}:{}", self.trace_id, self.span_id)
    }

    /// Parse the wire encoding back; the receiver becomes a child of the
    /// encoded span, so `parent` is the sender's span id.
    pub fn from_wire(wire: &str) -> Option<SpanContext> {
        let (trace, span) = wire.split_once(':')?;
        let trace_id = u64::from_str_radix(trace, 16).ok()?;
        let span_id = u64::from_str_radix(span, 16).ok()?;
        Some(SpanContext {
            trace_id: TraceId(trace_id),
            span_id: SpanId(span_id),
            parent: None,
        })
    }
}

/// Recorder-side state of one span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub context: SpanContext,
    pub name: String,
    /// Virtual-time open instant.
    pub start: Duration,
    /// Virtual-time close instant; `None` while the span is still open
    /// (a well-formed finished tree has no open spans).
    pub end: Option<Duration>,
    /// Attributes in insertion order.
    pub attrs: Vec<(String, String)>,
    /// Point events `(global sequence, text)`. The sequence numbers are
    /// allocated from one recorder-wide counter, so events from different
    /// spans can be merged back into their emission order — that merged
    /// stream is the coordinator projection oracle #7 compares against
    /// `TraceLog`.
    pub events: Vec<(u64, String)>,
}

impl SpanRecord {
    /// Attribute lookup (first match).
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let ctx = SpanContext {
            trace_id: TraceId(0xDEAD_BEEF),
            span_id: SpanId(42),
            parent: Some(SpanId(7)),
        };
        let wire = ctx.to_wire();
        let back = SpanContext::from_wire(&wire).expect("parse");
        assert_eq!(back.trace_id, ctx.trace_id);
        assert_eq!(back.span_id, ctx.span_id);
        assert_eq!(back.parent, None);
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(SpanContext::from_wire("nope").is_none());
        assert!(SpanContext::from_wire("zz:1").is_none());
        assert!(SpanContext::from_wire("").is_none());
    }

    #[test]
    fn disabled_context_is_not_recording() {
        assert!(!SpanContext::DISABLED.is_recording());
    }
}
