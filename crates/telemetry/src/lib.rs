//! Causal telemetry plane for the Activity Service reproduction.
//!
//! The paper's contribution is that extended-transaction *coordination
//! structure* — Activities, Signals, SignalSets, the 2PC exchanges under
//! them — is explicit; this crate makes that structure observable at
//! runtime without perturbing it:
//!
//! - **Distributed spans** ([`Span`]-less by design: a [`SpanContext`]
//!   triple travels in `Request` service contexts via ORB interceptors,
//!   and the shared [`Telemetry`] recorder keeps the [`SpanRecord`]s).
//!   Timestamps are *virtual*: callers plug a [`TimeSource`] (the ORB's
//!   `SimClock` implements it) so span trees are deterministic per seed.
//! - **A metrics registry** ([`MetricsRegistry`]): counters and
//!   virtual-time histograms behind one `AtomicBool` gate — the disabled
//!   path is a single atomic load, no allocation — with a
//!   Prometheus-text exporter and a JSON snapshot.
//! - **Conformance surfaces** ([`SpanTree::verify`],
//!   [`SpanTree::fingerprint`], [`SpanTree::coordinator_projection`])
//!   consumed by harness oracle #7, which pins the span tree to the
//!   `TraceLog` the figure pipeline already trusts.
//!
//! The crate sits at the bottom of the workspace dependency stack (it
//! depends only on the vendored `parking_lot`), so every layer — orb,
//! ots, activity-service, wfengine, recovery-log — can instrument itself
//! with explicit handles, mirroring the repo's `set_trace`/`set_detector`
//! plumbing style. There is no process-global state.

mod causality;
mod metrics;
mod recorder;
mod sequence;
mod span;
mod tree;

pub use causality::{
    check_perfetto_schema, parse_wire_stamp, wire_stamp, CausalDag, CausalMerge, CausalViolation,
    CausalityPlane, LamportClock, LAMPORT_CONTEXT_KEY,
};
pub use metrics::{Counter, Histogram, MetricsRegistry};
pub use recorder::{FlightRecorder, RecordKind, RecordedEvent, DEFAULT_RECORDER_CAPACITY};
pub use sequence::{render_sequence, MSC_FROM, MSC_MSG, MSC_NOTE, MSC_REPLY, MSC_TO};
pub use span::{SpanContext, SpanId, SpanRecord, TraceId};
pub use tree::{CriticalPath, PhaseAttribution, SpanTree};

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::ThreadId;
use std::time::Duration;

/// Service-context key under which [`SpanContext`] travels in requests.
pub const SPAN_CONTEXT_KEY: &str = "telemetry.span";

/// A source of virtual time. The ORB's `SimClock` implements this in the
/// `orb` crate (the trait lives here so `telemetry` stays at the bottom
/// of the dependency stack); the default source pins everything to zero,
/// which keeps trees deterministic even without a clock.
pub trait TimeSource: Send + Sync {
    fn virtual_now(&self) -> Duration;
}

struct ZeroTime;

impl TimeSource for ZeroTime {
    fn virtual_now(&self) -> Duration {
        Duration::ZERO
    }
}

struct SpanStore {
    spans: Vec<SpanRecord>,
    index: HashMap<SpanId, usize>,
}

struct TelemetryInner {
    enabled: Arc<AtomicBool>,
    time: Arc<dyn TimeSource>,
    /// Shared allocator for trace and span ids; 0 is reserved for the
    /// disabled context.
    next_id: AtomicU64,
    /// Recorder-wide point-event sequence; merging events by it recovers
    /// emission order across spans (the coordinator projection).
    event_seq: AtomicU64,
    store: Mutex<SpanStore>,
    /// Per-thread ambient span stack: the ORB server interceptor pushes
    /// before servant dispatch and pops in `send_reply`, so work done on
    /// behalf of a remote caller parents under the propagated context.
    stack: Mutex<HashMap<ThreadId, Vec<SpanContext>>>,
    metrics: MetricsRegistry,
    /// Optional flight recorder mirroring span open/close into the node's
    /// black box (DESIGN.md §15). Write-once after construction so the
    /// span paths read it with a single atomic load, no lock.
    recorder: OnceLock<FlightRecorder>,
}

/// The shared recorder handle. Cloning is cheap (one `Arc` bump); every
/// layer holds its own clone, all feeding one store.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl Telemetry {
    /// An enabled recorder with the zero time source.
    pub fn new() -> Telemetry {
        Telemetry::build(true, Arc::new(ZeroTime))
    }

    /// An enabled recorder reading virtual time from `time` (pass the
    /// simulation clock so span trees are deterministic per seed).
    pub fn with_time(time: Arc<dyn TimeSource>) -> Telemetry {
        Telemetry::build(true, time)
    }

    /// A recorder whose gate starts closed: every instrumentation call is
    /// a single atomic load until [`Telemetry::set_enabled`] opens it.
    pub fn disabled() -> Telemetry {
        Telemetry::build(false, Arc::new(ZeroTime))
    }

    fn build(enabled: bool, time: Arc<dyn TimeSource>) -> Telemetry {
        let gate = Arc::new(AtomicBool::new(enabled));
        Telemetry {
            inner: Arc::new(TelemetryInner {
                enabled: gate.clone(),
                time,
                next_id: AtomicU64::new(1),
                event_seq: AtomicU64::new(0),
                store: Mutex::new(SpanStore {
                    spans: Vec::new(),
                    index: HashMap::new(),
                }),
                stack: Mutex::new(HashMap::new()),
                metrics: MetricsRegistry::with_gate(gate),
                recorder: OnceLock::new(),
            }),
        }
    }

    /// Mirror span open/close into `recorder` from now on. The recorder's
    /// own gate still applies, so attaching to a disabled recorder stays
    /// allocation-free.
    /// Write-once; later calls are ignored.
    pub fn attach_recorder(&self, recorder: FlightRecorder) {
        let _ = self.inner.recorder.set(recorder);
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<FlightRecorder> {
        self.inner.recorder.get().cloned()
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Acquire)
    }

    /// Open or close the gate shared by spans and metrics.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Release);
    }

    /// The metrics registry sharing this recorder's gate.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Current virtual time as seen by this recorder.
    pub fn now(&self) -> Duration {
        self.inner.time.virtual_now()
    }

    fn alloc_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn insert(&self, context: SpanContext, name: &str) {
        let record = SpanRecord {
            context,
            name: name.to_string(),
            start: self.now(),
            end: None,
            attrs: Vec::new(),
            events: Vec::new(),
        };
        let mut store = self.inner.store.lock();
        let idx = store.spans.len();
        store.index.insert(context.span_id, idx);
        store.spans.push(record);
        drop(store);
        if let Some(recorder) = self.inner.recorder.get() {
            recorder.record(RecordKind::SpanOpen, || name.to_string());
        }
    }

    /// Open a root span in a fresh trace.
    pub fn start_root(&self, name: &str) -> SpanContext {
        if !self.is_enabled() {
            return SpanContext::DISABLED;
        }
        let context = SpanContext {
            trace_id: TraceId(self.alloc_id()),
            span_id: SpanId(self.alloc_id()),
            parent: None,
        };
        self.insert(context, name);
        context
    }

    /// Open a child of an explicit parent (no-op context if the parent
    /// is not recording).
    pub fn start_child(&self, parent: &SpanContext, name: &str) -> SpanContext {
        if !self.is_enabled() || !parent.is_recording() {
            return SpanContext::DISABLED;
        }
        let context = SpanContext {
            trace_id: parent.trace_id,
            span_id: SpanId(self.alloc_id()),
            parent: Some(parent.span_id),
        };
        self.insert(context, name);
        context
    }

    /// Open a span under the calling thread's ambient current span, or a
    /// fresh root when there is none. Does not push.
    pub fn start_span(&self, name: &str) -> SpanContext {
        match self.current() {
            Some(parent) => self.start_child(&parent, name),
            None => self.start_root(name),
        }
    }

    /// Continue a propagated context on the receiving side: a child of
    /// the remote span, in the remote trace.
    pub fn adopt(&self, remote: &SpanContext, name: &str) -> SpanContext {
        if !self.is_enabled() || !remote.is_recording() {
            return SpanContext::DISABLED;
        }
        let context = SpanContext {
            trace_id: remote.trace_id,
            span_id: SpanId(self.alloc_id()),
            parent: Some(remote.span_id),
        };
        self.insert(context, name);
        context
    }

    /// Push a span onto the calling thread's ambient stack.
    pub fn enter(&self, context: SpanContext) {
        if !context.is_recording() {
            return;
        }
        self.inner
            .stack
            .lock()
            .entry(std::thread::current().id())
            .or_default()
            .push(context);
    }

    /// Pop the calling thread's ambient stack.
    pub fn exit(&self) {
        let thread = std::thread::current().id();
        let mut stack = self.inner.stack.lock();
        if let Some(frames) = stack.get_mut(&thread) {
            frames.pop();
            if frames.is_empty() {
                stack.remove(&thread);
            }
        }
    }

    /// The calling thread's current ambient span, if any.
    pub fn current(&self) -> Option<SpanContext> {
        self.inner
            .stack
            .lock()
            .get(&std::thread::current().id())
            .and_then(|frames| frames.last())
            .copied()
    }

    /// Close a span at the current virtual time. Closing an already
    /// closed or non-recording span is a no-op, so error paths can end
    /// unconditionally.
    pub fn end(&self, context: &SpanContext) {
        if !context.is_recording() {
            return;
        }
        let now = self.now();
        let recorder = self.inner.recorder.get().cloned();
        let mirror = recorder.as_ref().is_some_and(FlightRecorder::is_enabled);
        let mut closed_name = None;
        let mut store = self.inner.store.lock();
        if let Some(&idx) = store.index.get(&context.span_id) {
            let record = &mut store.spans[idx];
            if record.end.is_none() {
                record.end = Some(now);
                if mirror {
                    closed_name = Some(record.name.clone());
                }
            }
        }
        drop(store);
        if let (Some(name), Some(recorder)) = (closed_name, recorder) {
            recorder.record(RecordKind::SpanClose, || name);
        }
    }

    /// Attach an attribute (insertion order preserved).
    pub fn set_attr(&self, context: &SpanContext, key: &str, value: &str) {
        if !context.is_recording() {
            return;
        }
        let mut store = self.inner.store.lock();
        if let Some(&idx) = store.index.get(&context.span_id) {
            store.spans[idx]
                .attrs
                .push((key.to_string(), value.to_string()));
        }
    }

    /// Attach a point event carrying the recorder-wide sequence number.
    pub fn event(&self, context: &SpanContext, text: &str) {
        if !context.is_recording() {
            return;
        }
        let seq = self.inner.event_seq.fetch_add(1, Ordering::Relaxed);
        let mut store = self.inner.store.lock();
        if let Some(&idx) = store.index.get(&context.span_id) {
            store.spans[idx].events.push((seq, text.to_string()));
        }
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.inner.store.lock().spans.len()
    }

    /// Immutable snapshot of everything recorded so far.
    pub fn span_tree(&self) -> SpanTree {
        SpanTree::new(self.inner.store.lock().spans.clone())
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambient_stack_parents_spans() {
        let tel = Telemetry::new();
        let root = tel.start_span("root");
        tel.enter(root);
        let child = tel.start_span("child");
        assert_eq!(child.parent, Some(root.span_id));
        assert_eq!(child.trace_id, root.trace_id);
        tel.enter(child);
        let grandchild = tel.start_span("grandchild");
        assert_eq!(grandchild.parent, Some(child.span_id));
        tel.end(&grandchild);
        tel.exit();
        tel.end(&child);
        tel.exit();
        tel.end(&root);
        assert!(tel.current().is_none());
        assert!(tel.span_tree().verify().is_empty());
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let tel = Telemetry::disabled();
        let root = tel.start_root("root");
        assert!(!root.is_recording());
        tel.enter(root);
        tel.event(&root, "ignored");
        tel.end(&root);
        assert_eq!(tel.span_count(), 0);
        assert!(tel.current().is_none());
        tel.set_enabled(true);
        let live = tel.start_root("live");
        assert!(live.is_recording());
        tel.end(&live);
        assert_eq!(tel.span_count(), 1);
    }

    #[test]
    fn adopt_continues_the_remote_trace() {
        let tel = Telemetry::new();
        let remote = tel.start_root("client");
        let server = tel.adopt(&remote, "server");
        assert_eq!(server.trace_id, remote.trace_id);
        assert_eq!(server.parent, Some(remote.span_id));
        tel.end(&server);
        tel.end(&remote);
        assert!(tel.span_tree().verify().is_empty());
    }

    #[test]
    fn double_end_keeps_first_close() {
        let tel = Telemetry::new();
        let root = tel.start_root("root");
        tel.end(&root);
        let first = tel.span_tree().spans()[0].end;
        tel.end(&root);
        assert_eq!(tel.span_tree().spans()[0].end, first);
    }

    #[test]
    fn same_structure_fingerprints_identically() {
        let build = || {
            let tel = Telemetry::new();
            let root = tel.start_root("activity:billing");
            tel.enter(root);
            for name in ["transmit:a", "transmit:b"] {
                let child = tel.start_span(name);
                tel.set_attr(&child, "outcome", "success");
                tel.end(&child);
            }
            tel.exit();
            tel.end(&root);
            tel.span_tree().fingerprint()
        };
        assert_eq!(build(), build());
    }
}
