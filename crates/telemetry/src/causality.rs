//! The cross-node causal merge plane (DESIGN.md §16).
//!
//! Per-node flight recorders tell per-node stories; this module merges
//! them into one global happens-before DAG so the harness (and a human
//! with a shrunk repro) can ask *"what was the cluster-wide order of
//! protocol events for this transaction?"*:
//!
//! - [`LamportClock`]: one logical clock per node. Local events tick it;
//!   receiving a message observes the sender's stamp (`max + 1`). Stamps
//!   are never reused per node — both paths strictly increase the
//!   counter.
//! - [`CausalityPlane`]: the per-simulation registry mapping node names
//!   to clocks and recorders. The ORB's Lamport interceptor pair stamps
//!   every `Request`/`Reply` through it (service-context slot
//!   [`LAMPORT_CONTEXT_KEY`]) and mirrors `wire-send`/`wire-recv` events
//!   into the sending/receiving node's black box.
//! - [`CausalMerge`]: folds N causally-annotated recorder logs into a
//!   [`CausalDag`] — edges are per-node program order plus send→receive
//!   pairs matched by wire token (delivery id + send stamp).
//! - [`CausalDag::verify`]: cycles, Lamport/virtual-clock inversions on
//!   every edge, and 2PC protocol-order violations (outcome delivered
//!   before the decision forced, vote recorded after the decision,
//!   completion before all phase-2 acks) as structured
//!   [`CausalViolation`]s — harness oracle #12.
//! - [`CausalDag::to_perfetto`]: a Chrome-trace/Perfetto JSON export
//!   (one track per node, flow events per send→receive edge,
//!   virtual-clock timestamps) loadable in `ui.perfetto.dev`.
//!
//! Everything here is deterministic: stamps come from the serial
//! simulation, the merge sorts events into a canonical order, and
//! [`CausalDag::fingerprint`] is invariant under input-log permutation —
//! pinned-seed double runs must agree bit-for-bit.

use crate::recorder::{FlightRecorder, RecordKind, RecordedEvent};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Service-context key under which the Lamport stamp travels in requests
/// and replies: `"{lamport} {token}"`, where `token` is the wire-matching
/// token (`{delivery_id}@{lamport}`, reply legs suffixed `r`).
pub const LAMPORT_CONTEXT_KEY: &str = "telemetry.lamport";

/// A node-local Lamport clock. Cloning shares the counter.
///
/// The counter stores the last stamp issued; [`LamportClock::tick`]
/// returns `last + 1` and [`LamportClock::observe`] returns
/// `max(last, remote) + 1`. Both strictly increase the counter, so a
/// node never issues the same stamp twice.
#[derive(Clone, Debug, Default)]
pub struct LamportClock {
    last: Arc<AtomicU64>,
}

impl LamportClock {
    /// A fresh clock at zero (no stamps issued yet).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The last stamp issued (0 if none).
    #[must_use]
    pub fn current(&self) -> u64 {
        self.last.load(Ordering::Relaxed)
    }

    /// Stamp a local event: `last + 1`.
    pub fn tick(&self) -> u64 {
        self.last.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Stamp a message receipt: `max(last, remote) + 1`. Always strictly
    /// greater than both the local history and the sender's stamp.
    pub fn observe(&self, remote: u64) -> u64 {
        loop {
            let cur = self.last.load(Ordering::Relaxed);
            let next = cur.max(remote) + 1;
            if self
                .last
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return next;
            }
        }
    }
}

/// Render the service-context payload for a wire stamp.
#[must_use]
pub fn wire_stamp(lamport: u64, token: &str) -> String {
    format!("{lamport} {token}")
}

/// Parse a [`wire_stamp`] payload back into `(lamport, token)`.
#[must_use]
pub fn parse_wire_stamp(stamp: &str) -> Option<(u64, &str)> {
    let (lamport, token) = stamp.split_once(' ')?;
    Some((lamport.parse().ok()?, token))
}

struct NodeSlot {
    clock: LamportClock,
    recorder: Option<FlightRecorder>,
}

/// The per-simulation causality registry: node name → Lamport clock and
/// (optionally) that node's flight recorder. Cloning shares the registry.
///
/// Nodes are created lazily by [`CausalityPlane::clock`]; registering a
/// recorder via [`CausalityPlane::register`] adopts the *recorder's own*
/// clock for the node, so local [`FlightRecorder::record`] ticks and wire
/// stamps share one counter — the stamp discipline §16 requires.
#[derive(Clone, Default)]
pub struct CausalityPlane {
    nodes: Arc<Mutex<HashMap<String, NodeSlot>>>,
}

impl fmt::Debug for CausalityPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CausalityPlane").field("nodes", &self.nodes.lock().len()).finish()
    }
}

impl CausalityPlane {
    /// An empty plane.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adopt `recorder` (and its clock) as the causal identity of its
    /// node. Replaces any earlier standalone clock for the node — call
    /// before traffic flows.
    pub fn register(&self, recorder: &FlightRecorder) {
        self.nodes.lock().insert(
            recorder.node().to_owned(),
            NodeSlot { clock: recorder.lamport_clock(), recorder: Some(recorder.clone()) },
        );
    }

    /// The node's Lamport clock, created on first use for nodes without
    /// a registered recorder (e.g. an external caller).
    pub fn clock(&self, node: &str) -> LamportClock {
        self.nodes
            .lock()
            .entry(node.to_owned())
            .or_insert_with(|| NodeSlot { clock: LamportClock::new(), recorder: None })
            .clock
            .clone()
    }

    /// The node's registered recorder, if any.
    #[must_use]
    pub fn recorder(&self, node: &str) -> Option<FlightRecorder> {
        self.nodes.lock().get(node).and_then(|slot| slot.recorder.clone())
    }

    /// Registered recorders, sorted by node name (deterministic).
    #[must_use]
    pub fn recorders(&self) -> Vec<FlightRecorder> {
        let nodes = self.nodes.lock();
        let mut names: Vec<&String> = nodes.keys().collect();
        names.sort();
        names.into_iter().filter_map(|n| nodes[n].recorder.clone()).collect()
    }

    /// Fold every registered recorder's retained window into a merge.
    #[must_use]
    pub fn merge(&self) -> CausalMerge {
        let mut merge = CausalMerge::new();
        for recorder in self.recorders() {
            merge.add_recorder(&recorder);
        }
        merge
    }
}

/// Builder folding N causally-annotated logs into a [`CausalDag`].
///
/// Input order does not matter: events carry their node and per-node
/// sequence number, and the build sorts them into a canonical order, so
/// the resulting DAG — and its fingerprint — is invariant under
/// permutation of the input logs.
#[derive(Debug, Default)]
pub struct CausalMerge {
    events: Vec<RecordedEvent>,
}

impl CausalMerge {
    /// An empty merge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one node's event log (events carry their node name).
    pub fn add_events(&mut self, events: Vec<RecordedEvent>) -> &mut Self {
        self.events.extend(events);
        self
    }

    /// Add a recorder's retained window.
    pub fn add_recorder(&mut self, recorder: &FlightRecorder) -> &mut Self {
        self.add_events(recorder.events())
    }

    /// Build the happens-before DAG.
    #[must_use]
    pub fn build(&self) -> CausalDag {
        CausalDag::from_events(self.events.clone())
    }

    /// Shorthand: build and fingerprint in one step.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.build().fingerprint()
    }
}

/// One structured protocol-order or consistency violation found by
/// [`CausalDag::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CausalViolation {
    /// The merged graph is not acyclic (evidence: one event on a cycle).
    Cycle { event: String },
    /// An edge whose destination stamp is not greater than its source
    /// stamp — the Lamport invariant `send < receive` broken.
    LamportInversion { from: String, to: String, send: u64, recv: u64 },
    /// An edge that runs backwards in virtual time: Lamport order and the
    /// simulation clock disagree.
    ClockInversion { from: String, to: String },
    /// A commit outcome was delivered without the forced decision
    /// happening-before it (§12: force the decision, then act on it).
    OutcomeBeforeDecision { outcome: String },
    /// A vote was recorded causally after the decision was forced.
    VoteAfterDecision { vote: String, decision: String },
    /// The transaction completed before a phase-2 outcome delivery was
    /// causally in its past.
    CompletionBeforeAck { completion: String, outcome: String },
}

impl fmt::Display for CausalViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CausalViolation::Cycle { event } => {
                write!(f, "happens-before cycle through [{event}]")
            }
            CausalViolation::LamportInversion { from, to, send, recv } => write!(
                f,
                "lamport inversion on edge [{from}] -> [{to}]: {recv} <= {send}"
            ),
            CausalViolation::ClockInversion { from, to } => {
                write!(f, "virtual-clock inversion on edge [{from}] -> [{to}]")
            }
            CausalViolation::OutcomeBeforeDecision { outcome } => write!(
                f,
                "outcome delivered without the forced decision in its causal past: [{outcome}]"
            ),
            CausalViolation::VoteAfterDecision { vote, decision } => {
                write!(f, "vote recorded after the decision was forced: [{vote}] after [{decision}]")
            }
            CausalViolation::CompletionBeforeAck { completion, outcome } => write!(
                f,
                "completion without a phase-2 ack in its causal past: [{completion}] missing [{outcome}]"
            ),
        }
    }
}

/// The merged global happens-before DAG over every node's recorded
/// events. Vertices are [`RecordedEvent`]s in canonical order (sorted by
/// node, then per-node sequence); edges are per-node program order plus
/// one edge per matched send→receive wire-token pair.
#[derive(Debug)]
pub struct CausalDag {
    events: Vec<RecordedEvent>,
    nodes: Vec<String>,
    /// Edges as (source, destination) indices into `events`.
    program_edges: Vec<(usize, usize)>,
    message_edges: Vec<(usize, usize)>,
}

impl CausalDag {
    fn from_events(mut events: Vec<RecordedEvent>) -> CausalDag {
        events.sort_by(|a, b| a.node.cmp(&b.node).then(a.seq.cmp(&b.seq)));
        let mut nodes: Vec<String> = events.iter().map(|e| e.node.clone()).collect();
        nodes.dedup();

        // Program order: consecutive retained events of the same node.
        let mut program_edges = Vec::new();
        for i in 1..events.len() {
            if events[i].node == events[i - 1].node {
                program_edges.push((i - 1, i));
            }
        }

        // Wire order: every send→receive pair sharing a wire token. The
        // token is the first whitespace-separated field of the detail;
        // one send may match several receives (network duplication).
        let mut sends: HashMap<&str, usize> = HashMap::new();
        for (i, event) in events.iter().enumerate() {
            if event.kind == RecordKind::WireSend {
                if let Some(token) = event.detail.split_whitespace().next() {
                    sends.insert(token, i);
                }
            }
        }
        let mut message_edges = Vec::new();
        for (i, event) in events.iter().enumerate() {
            if event.kind == RecordKind::WireRecv {
                if let Some(token) = event.detail.split_whitespace().next() {
                    if let Some(&s) = sends.get(token) {
                        message_edges.push((s, i));
                    }
                }
            }
        }
        message_edges.sort_unstable();

        CausalDag { events, nodes, program_edges, message_edges }
    }

    /// Merged events in canonical order.
    #[must_use]
    pub fn events(&self) -> &[RecordedEvent] {
        &self.events
    }

    /// Distinct node names, sorted.
    #[must_use]
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Matched send→receive pairs, as canonical-index edges.
    #[must_use]
    pub fn message_edges(&self) -> &[(usize, usize)] {
        &self.message_edges
    }

    /// Total edge count (program order + wire).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.program_edges.len() + self.message_edges.len()
    }

    fn all_edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.program_edges.iter().chain(self.message_edges.iter()).copied()
    }

    /// Kahn's algorithm: a topological order, or `None` when cyclic.
    fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.events.len();
        let mut indegree = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b) in self.all_edges() {
            indegree[b] += 1;
            succs[a].push(b);
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(i);
            for &j in &succs[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(j);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Ancestor bitsets (transitive happens-before), or `None` on a cycle.
    fn ancestors(&self) -> Option<Vec<Vec<u64>>> {
        let order = self.topo_order()?;
        let n = self.events.len();
        let words = n.div_ceil(64);
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b) in self.all_edges() {
            preds[b].push(a);
        }
        let mut anc = vec![vec![0u64; words]; n];
        // Process in topological order so predecessors are complete.
        let mut rank = vec![0usize; n];
        for (r, &i) in order.iter().enumerate() {
            rank[i] = r;
        }
        let mut by_rank: Vec<usize> = (0..n).collect();
        by_rank.sort_by_key(|&i| rank[i]);
        for i in by_rank {
            let mut set = vec![0u64; words];
            for &p in &preds[i] {
                set[p / 64] |= 1 << (p % 64);
                for (w, bits) in anc[p].iter().enumerate() {
                    set[w] |= bits;
                }
            }
            anc[i] = set;
        }
        Some(anc)
    }

    /// Check every §16 invariant over the merged order; an empty result
    /// means the run is causally consistent.
    #[must_use]
    pub fn verify(&self) -> Vec<CausalViolation> {
        let mut violations = Vec::new();

        let Some(anc) = self.ancestors() else {
            // Cyclic: report one witness (an event on some cycle) and stop —
            // ordering queries below would be meaningless.
            let witness = self
                .cycle_witness()
                .map_or_else(|| "<unknown>".to_owned(), |i| self.events[i].render());
            violations.push(CausalViolation::Cycle { event: witness });
            return violations;
        };
        let before = |a: usize, b: usize| anc[b][a / 64] & (1 << (a % 64)) != 0;

        // Every edge must advance the Lamport clock and never run
        // backwards in virtual time.
        for (a, b) in self.all_edges() {
            let (ea, eb) = (&self.events[a], &self.events[b]);
            if eb.lamport <= ea.lamport {
                violations.push(CausalViolation::LamportInversion {
                    from: ea.render(),
                    to: eb.render(),
                    send: ea.lamport,
                    recv: eb.lamport,
                });
            }
            if eb.at < ea.at {
                violations
                    .push(CausalViolation::ClockInversion { from: ea.render(), to: eb.render() });
            }
        }

        // Protocol order over the merged DAG. Protocol events are the
        // journal mirrors (ots::TwoPcEvent renderings). Logs may hold
        // several consecutive transactions; a `prepare_sent(` following a
        // `completed(` starts the next epoch on that node and checks
        // never compare across epochs.
        let mut decisions: Vec<(usize, usize)> = Vec::new(); // (event, epoch)
        let mut votes: Vec<(usize, usize)> = Vec::new();
        let mut commit_outcomes: Vec<(usize, usize)> = Vec::new();
        let mut all_outcomes: Vec<(usize, usize)> = Vec::new();
        let mut completions: Vec<(usize, usize)> = Vec::new();
        // node → (current epoch, whether this epoch already completed)
        let mut epoch_of_node: HashMap<&str, (usize, bool)> = HashMap::new();
        for (i, event) in self.events.iter().enumerate() {
            if event.kind != RecordKind::Protocol {
                continue;
            }
            let detail = event.detail.as_str();
            let slot = epoch_of_node.entry(event.node.as_str()).or_insert((0, false));
            if detail.starts_with("prepare_sent(") && slot.1 {
                slot.0 += 1;
                slot.1 = false;
            }
            let epoch = slot.0;
            if detail.starts_with("decision_forced(") {
                decisions.push((i, epoch));
            } else if detail.starts_with("vote_recorded(") {
                votes.push((i, epoch));
            } else if detail.starts_with("outcome_delivered(") {
                all_outcomes.push((i, epoch));
                if detail.contains("commit=true") {
                    commit_outcomes.push((i, epoch));
                }
            } else if detail.starts_with("completed(") {
                completions.push((i, epoch));
                slot.1 = true;
            }
        }

        // A commit outcome needs the forced decision in its causal past.
        // (Presumed abort: rollback outcomes legitimately have none.)
        for &(o, oe) in &commit_outcomes {
            let ordered = decisions.iter().any(|&(d, de)| de == oe && before(d, o));
            if !ordered {
                violations.push(CausalViolation::OutcomeBeforeDecision {
                    outcome: self.events[o].render(),
                });
            }
        }

        // No vote may be causally after its epoch's forced decision.
        for &(v, ve) in &votes {
            if let Some(&(d, _)) =
                decisions.iter().find(|&&(d, de)| de == ve && before(d, v))
            {
                violations.push(CausalViolation::VoteAfterDecision {
                    vote: self.events[v].render(),
                    decision: self.events[d].render(),
                });
            }
        }

        // Completion needs every phase-2 delivery of its epoch (same
        // coordinator node) in its causal past.
        for &(c, ce) in &completions {
            for &(o, oe) in &all_outcomes {
                if oe == ce
                    && self.events[o].node == self.events[c].node
                    && !before(o, c)
                {
                    violations.push(CausalViolation::CompletionBeforeAck {
                        completion: self.events[c].render(),
                        outcome: self.events[o].render(),
                    });
                }
            }
        }

        violations
    }

    /// One event provably on a cycle (None when acyclic).
    fn cycle_witness(&self) -> Option<usize> {
        let n = self.events.len();
        let mut indegree = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b) in self.all_edges() {
            indegree[b] += 1;
            succs[a].push(b);
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut removed = vec![false; n];
        while let Some(i) = ready.pop() {
            removed[i] = true;
            for &j in &succs[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(j);
                }
            }
        }
        (0..n).find(|&i| !removed[i])
    }

    /// FNV-1a over the canonical event renderings and the edge sets.
    /// Canonical order makes this invariant under input-log permutation;
    /// simulation-driven stamps make it bit-identical across pinned-seed
    /// double runs (oracle #12 checks exactly that).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for byte in bytes {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(PRIME);
            }
            hash ^= u64::from(b'\n');
            hash = hash.wrapping_mul(PRIME);
        };
        for event in &self.events {
            eat(event.node.as_bytes());
            eat(event.render().as_bytes());
        }
        for (a, b) in self.program_edges.iter().chain(self.message_edges.iter()) {
            eat(format!("{a}->{b}").as_bytes());
        }
        hash
    }

    /// Export the DAG as Chrome-trace/Perfetto JSON: one thread track per
    /// node (`ph:"M"` metadata), one complete slice (`ph:"X"`) per event
    /// at its virtual-clock microsecond, and a flow `s`/`f` pair per
    /// matched send→receive edge. One JSON object per line, so
    /// [`check_perfetto_schema`] can audit the output without a JSON
    /// parser. Load the file at `ui.perfetto.dev`.
    #[must_use]
    pub fn to_perfetto(&self) -> String {
        let tid_of = |node: &str| -> usize {
            self.nodes.iter().position(|n| n == node).unwrap_or(0) + 1
        };
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |out: &mut String, line: String| {
            if !std::mem::take(&mut first) {
                out.push_str(",\n");
            }
            out.push_str(&line);
        };
        push(
            &mut out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"causal-merge\"}}"
                .to_owned(),
        );
        for node in &self.nodes {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":{},\
                     \"args\":{{\"name\":{}}}}}",
                    tid_of(node),
                    json_string(node)
                ),
            );
        }
        for event in &self.events {
            push(
                &mut out,
                format!(
                    "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":1,\"pid\":1,\
                     \"tid\":{},\"args\":{{\"seq\":{},\"lamport\":{},\"detail\":{}}}}}",
                    json_string(event.kind.label()),
                    json_string(event.kind.label()),
                    event.at.as_micros(),
                    tid_of(&event.node),
                    event.seq,
                    event.lamport,
                    json_string(&event.detail)
                ),
            );
        }
        for (flow, &(a, b)) in self.message_edges.iter().enumerate() {
            let (send, recv) = (&self.events[a], &self.events[b]);
            push(
                &mut out,
                format!(
                    "{{\"name\":\"wire\",\"cat\":\"wire\",\"ph\":\"s\",\"id\":{},\"ts\":{},\
                     \"pid\":1,\"tid\":{}}}",
                    flow + 1,
                    send.at.as_micros(),
                    tid_of(&send.node)
                ),
            );
            push(
                &mut out,
                format!(
                    "{{\"name\":\"wire\",\"cat\":\"wire\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\
                     \"ts\":{},\"pid\":1,\"tid\":{}}}",
                    flow + 1,
                    recv.at.as_micros(),
                    tid_of(&recv.node)
                ),
            );
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Minimal JSON string encoder (the workspace vendors no serde).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Sanity-check a [`CausalDag::to_perfetto`] artifact without a JSON
/// parser: every event line carries `ph`, `ts` and `pid`, and every flow
/// id appears exactly once as a start (`ph:"s"`) and once as a finish
/// (`ph:"f"`). The CI `causal-export` job runs this against the uploaded
/// artifact so it stays loadable.
///
/// # Errors
///
/// A human-readable description of the first malformed line or unpaired
/// flow id.
pub fn check_perfetto_schema(json: &str) -> Result<(), String> {
    let mut starts: HashMap<String, usize> = HashMap::new();
    let mut finishes: HashMap<String, usize> = HashMap::new();
    let mut events = 0usize;
    for (lineno, line) in json.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"ph\":") {
            continue;
        }
        events += 1;
        for key in ["\"ph\":", "\"ts\":", "\"pid\":"] {
            if !line.contains(key) {
                return Err(format!("line {}: event missing {key}: {line}", lineno + 1));
            }
        }
        let phase = line
            .split("\"ph\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .ok_or_else(|| format!("line {}: unparseable ph: {line}", lineno + 1))?;
        if phase == "s" || phase == "f" {
            let id = line
                .split("\"id\":")
                .nth(1)
                .and_then(|rest| rest.split([',', '}']).next())
                .ok_or_else(|| format!("line {}: flow event missing id: {line}", lineno + 1))?
                .to_owned();
            let book = if phase == "s" { &mut starts } else { &mut finishes };
            *book.entry(id).or_insert(0) += 1;
        }
    }
    if events == 0 {
        return Err("no trace events found".to_owned());
    }
    for (id, n) in &starts {
        if *n != 1 || finishes.get(id) != Some(&1) {
            return Err(format!("flow id {id} not paired exactly once (s={n}, f={:?})", finishes.get(id)));
        }
    }
    for id in finishes.keys() {
        if !starts.contains_key(id) {
            return Err(format!("flow id {id} finishes without a start"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ev(node: &str, seq: u64, lamport: u64, kind: RecordKind, detail: &str) -> RecordedEvent {
        RecordedEvent {
            seq,
            at: Duration::from_micros(lamport * 10),
            lamport,
            node: node.to_owned(),
            kind,
            detail: detail.to_owned(),
        }
    }

    #[test]
    fn lamport_clock_ticks_strictly_increase() {
        let clock = LamportClock::new();
        assert_eq!(clock.tick(), 1);
        assert_eq!(clock.tick(), 2);
        assert_eq!(clock.observe(10), 11);
        assert_eq!(clock.tick(), 12);
        assert_eq!(clock.observe(3), 13, "observe of stale stamp still advances");
        assert_eq!(clock.current(), 13);
    }

    #[test]
    fn wire_stamp_round_trips() {
        let stamp = wire_stamp(42, "coordinator#7@42");
        assert_eq!(parse_wire_stamp(&stamp), Some((42, "coordinator#7@42")));
        assert_eq!(parse_wire_stamp("garbage"), None);
        assert_eq!(parse_wire_stamp("x y"), None);
    }

    #[test]
    fn merge_matches_sends_to_receives() {
        let dag = CausalMerge::new()
            .add_events(vec![
                ev("a", 0, 1, RecordKind::WireSend, "d#1@1 ping a->b"),
                ev("a", 1, 4, RecordKind::WireRecv, "d#1@2r reply:ping b->a"),
            ])
            .add_events(vec![
                ev("b", 0, 2, RecordKind::WireRecv, "d#1@1 ping a->b"),
                ev("b", 1, 3, RecordKind::WireSend, "d#1@2r reply:ping b->a"),
            ])
            .build();
        assert_eq!(dag.nodes(), ["a".to_owned(), "b".to_owned()]);
        assert_eq!(dag.message_edges().len(), 2, "request and reply legs both matched");
        assert_eq!(dag.edge_count(), 4);
        assert!(dag.verify().is_empty(), "{:?}", dag.verify());
    }

    #[test]
    fn fingerprint_invariant_under_log_permutation() {
        let log_a = vec![ev("a", 0, 1, RecordKind::WireSend, "t@1 op a->b")];
        let log_b = vec![ev("b", 0, 2, RecordKind::WireRecv, "t@1 op a->b")];
        let ab = CausalMerge::new()
            .add_events(log_a.clone())
            .add_events(log_b.clone())
            .fingerprint();
        let ba = CausalMerge::new().add_events(log_b).add_events(log_a).fingerprint();
        assert_eq!(ab, ba);
    }

    #[test]
    fn lamport_inversion_detected() {
        let dag = CausalMerge::new()
            .add_events(vec![ev("a", 0, 9, RecordKind::WireSend, "t@9 op a->b")])
            .add_events(vec![ev("b", 0, 3, RecordKind::WireRecv, "t@9 op a->b")])
            .build();
        let violations = dag.verify();
        assert!(
            violations.iter().any(|v| matches!(v, CausalViolation::LamportInversion { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn clock_inversion_detected() {
        let mut send = ev("a", 0, 1, RecordKind::WireSend, "t@1 op a->b");
        send.at = Duration::from_micros(500);
        let mut recv = ev("b", 0, 2, RecordKind::WireRecv, "t@1 op a->b");
        recv.at = Duration::from_micros(100);
        let dag = CausalMerge::new().add_events(vec![send]).add_events(vec![recv]).build();
        let violations = dag.verify();
        assert!(
            violations.iter().any(|v| matches!(v, CausalViolation::ClockInversion { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn outcome_before_decision_detected() {
        let dag = CausalMerge::new()
            .add_events(vec![
                ev("c", 0, 1, RecordKind::Protocol, "outcome_delivered(store, commit=true, ok=true)"),
                ev("c", 1, 2, RecordKind::Protocol, "decision_forced(commit=true)"),
            ])
            .build();
        let violations = dag.verify();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(matches!(violations[0], CausalViolation::OutcomeBeforeDecision { .. }));
    }

    #[test]
    fn rollback_outcome_needs_no_decision() {
        // Presumed abort: rollback deliveries are legitimate without a
        // forced decision.
        let dag = CausalMerge::new()
            .add_events(vec![ev(
                "c",
                0,
                1,
                RecordKind::Protocol,
                "outcome_delivered(store, commit=false, ok=true)",
            )])
            .build();
        assert!(dag.verify().is_empty(), "{:?}", dag.verify());
    }

    #[test]
    fn vote_after_decision_detected() {
        let dag = CausalMerge::new()
            .add_events(vec![
                ev("c", 0, 1, RecordKind::Protocol, "decision_forced(commit=true)"),
                ev("c", 1, 2, RecordKind::Protocol, "vote_recorded(store, Commit)"),
                ev("c", 2, 3, RecordKind::Protocol, "outcome_delivered(store, commit=true, ok=true)"),
            ])
            .build();
        let violations = dag.verify();
        assert!(
            violations.iter().any(|v| matches!(v, CausalViolation::VoteAfterDecision { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn completion_before_ack_detected() {
        // A phase-2 delivery journaled after the completion (same
        // transaction: no new prepare in between) is not in the
        // completion's causal past — flagged.
        let dag = CausalMerge::new()
            .add_events(vec![
                ev("c", 0, 1, RecordKind::Protocol, "decision_forced(commit=true)"),
                ev("c", 1, 2, RecordKind::Protocol, "completed(committed=true)"),
                ev("c", 2, 3, RecordKind::Protocol, "outcome_delivered(store, commit=true, ok=true)"),
            ])
            .build();
        let violations = dag.verify();
        assert!(
            violations.iter().any(|v| matches!(v, CausalViolation::CompletionBeforeAck { .. })),
            "{violations:?}"
        );

        // In-order epoch is clean.
        let dag = CausalMerge::new()
            .add_events(vec![
                ev("c", 0, 1, RecordKind::Protocol, "decision_forced(commit=true)"),
                ev("c", 1, 2, RecordKind::Protocol, "outcome_delivered(store, commit=true, ok=true)"),
                ev("c", 2, 3, RecordKind::Protocol, "completed(committed=true)"),
            ])
            .build();
        assert!(dag.verify().is_empty(), "in-order epoch is clean: {:?}", dag.verify());

        // A second transaction's deliveries (new prepare after the
        // completion) are never compared against the first completion.
        let dag = CausalMerge::new()
            .add_events(vec![
                ev("c", 0, 1, RecordKind::Protocol, "prepare_sent(store)"),
                ev("c", 1, 2, RecordKind::Protocol, "decision_forced(commit=true)"),
                ev("c", 2, 3, RecordKind::Protocol, "outcome_delivered(store, commit=true, ok=true)"),
                ev("c", 3, 4, RecordKind::Protocol, "completed(committed=true)"),
                ev("c", 4, 5, RecordKind::Protocol, "prepare_sent(store)"),
                ev("c", 5, 6, RecordKind::Protocol, "decision_forced(commit=true)"),
                ev("c", 6, 7, RecordKind::Protocol, "outcome_delivered(store, commit=true, ok=true)"),
                ev("c", 7, 8, RecordKind::Protocol, "completed(committed=true)"),
            ])
            .build();
        assert!(dag.verify().is_empty(), "{:?}", dag.verify());
    }

    #[test]
    fn cycle_detected() {
        // Two wire tokens crossing: a's send is received before b's send,
        // which a received before sending — impossible order forced by
        // fabricated program order.
        let dag = CausalMerge::new()
            .add_events(vec![
                ev("a", 0, 1, RecordKind::WireRecv, "t2 op b->a"),
                ev("a", 1, 2, RecordKind::WireSend, "t1 op a->b"),
            ])
            .add_events(vec![
                ev("b", 0, 1, RecordKind::WireRecv, "t1 op a->b"),
                ev("b", 1, 2, RecordKind::WireSend, "t2 op b->a"),
            ])
            .build();
        let violations = dag.verify();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(matches!(violations[0], CausalViolation::Cycle { .. }));
    }

    #[test]
    fn perfetto_export_passes_schema_check_and_carries_flows() {
        let dag = CausalMerge::new()
            .add_events(vec![ev("a", 0, 1, RecordKind::WireSend, "t@1 op a->b")])
            .add_events(vec![ev("b", 0, 2, RecordKind::WireRecv, "t@1 op a->b")])
            .build();
        let json = dag.to_perfetto();
        check_perfetto_schema(&json).unwrap();
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\""), "{json}");
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn schema_check_rejects_unpaired_flows() {
        let bad = "{\"traceEvents\":[\n\
                   {\"name\":\"x\",\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":1},\n\
                   {\"name\":\"wire\",\"ph\":\"s\",\"id\":7,\"ts\":0,\"pid\":1,\"tid\":1}\n\
                   ]}";
        assert!(check_perfetto_schema(bad).is_err());
        let missing_ts = "{\"name\":\"x\",\"ph\":\"X\",\"pid\":1,\"tid\":1}";
        assert!(check_perfetto_schema(missing_ts).is_err());
        assert!(check_perfetto_schema("").is_err());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
