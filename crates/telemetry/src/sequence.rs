//! ASCII message-sequence charts from span trees.
//!
//! The paper explains its protocols with message-sequence charts
//! (figs. 8 and 10); `render_sequence` reconstructs that view from a
//! recorded span tree. Instrumentation marks spans with `msc.*`
//! attributes; anything unmarked is structural and skipped:
//!
//! - [`MSC_FROM`] / [`MSC_TO`]: lifelines of an arrow (`MSC_FROM`
//!   defaults to the first participant seen).
//! - [`MSC_MSG`]: the request label (defaults to the span name).
//! - [`MSC_REPLY`]: when present, a return arrow with this label.
//! - [`MSC_NOTE`]: a local event box on the `MSC_FROM` lifeline.

use crate::span::SpanRecord;
use crate::tree::SpanTree;

pub const MSC_FROM: &str = "msc.from";
pub const MSC_TO: &str = "msc.to";
pub const MSC_MSG: &str = "msc.msg";
pub const MSC_REPLY: &str = "msc.reply";
pub const MSC_NOTE: &str = "msc.note";

enum Step {
    Arrow { from: usize, to: usize, label: String },
    Note { at: usize, text: String },
}

/// Render a fig. 8/10-style chart: participants across the top, virtual
/// time flowing down, one row per message or local event.
pub fn render_sequence(tree: &SpanTree) -> String {
    let mut order: Vec<&SpanRecord> = tree.spans().iter().collect();
    order.sort_by_key(|s| s.start);

    let mut participants: Vec<String> = Vec::new();
    let intern = |participants: &mut Vec<String>, name: &str| -> usize {
        match participants.iter().position(|p| p == name) {
            Some(i) => i,
            None => {
                participants.push(name.to_string());
                participants.len() - 1
            }
        }
    };

    let mut steps = Vec::new();
    for span in &order {
        if let Some(note) = span.attr(MSC_NOTE) {
            let actor = span.attr(MSC_FROM).unwrap_or_else(|| {
                participants.first().map(String::as_str).unwrap_or("node")
            });
            let actor = actor.to_string();
            let at = intern(&mut participants, &actor);
            steps.push(Step::Note {
                at,
                text: note.to_string(),
            });
        }
        if let Some(to) = span.attr(MSC_TO) {
            let from = span
                .attr(MSC_FROM)
                .unwrap_or_else(|| {
                    participants.first().map(String::as_str).unwrap_or("node")
                })
                .to_string();
            let to = to.to_string();
            let from = intern(&mut participants, &from);
            let to = intern(&mut participants, &to);
            let label = span.attr(MSC_MSG).unwrap_or(&span.name).to_string();
            steps.push(Step::Arrow { from, to, label });
            if let Some(reply) = span.attr(MSC_REPLY) {
                steps.push(Step::Arrow {
                    from: to,
                    to: from,
                    label: reply.to_string(),
                });
            }
        }
    }

    if participants.is_empty() {
        return String::from("(no sequence-chart events recorded)");
    }

    let label_max = steps
        .iter()
        .map(|s| match s {
            Step::Arrow { label, .. } => label.len(),
            Step::Note { text, .. } => text.len(),
        })
        .max()
        .unwrap_or(0);
    let name_max = participants.iter().map(String::len).max().unwrap_or(0);
    let pitch = (label_max + 6).max(name_max + 2).max(14);
    let centers: Vec<usize> = (0..participants.len())
        .map(|i| i * pitch + pitch / 2)
        .collect();
    let width = participants.len() * pitch;

    let lifelines = |row: &mut [char]| {
        for &c in &centers {
            row[c] = '|';
        }
    };
    let render_row = |row: Vec<char>| -> String {
        row.into_iter().collect::<String>().trim_end().to_string()
    };

    let mut out = Vec::new();
    let mut header: Vec<char> = vec![' '; width];
    for (i, name) in participants.iter().enumerate() {
        let start = centers[i].saturating_sub(name.len() / 2).min(width - name.len());
        for (j, ch) in name.chars().enumerate() {
            header[start + j] = ch;
        }
    }
    out.push(render_row(header));
    let mut idle: Vec<char> = vec![' '; width];
    lifelines(&mut idle);
    out.push(render_row(idle));

    for step in steps {
        let mut row: Vec<char> = vec![' '; width];
        lifelines(&mut row);
        match step {
            Step::Arrow { from, to, label } => {
                let (a, b) = (centers[from], centers[to]);
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                for cell in row.iter_mut().take(hi).skip(lo + 1) {
                    *cell = '-';
                }
                if a < b {
                    row[hi - 1] = '>';
                } else {
                    row[lo + 1] = '<';
                }
                let corridor = hi.saturating_sub(lo + 3);
                let text: String = label.chars().take(corridor).collect();
                if !text.is_empty() {
                    let start = lo + 2 + (corridor - text.len()) / 2;
                    for (j, ch) in text.chars().enumerate() {
                        row[start + j] = ch;
                    }
                }
            }
            Step::Note { at, text } => {
                let start = centers[at] + 2;
                let mut full = render_row(row).chars().collect::<Vec<char>>();
                while full.len() < start {
                    full.push(' ');
                }
                full.truncate(start);
                full.extend(format!("* {text}").chars());
                out.push(render_row(full));
                continue;
            }
        }
        out.push(render_row(row));
    }
    out.join("\n")
}

#[cfg(test)]
mod tests {
    use crate::{Telemetry, MSC_FROM, MSC_MSG, MSC_NOTE, MSC_REPLY, MSC_TO};

    #[test]
    fn chart_shows_arrows_and_notes() {
        let tel = Telemetry::new();
        let root = tel.start_root("activity");
        tel.set_attr(&root, MSC_FROM, "coordinator");
        tel.set_attr(&root, MSC_NOTE, "get_signal(Bill)");
        let transmit = tel.start_child(&root, "transmit:charge");
        tel.set_attr(&transmit, MSC_FROM, "coordinator");
        tel.set_attr(&transmit, MSC_TO, "hotel");
        tel.set_attr(&transmit, MSC_MSG, "charge");
        tel.set_attr(&transmit, MSC_REPLY, "success");
        tel.end(&transmit);
        tel.end(&root);
        let chart = tel.span_tree().render_sequence();
        assert!(chart.contains("coordinator"), "{chart}");
        assert!(chart.contains("hotel"), "{chart}");
        assert!(chart.contains("charge"), "{chart}");
        assert!(chart.contains('>'), "{chart}");
        assert!(chart.contains('<'), "{chart}");
        assert!(chart.contains("* get_signal(Bill)"), "{chart}");
    }

    #[test]
    fn empty_tree_renders_placeholder() {
        let tel = Telemetry::new();
        assert!(tel.span_tree().render_sequence().contains("no sequence"));
    }
}
