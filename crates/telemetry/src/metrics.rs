//! Cross-layer metrics registry: counters and virtual-time histograms.
//!
//! The registry follows the `TraceLog` gate discipline from
//! `activity-service::coordinator`: one `AtomicBool` load on the hot path,
//! and when the gate is off nothing else runs — no name formatting, no map
//! lookup, no allocation. Hot loops that cannot even afford the name
//! lookup hold a pre-resolved [`Counter`] handle (one `Arc<AtomicU64>`),
//! so the enabled path is a single relaxed fetch-add.
//!
//! Histograms bucket virtual-time durations (read from `SimClock` by the
//! caller) on a fixed log scale, so exports are deterministic under the
//! simulation harness.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fixed histogram bucket upper bounds, in virtual seconds.
const BUCKET_BOUNDS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// A pre-resolved counter handle: one atomic add when enabled, one atomic
/// load when not. Cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Acquire) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket virtual-time histogram.
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: Default::default(),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: Duration) {
        let secs = value.as_secs_f64();
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&b| secs <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add(value.as_nanos() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed))
    }

    /// Interpolated q-quantile (Prometheus `histogram_quantile` rules):
    /// find the first bucket whose cumulative count reaches `q * count`,
    /// then interpolate linearly between that bucket's bounds. The lowest
    /// bucket interpolates from zero; a rank landing in the `+Inf` bucket
    /// reports the highest finite bound (the estimate saturates there).
    /// `None` for an empty histogram or a `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let count = self.count();
        if count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = q * count as f64;
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if (cumulative as f64) < rank {
                continue;
            }
            let Some(&upper) = BUCKET_BOUNDS.get(i) else {
                // +Inf bucket: saturate at the largest finite bound.
                return Some(Duration::from_secs_f64(BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1]));
            };
            let lower = if i == 0 { 0.0 } else { BUCKET_BOUNDS[i - 1] };
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket == 0 {
                return Some(Duration::from_secs_f64(upper));
            }
            let below = cumulative - in_bucket;
            let fraction = ((rank - below as f64) / in_bucket as f64).clamp(0.0, 1.0);
            return Some(Duration::from_secs_f64(lower + (upper - lower) * fraction));
        }
        None
    }

    /// Cumulative bucket counts paired with their `le` bound rendering
    /// (the last entry is `+Inf`).
    pub fn cumulative(&self) -> Vec<(String, u64)> {
        let mut total = 0;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, bucket) in self.buckets.iter().enumerate() {
            total += bucket.load(Ordering::Relaxed);
            let le = match BUCKET_BOUNDS.get(i) {
                Some(bound) => format!("{bound}"),
                None => "+Inf".to_string(),
            };
            out.push((le, total));
        }
        out
    }
}

/// The registry. Keys are full Prometheus-style series names, labels
/// included (e.g. `signals_transmitted_total{set="Bill"}`); the exporter
/// groups series into families by the name before the `{`.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<MetricsInner>,
}

struct MetricsInner {
    enabled: Arc<AtomicBool>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// A registry sharing the recorder's enabled gate.
    pub(crate) fn with_gate(enabled: Arc<AtomicBool>) -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(MetricsInner {
                enabled,
                counters: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// A standalone always-enabled registry (tests, exporters).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::with_gate(Arc::new(AtomicBool::new(true)))
    }

    fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Acquire)
    }

    /// Resolve (registering on first use) a counter handle for hot loops.
    /// The handle stays valid for the life of the registry and costs one
    /// atomic add per increment.
    pub fn counter(&self, name: &str) -> Counter {
        let cell = {
            let mut counters = self.inner.counters.lock();
            counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .clone()
        };
        Counter {
            enabled: self.inner.enabled.clone(),
            cell,
        }
    }

    /// One-shot increment by name. Gated before any lookup or allocation.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// One-shot add by name. Gated before any lookup or allocation.
    pub fn add(&self, name: &str, n: u64) {
        if !self.enabled() {
            return;
        }
        let cell = {
            let mut counters = self.inner.counters.lock();
            counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .clone()
        };
        cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one dimensionless, count-valued observation (batch sizes,
    /// byte counts) into a histogram. The value maps 1:1 onto the fixed
    /// bucket scale (a batch of 8 records buckets like 8 virtual seconds),
    /// so count histograms share the deterministic export path; consumers
    /// of count series read `sum`/`count` (e.g. mean group size) rather
    /// than the sub-second buckets.
    pub fn observe_count(&self, name: &str, value: u64) {
        self.observe(name, Duration::from_secs_f64(value as f64));
    }

    /// Record one observation into a histogram. Gated before any lookup.
    pub fn observe(&self, name: &str, value: Duration) {
        if !self.enabled() {
            return;
        }
        let hist = {
            let mut histograms = self.inner.histograms.lock();
            histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new()))
                .clone()
        };
        hist.observe(value);
    }

    /// Current value of a counter series (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .counters
            .lock()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Sum of every counter series whose family name (the part before any
    /// `{`) equals `family` — e.g. total detector transitions across all
    /// `{from=...,to=...}` label sets.
    pub fn family_total(&self, family: &str) -> u64 {
        self.inner
            .counters
            .lock()
            .iter()
            .filter(|(name, _)| {
                let base = name.split('{').next().unwrap_or(name);
                base == family
            })
            .map(|(_, c)| c.load(Ordering::Relaxed))
            .sum()
    }

    /// The live histogram behind a series name, if it was ever observed
    /// (quantile readers in the attribution report hold this handle).
    pub fn histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        self.inner.histograms.lock().get(name).cloned()
    }

    /// Count of observations in a histogram series (0 if never touched).
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.inner
            .histograms
            .lock()
            .get(name)
            .map(|h| h.count())
            .unwrap_or(0)
    }

    /// Prometheus text exposition (text/plain; version 0.0.4). Label
    /// values are escaped per the exposition format (`\` → `\\`,
    /// `"` → `\"`, newline → `\n`) — series names store the raw values
    /// exactly as callers formatted them, so the escaping happens here.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let counters = self.inner.counters.lock();
        let mut last_family = String::new();
        for (name, cell) in counters.iter() {
            let family = name.split('{').next().unwrap_or(name);
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} counter");
                last_family = family.to_string();
            }
            let _ = writeln!(out, "{} {}", escape_series_name(name), cell.load(Ordering::Relaxed));
        }
        drop(counters);
        let histograms = self.inner.histograms.lock();
        for (name, hist) in histograms.iter() {
            let name = escape_series_name(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (le, count) in hist.cumulative() {
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {count}");
            }
            let _ = writeln!(out, "{name}_sum {}", hist.sum().as_secs_f64());
            let _ = writeln!(out, "{name}_count {}", hist.count());
        }
        out
    }

    /// JSON snapshot (for the `telemetry_overhead` bin / CI artifact).
    pub fn snapshot_json(&self) -> String {
        fn escape(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n  \"counters\": {");
        let counters = self.inner.counters.lock();
        for (i, (name, cell)) in counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {}",
                escape(name),
                cell.load(Ordering::Relaxed)
            );
        }
        drop(counters);
        out.push_str("\n  },\n  \"histograms\": {");
        let histograms = self.inner.histograms.lock();
        for (i, (name, hist)) in histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum_seconds\": {}, \"buckets\": {{",
                escape(name),
                hist.count(),
                hist.sum().as_secs_f64()
            );
            for (j, (le, count)) in hist.cumulative().iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}\"{le}\": {count}");
            }
            out.push_str("}}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// Escape the label values of a stored series name for the Prometheus
/// text exposition format. Values are stored raw (`family{k="v"}` with
/// `v` verbatim), so a `"` inside a value is literal: it only closes the
/// value when followed by `,` or the final `}`. Inside values, `\`, `"`
/// and newline become `\\`, `\"` and `\n`; everything outside values is
/// structural and passes through untouched.
fn escape_series_name(name: &str) -> String {
    let Some(open) = name.find('{') else {
        return name.to_string();
    };
    if !name.ends_with('}') {
        return name.to_string();
    }
    let inner: Vec<char> = name[open + 1..name.len() - 1].chars().collect();
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str(&name[..=open]);
    let mut in_value = false;
    for (i, &c) in inner.iter().enumerate() {
        if !in_value {
            out.push(c);
            if c == '"' {
                in_value = true;
            }
            continue;
        }
        match c {
            '"' if matches!(inner.get(i + 1), None | Some(',')) => {
                out.push('"');
                in_value = false;
            }
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_export() {
        let m = MetricsRegistry::new();
        m.incr("retry_attempts_total");
        m.add("retry_attempts_total", 2);
        m.incr("signals_transmitted_total{set=\"Bill\"}");
        assert_eq!(m.counter_value("retry_attempts_total"), 3);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE retry_attempts_total counter"));
        assert!(text.contains("retry_attempts_total 3"));
        assert!(text.contains("signals_transmitted_total{set=\"Bill\"} 1"));
    }

    #[test]
    fn disabled_gate_blocks_everything() {
        let gate = Arc::new(AtomicBool::new(false));
        let m = MetricsRegistry::with_gate(gate.clone());
        m.incr("x_total");
        m.observe("h", Duration::from_micros(3));
        let handle = m.counter("y_total");
        handle.incr();
        assert_eq!(m.counter_value("x_total"), 0);
        assert_eq!(m.histogram_count("h"), 0);
        assert_eq!(handle.get(), 0);
        gate.store(true, Ordering::Release);
        handle.incr();
        assert_eq!(handle.get(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = MetricsRegistry::new();
        m.observe("lat", Duration::from_micros(1)); // le 1e-6
        m.observe("lat", Duration::from_millis(2)); // le 1e-2
        m.observe("lat", Duration::from_secs(100)); // +Inf
        let text = m.render_prometheus();
        assert!(text.contains("lat_bucket{le=\"0.000001\"} 1"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_count 3"));
        assert_eq!(m.histogram_count("lat"), 3);
    }

    #[test]
    fn count_observations_accumulate_sum_and_count() {
        let m = MetricsRegistry::new();
        m.observe_count("wal_group_size", 4);
        m.observe_count("wal_group_size", 8);
        assert_eq!(m.histogram_count("wal_group_size"), 2);
        let text = m.render_prometheus();
        assert!(text.contains("wal_group_size_sum 12"));
        assert!(text.contains("wal_group_size_count 2"));
    }

    #[test]
    fn exposition_escapes_label_values() {
        let m = MetricsRegistry::new();
        // A label value containing a literal quote, a backslash and a
        // newline: the exposition format requires \" \\ and \n.
        m.incr("signals_total{set=\"Bi\"ll\",path=\"a\\b\"}");
        m.incr("notes_total{msg=\"line1\nline2\"}");
        let text = m.render_prometheus();
        assert!(
            text.contains("signals_total{set=\"Bi\\\"ll\",path=\"a\\\\b\"} 1"),
            "{text}"
        );
        assert!(text.contains("notes_total{msg=\"line1\\nline2\"} 1"), "{text}");
        // Unlabelled series and clean labels pass through untouched.
        m.incr("plain_total");
        m.incr("clean_total{k=\"v\"}");
        let text = m.render_prometheus();
        assert!(text.contains("plain_total 1"));
        assert!(text.contains("clean_total{k=\"v\"} 1"));
    }

    #[test]
    fn family_total_sums_label_sets() {
        let m = MetricsRegistry::new();
        m.incr("detector_transitions_total{from=\"healthy\",to=\"suspect\"}");
        m.add("detector_transitions_total{from=\"suspect\",to=\"quarantined\"}", 2);
        m.incr("other_total");
        assert_eq!(m.family_total("detector_transitions_total"), 3);
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        let h = Histogram::new();
        // Four observations, all in the (1e-4, 1e-3] bucket.
        for _ in 0..4 {
            h.observe(Duration::from_micros(500));
        }
        // Median rank 2 of 4 lands halfway up the bucket: 1e-4 + 0.5·9e-4.
        let p50 = h.quantile(0.5).expect("non-empty").as_secs_f64();
        assert!((p50 - 5.5e-4).abs() < 1e-9, "p50 = {p50}");
        // q=1.0 reaches the bucket's upper bound exactly.
        let p100 = h.quantile(1.0).expect("non-empty").as_secs_f64();
        assert!((p100 - 1e-3).abs() < 1e-9, "p100 = {p100}");
    }

    #[test]
    fn quantile_edge_buckets() {
        let h = Histogram::new();
        // Lowest bucket: interpolation starts from zero.
        h.observe(Duration::from_nanos(500)); // le 1e-6
        let p100 = h.quantile(1.0).expect("non-empty").as_secs_f64();
        assert!((p100 - 1e-6).abs() < 1e-12, "p100 = {p100}");
        // +Inf bucket: the estimate saturates at the largest finite bound.
        h.observe(Duration::from_secs(100));
        let top = h.quantile(1.0).expect("non-empty").as_secs_f64();
        assert!((top - 10.0).abs() < 1e-9, "top = {top}");
        // A low quantile still resolves inside the lowest bucket.
        let p25 = h.quantile(0.25).expect("non-empty").as_secs_f64();
        assert!(p25 <= 1e-6, "p25 = {p25}");
    }

    #[test]
    fn quantile_empty_and_out_of_range() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        h.observe(Duration::from_micros(3));
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(h.quantile(f64::NAN), None);
        assert!(h.quantile(0.0).is_some());
    }

    #[test]
    fn registry_exposes_live_histogram_handles() {
        let m = MetricsRegistry::new();
        assert!(m.histogram("lat").is_none());
        m.observe("lat", Duration::from_micros(500));
        let h = m.histogram("lat").expect("observed series");
        assert_eq!(h.count(), 1);
        assert!(h.quantile(0.5).is_some());
    }

    #[test]
    fn json_snapshot_is_parseable_shape() {
        let m = MetricsRegistry::new();
        m.incr("a_total");
        m.observe("h", Duration::from_micros(5));
        let json = m.snapshot_json();
        assert!(json.contains("\"a_total\": 1"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
