//! Quickstart: the fig. 3 stack in one file.
//!
//! Walks the layers bottom-up — ORB, Activity Service, a SignalSet/Action
//! protocol, and the fig. 13 high-level API — for a tiny "quote request"
//! business activity.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use activity_service::{
    ActivityManager, ActivityService, BroadcastSignalSet, FnAction, Outcome, Signal, UserActivity,
};
use orb::{Orb, Request, Servant, Value};

/// A trivial remote service so the example exercises real invocations.
struct QuoteService;

impl Servant for QuoteService {
    fn dispatch(&self, request: &Request) -> Result<Value, orb::OrbError> {
        // The Activity Service context rides along implicitly; a real
        // service would key its work on it.
        let from = activity_service::ActivityService::received_context()
            .and_then(|ctx| ctx.current().map(|e| e.name.clone()))
            .unwrap_or_else(|| "<no activity>".to_owned());
        let item = request.arg("item").and_then(Value::as_str).unwrap_or("?").to_owned();
        println!("  [server] quoting {item:?} for activity {from:?}");
        Ok(Value::F64(99.5))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Underlying platform: the (simulated) ORB. -----------------------
    let orb = Orb::new();
    let node = orb.add_node("quote-node")?;
    let quote_svc = node.activate("QuoteService", QuoteService)?;
    orb.registry().bind("services/quotes", quote_svc)?;

    // --- Activity Service, attached so contexts propagate implicitly. ----
    let service = ActivityService::new();
    service.attach_to_orb(&orb);

    // --- Fig. 13: the application sees UserActivity; the HLS implementer
    //     sees ActivityManager. ------------------------------------------
    let user = UserActivity::new(service.clone());
    let manager = ActivityManager::new(service.clone());

    user.begin("quote-request")?;
    println!("began activity {:?}", user.activity_name()?);

    // The HLS plugs in a completion protocol: one broadcast signal, one
    // auditing action.
    manager.add_signal_set(Box::new(BroadcastSignalSet::new(
        "Completed",
        "finished",
        Value::from("quote-request done"),
    )))?;
    manager.set_completion_signal_set("Completed")?;
    manager.register_action(
        "Completed",
        Arc::new(FnAction::new("auditor", |signal: &Signal| {
            println!("  [auditor] saw signal {:?} from set {:?}", signal.name(), signal.signal_set_name());
            Ok(Outcome::done())
        })),
    )?;

    // Application work: a remote call made *inside* the activity — the
    // context travels without the application lifting a finger.
    let svc = orb.registry().resolve("services/quotes")?;
    let reply = orb.invoke(&svc, Request::new("quote").with_arg("item", Value::from("widget")))?;
    println!("received quote: {}", reply.result);

    // Completion drives the signal set; the outcome is the set's collation.
    let outcome = user.complete()?;
    println!("activity completed with outcome {outcome}");
    assert!(outcome.is_done());
    Ok(())
}
