//! Fig. 10 / §4.4: an order-fulfilment workflow — validate, then check
//! stock and take payment in parallel, then ship — written in the scripting
//! DSL and run by the engine, once cleanly and once with a failure that
//! triggers compensation.
//!
//! Run with: `cargo run --example workflow_order`

use activity_service::ActivityService;
use orb::Value;
use telemetry::Telemetry;
use wfengine::{script, FailurePolicy, TaskInput, TaskRegistry, TaskResult, WorkflowEngine};

const SCRIPT: &str = "
    # order fulfilment: a -> (b || c) -> d, as in fig. 10
    task validate;
    task reserve_stock after validate;
    task take_payment after validate;
    task ship after reserve_stock, take_payment;
    compensate reserve_stock with release_stock;
    compensate take_payment with refund_payment;
";

fn registry(payment_fails: bool) -> TaskRegistry {
    let mut registry = TaskRegistry::new();
    registry.register("validate", |input: &TaskInput| {
        println!("  [validate] order {}", input.params);
        TaskResult::ok(Value::from("order-valid"))
    });
    registry.register("reserve_stock", |_i: &TaskInput| {
        println!("  [reserve_stock] 2 units held");
        TaskResult::ok(Value::from("hold-17"))
    });
    registry.register("take_payment", move |_i: &TaskInput| {
        if payment_fails {
            println!("  [take_payment] card declined!");
            TaskResult::failed("card declined")
        } else {
            println!("  [take_payment] charged 59.90");
            TaskResult::ok(Value::from("charge-91"))
        }
    });
    registry.register("ship", |input: &TaskInput| {
        println!(
            "  [ship] shipping with stock hold {} and payment {}",
            input.upstream["reserve_stock"], input.upstream["take_payment"]
        );
        TaskResult::ok(Value::from("tracking-333"))
    });
    registry.register("release_stock", |input: &TaskInput| {
        println!("  [release_stock] undoing {}", input.upstream["reserve_stock"]);
        TaskResult::ok(Value::Null)
    });
    registry.register("refund_payment", |_i: &TaskInput| {
        println!("  [refund_payment] nothing charged, nothing to do");
        TaskResult::ok(Value::Null)
    });
    registry
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = script::parse(SCRIPT)?;
    println!("parsed workflow: tasks {:?}, roots {:?}", graph.task_names(), graph.roots());

    println!("\n== happy path (parallel middle stage) ==");
    let telemetry = Telemetry::new();
    let engine =
        WorkflowEngine::new(graph.clone(), registry(false))?.with_telemetry(telemetry.clone());
    let service = ActivityService::new();
    let report = engine.run_parallel(&service, "order-1", Value::from("order#1"))?;
    println!(
        "completed {:?}; ship output = {}",
        report.completed, report.outputs["ship"]
    );
    assert!(report.succeeded());

    // Every run records a span tree; the coordinator marks its outcome
    // fan-out with msc.* attributes, so the recorded execution renders as
    // the paper's fig. 10-style message-sequence chart.
    let tree = telemetry.span_tree();
    assert!(tree.verify().is_empty(), "span tree must be well-formed: {:?}", tree.verify());
    println!("\n-- recorded message-sequence chart (fig. 10 view) --");
    println!("{}", tree.render_sequence());

    println!("\n== payment declined: compensation sweep ==");
    let telemetry = Telemetry::new();
    let engine = WorkflowEngine::new(graph, registry(true))?
        .with_policy(FailurePolicy::CompensateAndStop)
        .with_telemetry(telemetry.clone());
    let report = engine.run(&service, "order-2", Value::from("order#2"))?;
    println!(
        "failed {:?}; skipped {:?}; compensated {:?}",
        report.failed,
        report.skipped,
        report
            .compensations
            .iter()
            .map(|c| c.step.compensation.as_str())
            .collect::<Vec<_>>()
    );
    assert_eq!(report.failed, vec!["take_payment"]);
    assert!(report
        .compensations
        .iter()
        .any(|c| c.step.compensation == "release_stock"));

    let tree = telemetry.span_tree();
    assert!(tree.verify().is_empty(), "span tree must be well-formed: {:?}", tree.verify());
    println!("\n-- recorded message-sequence chart (with compensation) --");
    println!("{}", tree.render_sequence());
    Ok(())
}
