//! §3.4: treatment of failure and recovery, end to end.
//!
//! A "process" runs a logged activity tree over a file-backed WAL, with
//! DURABLE stores (their prepared state is write-ahead logged too) and a
//! transaction that crashes between its commit decision and phase two.
//! A second "process" then recovers every layer from the same file: the
//! durable stores rebuild their committed + prepared state, the
//! transaction outcome is re-delivered, the activity structure is rebound
//! (ids, names, parents, signal sets, actions — via the factory
//! registries), and the application drives the in-flight activities to
//! completion. Nothing but the log file crosses the "restart".
//!
//! Run with: `cargo run --example recovery_demo`

use std::sync::Arc;

use std::time::Duration;

use activity_service::{
    recover_activities, ActionFactories, ActivityService, BroadcastSignalSet, FnAction, Outcome,
    Signal, SignalSetFactories,
};
use orb::{Introspection, NetworkConfig, Orb, Request, RetryPolicy, SimClock, Value};
use ots::{
    recovery::{CoordinatorLocator, RECOVERY_COORDINATOR_INTERFACE},
    DurableKv, RecoverableResource, RecoveryCoordinator, Resource, ResolutionConfig,
    TransactionFactory,
};
use recovery_log::{FailpointSet, FileWal, Wal};

fn wal_path() -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("recovery-demo-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = wal_path();

    // ================= incarnation 1: work, then die =================
    println!("== incarnation 1 ==");
    {
        let wal: Arc<dyn Wal> = Arc::new(FileWal::open(&path)?);
        let failpoints = FailpointSet::new();
        let service = ActivityService::builder().wal(Arc::clone(&wal)).build();
        let tx_factory =
            TransactionFactory::with_wal(Arc::clone(&wal)).with_failpoints(failpoints.clone());

        let order = service.begin("order-77")?;
        order.add_signal_set_recoverable(
            "notify-warehouse",
            Box::new(BroadcastSignalSet::new("Dispatch", "dispatch", Value::from("order-77"))),
        )?;
        order.register_action_recoverable(
            "Dispatch",
            "warehouse-action",
            Arc::new(FnAction::new("warehouse", |_s: &Signal| Ok(Outcome::done()))),
        )?;
        order.set_completion_signal_set("Dispatch");
        let _shipment = service.begin("shipment")?;

        // The payment transaction reaches its durable commit decision and
        // then the process dies (failpoint) before phase two completes.
        // Both participants are DURABLE stores on the same log.
        let store = DurableKv::new("orders", Arc::clone(&wal));
        let witness = DurableKv::new("audit", Arc::clone(&wal));
        let tx = tx_factory.create()?;
        tx.coordinator().register_resource(Arc::clone(&store) as Arc<dyn Resource>)?;
        tx.coordinator().register_resource(Arc::clone(&witness) as Arc<dyn Resource>)?;
        store.store().write(tx.id(), "payment-77", Value::F64(59.90))?;
        witness.store().write(tx.id(), "audit-77", Value::from("payment recorded"))?;
        failpoints.arm("ots.after_decision", 0);
        let err = tx.terminator().commit().unwrap_err();
        println!("  crash injected: {err}");
        assert_eq!(store.store().read_committed("payment-77"), None, "phase two never ran");
        // The process dies here: the Arc'd in-memory stores are dropped
        // with it. Only the log file survives.
    }

    // ================= incarnation 2: recover =================
    println!("\n== incarnation 2 ==");
    let wal: Arc<dyn Wal> = Arc::new(FileWal::open(&path)?);

    // (a) Durable participants rebuild from the log: prepared state is
    //     re-installed, awaiting the outcome.
    let store = DurableKv::recover("orders", Arc::clone(&wal))?;
    let witness = DurableKv::recover("audit", Arc::clone(&wal))?;
    assert_eq!(store.store().read_committed("payment-77"), None, "still in doubt");

    // (b) Transaction recovery: the logged decision is re-delivered.
    let tx_factory = TransactionFactory::with_wal(Arc::clone(&wal));
    let store2 = Arc::clone(&store);
    let audit2 = Arc::clone(&witness);
    let resolver = move |name: &str| -> Option<Arc<dyn Resource>> {
        match name {
            "orders" => Some(store2.clone() as Arc<dyn Resource>),
            "audit" => Some(audit2.clone() as Arc<dyn Resource>),
            _ => None,
        }
    };
    let tx_report = tx_factory.recover(&resolver)?;
    println!(
        "  transactions: {} recommitted, {} presumed aborted",
        tx_report.recommitted.len(),
        tx_report.presumed_aborted.len()
    );
    assert_eq!(store.store().read_committed("payment-77"), Some(Value::F64(59.90)));
    assert_eq!(
        witness.store().read_committed("audit-77"),
        Some(Value::from("payment recorded"))
    );

    // (c) Activity recovery: rebuild the tree, re-instantiate sets/actions
    //     through the factories.
    let mut sets = SignalSetFactories::new();
    sets.register("notify-warehouse", || {
        Box::new(BroadcastSignalSet::new("Dispatch", "dispatch", Value::from("order-77"))) as _
    });
    let mut actions = ActionFactories::new();
    actions.register("warehouse-action", || {
        Arc::new(FnAction::new("warehouse", |s: &Signal| {
            println!("  [warehouse] dispatching {}", s.data());
            Ok(Outcome::done())
        })) as _
    });
    let recovered = recover_activities(Arc::clone(&wal), &sets, &actions, SimClock::new())?;
    println!(
        "  activities: {} roots, {} in flight, {} already completed",
        recovered.roots.len(),
        recovered.incomplete.len(),
        recovered.completed.len()
    );

    // (d) The application drives the in-flight activities to consistency
    //     (children before parents).
    for activity in recovered.incomplete.iter().rev() {
        let outcome = activity.complete()?;
        println!("  completed {:?} with outcome {}", activity.name(), outcome);
    }

    // (e) §15's introspection plane over in-doubt resolution: a *remote*
    //     participant prepared under this coordinator, the coordinator died
    //     after forcing its decision, and the restarted participant now
    //     interrogates it over the wire. Its Introspection servant shows
    //     the in-doubt set draining — snapshotted before and after the
    //     resolution pass.
    println!("\n== remote participant: in-doubt resolution ==");
    let orb =
        Orb::builder().network(NetworkConfig::reliable()).clock(SimClock::new()).build();
    let coord_node = orb.add_node("coordinator")?;
    let participant_node = orb.add_node("participant")?;

    let ledger = DurableKv::new("ledger", Arc::clone(&wal));
    let recoverable = Arc::new(RecoverableResource::new(
        Arc::clone(&ledger) as Arc<dyn Resource>,
        Arc::clone(&wal),
        "coordinator",
    ));
    let audit_mirror = Arc::new(RecoverableResource::new(
        Arc::clone(&witness) as Arc<dyn Resource>,
        Arc::clone(&wal),
        "coordinator",
    ));
    let failpoints = FailpointSet::new();
    let refund_factory =
        TransactionFactory::with_wal(Arc::clone(&wal)).with_failpoints(failpoints.clone());
    let refund = refund_factory.create()?;
    refund.coordinator().register_resource(Arc::clone(&recoverable) as Arc<dyn Resource>)?;
    refund.coordinator().register_resource(Arc::clone(&audit_mirror) as Arc<dyn Resource>)?;
    ledger.store().write(refund.id(), "refund-77", Value::F64(-59.90))?;
    witness.store().write(refund.id(), "audit-refund-77", Value::from("refund recorded"))?;
    failpoints.arm("ots.after_decision", 0);
    let err = refund.terminator().commit().unwrap_err();
    println!("  crash injected: {err}");

    // The recovery coordinator answers replay_completion from the shared
    // log; the participant's introspection servant exposes its recovery
    // surface as a read-only probe.
    let rc_object = coord_node
        .activate(RECOVERY_COORDINATOR_INTERFACE, RecoveryCoordinator::new(Arc::clone(&wal)))?;
    let locate: CoordinatorLocator = {
        let object = rc_object.clone();
        Arc::new(move |node: &str| (node == "coordinator").then(|| object.clone()))
    };
    let (surface, intro_ref) = Introspection::install(&participant_node)?;
    {
        let res = Arc::clone(&recoverable);
        surface.register("ledger", move || res.introspect());
        let res = Arc::clone(&audit_mirror);
        surface.register("audit", move || res.introspect());
    }

    let before = orb.invoke(&intro_ref, Request::new("snapshot"))?.result;
    println!("  before resolve_in_doubt:");
    for line in before.as_str().unwrap_or_default().lines() {
        println!("  {line}");
    }
    let config = ResolutionConfig::new(RetryPolicy::new(3), Duration::from_secs(60));
    let mut report = recoverable.resolve_in_doubt(&orb, "participant", &locate, &config)?;
    let audit_report = audit_mirror.resolve_in_doubt(&orb, "participant", &locate, &config)?;
    report.committed.extend(audit_report.committed);
    report.rolled_back.extend(audit_report.rolled_back);
    report.unresolved.extend(audit_report.unresolved);
    println!(
        "  resolved: {} committed, {} rolled back, {} still in doubt",
        report.committed.len(),
        report.rolled_back.len(),
        report.unresolved.len()
    );
    let after = orb.invoke(&intro_ref, Request::new("snapshot"))?.result;
    println!("  after resolve_in_doubt:");
    for line in after.as_str().unwrap_or_default().lines() {
        println!("  {line}");
    }
    assert!(report.fully_resolved());
    assert_eq!(ledger.store().read_committed("refund-77"), Some(Value::F64(-59.90)));

    // Third scan proves stability: nothing left in flight.
    let wal: Arc<dyn Wal> = Arc::new(FileWal::open(&path)?);
    let again = recover_activities(wal, &sets, &actions, SimClock::new())?;
    assert!(again.incomplete.is_empty());
    println!("\nrecovery complete; log is quiescent");
    std::fs::remove_file(&path)?;
    Ok(())
}
