//! §4.5 / figs. 11–12: the travel booking as a BTP **cohesion** of atoms
//! over composite web services — reserve everything tentatively, then
//! decide what to actually confirm.
//!
//! Run with: `cargo run --example btp_travel`

use std::sync::Arc;

use activity_service::{Activity, ActivityService};
use btp::{BtpError, BtpParticipant, BtpVote, Cohesion, Reservation};
use orb::SimClock;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- An atom by itself: prepare now, confirm much later (fig. 11/12).
    println!("== a single atom: user-driven two-phase ==");
    let atom_activity = Activity::new_root("taxi-booking", SimClock::new());
    let atom = btp::Atom::new("taxi-booking", atom_activity)?;
    let taxi = Reservation::new("taxi");
    atom.enroll(Arc::clone(&taxi) as Arc<dyn BtpParticipant>)?;
    atom.prepare()?;
    println!("  taxi is {:?} — reserved, not booked", taxi.state());
    // ... hours pass ...
    atom.confirm()?;
    println!("  taxi is {:?}", taxi.state());

    // ---- The fig. 1 dotted ellipse as a cohesion. ------------------------
    println!("\n== the trip cohesion ==");
    let service = ActivityService::new();
    let trip = service.begin("trip")?;
    service.suspend()?; // the cohesion owns completion
    let cohesion = Cohesion::new("trip", trip);

    let mut reservations = Vec::new();
    for name in ["taxi", "restaurant", "theatre"] {
        let a = cohesion.enroll_atom(name)?;
        let r = Reservation::new(name);
        a.enroll(Arc::clone(&r) as Arc<dyn BtpParticipant>)?;
        cohesion.prepare(name)?;
        println!("  prepared {name}");
        reservations.push(r);
    }

    // The hotel refuses (fig. 2's t4).
    let hotel_atom = cohesion.enroll_atom("hotel")?;
    hotel_atom.enroll(Reservation::voting("hotel", BtpVote::Cancelled) as _)?;
    match cohesion.prepare("hotel") {
        Err(BtpError::Cancelled) => println!("  hotel refused — cohesion still alive"),
        other => panic!("expected cancellation, got {other:?}"),
    }

    // Business decision: drop the theatre plan, book the cinema instead.
    let cinema_atom = cohesion.enroll_atom("cinema")?;
    let cinema = Reservation::new("cinema");
    cinema_atom.enroll(Arc::clone(&cinema) as _)?;
    cohesion.prepare("cinema")?;
    println!("  prepared cinema as the alternative");

    // Arrive at the confirm-set; the cohesion collapses to an atom.
    let report = cohesion.confirm(&["taxi", "restaurant", "cinema"])?;
    println!("  confirmed: {:?}", report.confirmed);
    println!("  cancelled: {:?}", report.cancelled);
    assert_eq!(report.confirmed, vec!["cinema", "restaurant", "taxi"]);
    assert_eq!(report.cancelled, vec!["theatre"]);
    println!("  final states: taxi={:?} cinema={:?}", reservations[0].state(), cinema.state());
    Ok(())
}
