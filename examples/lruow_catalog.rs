//! §4.3: the LRUOW (Long Running Unit Of Work) model — a product-catalog
//! update rehearsed for a long time without locks, then performed only if
//! its operation predicates still hold, via the Rehearsal and Performance
//! SignalSets.
//!
//! Run with: `cargo run --example lruow_catalog`

use std::sync::Arc;

use activity_service::Activity;
use orb::{SimClock, Value};
use tx_models::{enlist_unit_of_work, run_lruow_completion, LruowStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = LruowStore::new("catalog");
    store.write("widget/price", Value::F64(10.0));
    store.write("widget/stock", Value::I64(500));
    store.write("gadget/price", Value::F64(25.0));

    // ---- Attempt 1: a long rehearsal that gets invalidated. -------------
    println!("== rehearsal invalidated by a concurrent update ==");
    let activity = Activity::new_root("price-review", SimClock::new());
    let uow = Arc::new(store.begin_unit_of_work());
    let price = uow.read("widget/price").unwrap().as_f64().unwrap();
    uow.write("widget/price", Value::F64(price * 1.10)); // +10%
    println!("  rehearsed: widget/price {price} -> {}", price * 1.10);

    // Meanwhile a flash sale commits a different price.
    store.write("widget/price", Value::F64(8.0));
    println!("  interloper committed widget/price = 8.0");

    enlist_unit_of_work(&activity, "price-review-uow", Arc::clone(&uow))?;
    let outcome = run_lruow_completion(&activity)?;
    println!("  performance outcome: {outcome} ({})", outcome.data());
    assert!(outcome.is_negative(), "predicate violation must be reported");
    assert_eq!(store.read("widget/price"), Some(Value::F64(8.0)), "uow not applied");

    // ---- Attempt 2: re-rehearse against fresh data; succeeds. -----------
    println!("\n== re-rehearse and perform ==");
    let activity = Activity::new_root("price-review-retry", SimClock::new());
    let uow = Arc::new(store.begin_unit_of_work());
    let price = uow.read("widget/price").unwrap().as_f64().unwrap();
    uow.write("widget/price", Value::F64(price * 1.10));
    // This round also touches a second item — one activity, several
    // predicates.
    let gadget = uow.read("gadget/price").unwrap().as_f64().unwrap();
    uow.write("gadget/price", Value::F64(gadget * 1.10));
    enlist_unit_of_work(&activity, "price-review-uow-2", Arc::clone(&uow))?;
    let outcome = run_lruow_completion(&activity)?;
    println!("  performance outcome: {outcome}");
    assert!(outcome.is_done());
    println!(
        "  committed: widget/price = {}, gadget/price = {}",
        store.read("widget/price").unwrap(),
        store.read("gadget/price").unwrap()
    );
    assert_eq!(store.read("widget/price"), Some(Value::F64(8.0 * 1.10)));

    // ---- The headline property: rehearsals never block anyone. ----------
    println!("\n== rehearsals are lock-free ==");
    let slow = Arc::new(store.begin_unit_of_work());
    let _ = slow.read("widget/stock");
    // A hundred other clients read and write the same key while the slow
    // rehearsal is open; nobody waits.
    for i in 0..100 {
        store.write("widget/stock", Value::I64(500 - i));
    }
    println!("  100 concurrent committed writes while a rehearsal was open");
    // The slow unit of work pays for it at performance time — exactly the
    // LRUOW trade.
    assert!(slow.perform().is_err());
    println!("  slow rehearsal correctly refused at performance time");
    Ok(())
}
