//! §2.1(i) + §4.2 + fig. 9: the bulletin board with open nesting.
//!
//! Posting to a bulletin board inside a long application transaction should
//! not lock the board for the transaction's whole life. So the post runs as
//! an independent top-level transaction B inside the application's A, and a
//! CompensationAction stands by to run !B if A ultimately fails.
//!
//! Run with: `cargo run --example bulletin_board`

use std::sync::Arc;

use activity_service::{ActivityService, CompletionStatus};
use orb::Value;
use ots::{TransactionFactory, TransactionalKv};
use tx_models::{
    ActivityRegistry, CompensationAction, CompletionSignalSet, InMemoryActivityRegistry,
    COMPLETION_SET,
};

fn run_scenario(application_succeeds: bool) -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "\n== scenario: application transaction {} ==",
        if application_succeeds { "commits" } else { "aborts" }
    );
    let service = ActivityService::new();
    let factory = Arc::new(TransactionFactory::new());
    let board = Arc::new(TransactionalKv::new("bulletin-board"));
    let registry = InMemoryActivityRegistry::new();

    // A: the enclosing application activity with its completion set.
    let a = service.begin("application")?;
    a.coordinator().add_signal_set(Box::new(CompletionSignalSet::new()))?;
    a.set_completion_signal_set(COMPLETION_SET);
    registry.register(&a);

    // B: post the notice NOW, in its own top-level transaction.
    let b = a.begin_child("post-notice")?;
    b.coordinator()
        .add_signal_set(Box::new(CompletionSignalSet::propagating_to(a.id())))?;
    b.set_completion_signal_set(COMPLETION_SET);
    let tb = factory.create()?;
    board.enlist(&tb)?;
    board.write(tb.id(), "notice-7", Value::from("office party friday"))?;
    tb.terminator().commit()?;
    println!("  B committed: notice visible, board lock released");
    assert!(board.read_committed("notice-7").is_some());

    // !B: ready in a CompensationAction, armed only if B's success
    // propagates into A and A later fails.
    let undo_board = Arc::clone(&board);
    let undo_factory = Arc::clone(&factory);
    let undo = CompensationAction::new(
        "retract-notice",
        Arc::clone(&registry) as Arc<dyn ActivityRegistry>,
        move || {
            println!("  !B running: retracting the notice");
            let t = undo_factory.create().map_err(|e| e.to_string())?;
            undo_board.enlist(&t).map_err(|e| e.to_string())?;
            undo_board.delete(t.id(), "notice-7").map_err(|e| e.to_string())?;
            t.terminator().commit().map_err(|e| e.to_string())?;
            Ok(())
        },
    );
    b.coordinator().register_action(COMPLETION_SET, Arc::clone(&undo) as _);
    b.complete()?; // propagate → undo enlists with A
    println!("  compensation action propagated from B to A");

    // …the application does a lot more work, then finishes.
    if application_succeeds {
        service.complete()?;
    } else {
        a.set_completion_status(CompletionStatus::FailOnly)?;
        service.complete()?;
    }

    let still_posted = board.read_committed("notice-7").is_some();
    println!(
        "  result: notice {} (compensation ran: {})",
        if still_posted { "still posted" } else { "retracted" },
        undo.compensated()
    );
    assert_eq!(still_posted, application_succeeds);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run_scenario(true)?;
    run_scenario(false)?;
    Ok(())
}
