//! Figs. 1 and 2 of the paper: the logical long-running travel booking —
//! taxi, restaurant, theatre, hotel — structured as many short top-level
//! transactions chained by activities, first without and then with failure
//! and compensation.
//!
//! Also demonstrates the *quantitative* point of fig. 1: compared with one
//! monolithic transaction, the activity structure holds each resource only
//! for its own step, so competitors are blocked far less (see the printed
//! lock statistics; the full sweep is in `cargo bench`).
//!
//! Run with: `cargo run --example travel_booking`

use std::sync::Arc;
use std::time::Duration;

use activity_service::ActivityService;
use orb::{SimClock, Value};
use ots::{TransactionFactory, TransactionalKv, TxError};
use telemetry::{Telemetry, MSC_FROM, MSC_MSG, MSC_NOTE, MSC_REPLY, MSC_TO};
use tx_models::{Saga, SagaOutcome};

const STEPS: [&str; 4] = ["taxi", "restaurant", "theatre", "hotel"];
const STEP_TIME: Duration = Duration::from_secs(60);

/// One booking step as an independent top-level transaction. Returns the
/// booking reference.
fn book(
    factory: &TransactionFactory,
    store: &Arc<TransactionalKv>,
    clock: &SimClock,
    what: &str,
) -> Result<String, TxError> {
    let tx = factory.create()?;
    store.enlist(&tx)?;
    let reference = format!("{what}-booking-001");
    store.write(tx.id(), what, Value::from(reference.as_str()))?;
    clock.advance(STEP_TIME); // the work takes a while
    tx.terminator().commit()?;
    Ok(reference)
}

fn unbook(
    factory: &TransactionFactory,
    store: &Arc<TransactionalKv>,
    what: &str,
) -> Result<(), String> {
    let tx = factory.create().map_err(|e| e.to_string())?;
    store.enlist(&tx).map_err(|e| e.to_string())?;
    store.delete(tx.id(), what).map_err(|e| e.to_string())?;
    tx.terminator().commit().map_err(|e| e.to_string())?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------- Fig. 1: the happy path. ----------------
    println!("== fig. 1: logical long-running transaction, no failure ==");
    let clock = SimClock::new();
    // Record the whole trip as a span tree on the virtual clock; the
    // activity begin/complete pairs become nested `activity:` spans and the
    // msc.* attributes below make the run renderable as a fig. 1 chart.
    let tel = Telemetry::with_time(Arc::new(clock.clone()));
    let service = ActivityService::builder().clock(clock.clone()).build();
    service.set_telemetry(tel.clone());
    let factory = TransactionFactory::new().with_clock(clock.clone());
    let store = Arc::new(TransactionalKv::with_clock("bookings", clock.clone()));

    service.begin("trip")?;
    for what in STEPS {
        let activity = service.begin(format!("book-{what}"))?;
        let span = tel.start_span(&format!("book:{what}"));
        tel.set_attr(&span, MSC_FROM, "client");
        tel.set_attr(&span, MSC_TO, what);
        tel.set_attr(&span, MSC_MSG, "book");
        let reference = book(&factory, &store, &clock, what)?;
        tel.set_attr(&span, MSC_REPLY, &reference);
        tel.end(&span);
        println!("  t: booked {what} -> {reference} (locks released immediately)");
        // Each step's resources are free the moment its transaction
        // commits — a competitor can touch them while later steps run.
        let probe = factory.create()?;
        store.enlist(&probe)?;
        assert!(store.read(probe.id(), what).is_ok(), "no lock held on {what}");
        probe.terminator().commit()?;
        drop(activity);
        service.complete()?;
    }
    service.complete()?;
    let stats = store.lock_stats();
    println!(
        "  lock stats: {} acquired, {} conflicts, mean hold {:?}",
        stats.acquired,
        stats.conflicts,
        stats.total_hold / stats.released.max(1) as u32
    );
    let tree = tel.span_tree();
    assert!(tree.verify().is_empty(), "span tree must be well-formed: {:?}", tree.verify());
    println!("\n-- recorded message-sequence chart (fig. 1 view) --");
    println!("{}", tree.render_sequence());

    // Contrast: the monolithic version holds EVERY lock to the end.
    let mono_store = Arc::new(TransactionalKv::with_clock("mono", clock.clone()));
    let mono = factory.create()?;
    mono_store.enlist(&mono)?;
    for what in STEPS {
        mono_store.write(mono.id(), what, Value::from("held"))?;
        clock.advance(STEP_TIME);
    }
    // While the monolith crawls along, the taxi row is untouchable.
    let competitor = factory.create()?;
    mono_store.enlist(&competitor)?;
    assert!(matches!(
        mono_store.write(competitor.id(), "taxi", Value::from("x")),
        Err(TxError::LockConflict { .. })
    ));
    competitor.terminator().rollback()?;
    mono.terminator().commit()?;
    let mono_stats = mono_store.lock_stats();
    println!(
        "  monolithic contrast: mean hold {:?}, {} competitor conflicts",
        mono_stats.total_hold / mono_stats.released.max(1) as u32,
        mono_stats.conflicts,
    );

    // ---------------- Fig. 2: t4 aborts; compensate and continue. --------
    println!("\n== fig. 2: failure, compensation, alternative continuation ==");
    let service = ActivityService::new();
    let tel = Telemetry::new();
    service.set_telemetry(tel.clone());
    let factory = Arc::new(TransactionFactory::new());
    let store = Arc::new(TransactionalKv::new("bookings-2"));

    let saga = {
        let mut saga = Saga::new("trip-with-failure");
        for what in ["taxi", "restaurant", "theatre"] {
            let (f, s) = (Arc::clone(&factory), Arc::clone(&store));
            let (fu, su) = (Arc::clone(&factory), Arc::clone(&store));
            let what_owned = what.to_owned();
            let what_undo = what.to_owned();
            let (tb, tc) = (tel.clone(), tel.clone());
            saga = saga.step(
                what,
                move || {
                    let span = tb.start_span(&format!("book:{what_owned}"));
                    tb.set_attr(&span, MSC_FROM, "client");
                    tb.set_attr(&span, MSC_TO, &what_owned);
                    tb.set_attr(&span, MSC_MSG, "book");
                    let result = book(&f, &s, &SimClock::new(), &what_owned)
                        .map(|_| ())
                        .map_err(|e| e.to_string());
                    tb.set_attr(&span, MSC_REPLY, "booked");
                    tb.end(&span);
                    result
                },
                move || {
                    // The compensation sweep shows up on the chart as tc's
                    // local event boxes, in reverse booking order (fig. 2).
                    let span = tc.start_span(&format!("compensate:{what_undo}"));
                    tc.set_attr(&span, MSC_FROM, "tc");
                    tc.set_attr(&span, MSC_NOTE, &format!("compensate {what_undo}"));
                    tc.end(&span);
                    println!("  tc: compensating {what_undo}");
                    unbook(&fu, &su, &what_undo)
                },
            );
        }
        // t4: the hotel is fully booked.
        saga.step(
            "hotel",
            || Err("hotel fully booked".to_owned()),
            || unreachable!("never committed, never compensated"),
        )
    };
    let report = saga.run(&service)?;
    println!("  saga outcome: {:?}", report.outcome);
    assert_eq!(report.outcome, SagaOutcome::Compensated { failed_step: "hotel".into() });
    assert_eq!(store.read_committed("taxi"), None, "compensated");
    assert_eq!(store.read_committed("theatre"), None, "compensated");

    // t5', t6': continue after compensation — book the cinema instead.
    service.begin("alternative-evening")?;
    let reference = book(&factory, &store, &SimClock::new(), "cinema")?;
    println!("  t5': booked cinema -> {reference}");
    service.complete()?;
    assert!(store.read_committed("cinema").is_some());
    println!("  application made forward progress despite t4's abort");

    let tree = tel.span_tree();
    assert!(tree.verify().is_empty(), "span tree must be well-formed: {:?}", tree.verify());
    println!("\n-- recorded message-sequence chart (fig. 2 view) --");
    println!("{}", tree.render_sequence());
    Ok(())
}
