//! §5.2: the Web Services Coordination Framework — an ACID purchase across
//! two remote "web services", coordinated with NO object transaction
//! service anywhere: the framework's signals are the whole coordinator.
//!
//! Run with: `cargo run --example ws_coordination`

use std::sync::Arc;

use activity_service::{Action, CompletionStatus};
use orb::{Orb, Value};
use tx_models::TWO_PC_SET;
use wscf::{
    register_remote, CoordinationService, ProtocolSuite, StagedLedger, WsParticipantAction,
    TYPE_ATOMIC_TRANSACTION,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three organisations, three nodes.
    let orb = Orb::new();
    let coordinator_node = orb.add_node("coordinator.example")?;
    let shop_node = orb.add_node("shop.example")?;
    let bank_node = orb.add_node("bank.example")?;

    // The coordination service advertises the atomic-transaction type,
    // whose single protocol is the framework's 2PC signal set.
    let service = Arc::new(CoordinationService::default());
    service.register_coordination_type(
        TYPE_ATOMIC_TRANSACTION,
        ProtocolSuite::new().with(TWO_PC_SET, || {
            Box::new(tx_models::TwoPhaseCommitSignalSet::new()) as _
        }),
    );
    service.expose_registration(&orb, &coordinator_node)?;

    // Activation: the buyer creates a context; its wire form would ride in
    // every application message.
    let ctx = service.create_context(TYPE_ATOMIC_TRANSACTION)?;
    println!("created context {} ({})", ctx.id(), ctx.coordination_type());
    let wire = ctx.to_value().encode();
    println!("  context wire size: {} bytes", wire.len());

    // Each service stages its side of the purchase and registers through
    // the ORB — classic WS-Coordination registration, at-least-once.
    let inventory = StagedLedger::new("shop-inventory");
    inventory.stage("widget-stock", Value::I64(99));
    register_remote(
        &orb,
        &shop_node,
        &ctx,
        TWO_PC_SET,
        WsParticipantAction::new(inventory.clone() as _) as Arc<dyn Action>,
    )?;
    println!("shop.example registered its inventory ledger");

    let accounts = StagedLedger::new("bank-accounts");
    accounts.stage("buyer-balance", Value::I64(40));
    register_remote(
        &orb,
        &bank_node,
        &ctx,
        TWO_PC_SET,
        WsParticipantAction::new(accounts.clone() as _) as Arc<dyn Action>,
    )?;
    println!("bank.example registered its accounts ledger");

    // The coordinator completes: prepare and commit signals cross the
    // simulated network to both participants.
    let outcome = service.complete(ctx.id(), TWO_PC_SET, CompletionStatus::Success)?;
    println!("completion outcome: {outcome}");
    assert_eq!(outcome.name(), "committed");
    assert_eq!(inventory.read("widget-stock"), Some(Value::I64(99)));
    assert_eq!(accounts.read("buyer-balance"), Some(Value::I64(40)));
    println!("both ledgers committed atomically — and no OTS exists in this process");

    // The failing variant: one participant refuses, everyone rolls back.
    let ctx2 = service.create_context(TYPE_ATOMIC_TRANSACTION)?;
    let flaky = StagedLedger::refusing("flaky-supplier");
    flaky.stage("parts", Value::I64(7));
    let steady = StagedLedger::new("steady-partner");
    steady.stage("order", Value::I64(1));
    register_remote(&orb, &shop_node, &ctx2, TWO_PC_SET,
        WsParticipantAction::new(flaky.clone() as _) as Arc<dyn Action>)?;
    register_remote(&orb, &bank_node, &ctx2, TWO_PC_SET,
        WsParticipantAction::new(steady.clone() as _) as Arc<dyn Action>)?;
    let outcome = service.complete(ctx2.id(), TWO_PC_SET, CompletionStatus::Success)?;
    println!("\nsecond context outcome: {outcome}");
    assert_eq!(outcome.name(), "rolled_back");
    assert_eq!(steady.read("order"), None, "the steady partner was rolled back too");
    Ok(())
}
