//! A minimal, dependency-free stand-in for the subset of `criterion`
//! this workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, measurement_time, warm_up_time,
//! bench_with_input, bench_function, finish}`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no access to crates.io. Beyond API parity,
//! the shim emits one JSON document per group under
//! `$CARGO_TARGET_DIR/criterion-json/` (default `target/criterion-json/`)
//! so the bench trajectory is machine-readable, and honors `--quick` on
//! the command line (3 samples, 50 ms budget) for CI smoke runs.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point; one per bench binary.
pub struct Criterion {
    quick: bool,
    filter: Option<String>,
    json_dir: std::path::PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut quick = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => quick = true,
                // flags cargo-bench forwards that we accept and ignore
                "--bench" | "--test" | "--noplot" | "--verbose" | "-n" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        let target = std::env::var_os("CARGO_TARGET_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("target"));
        Criterion { quick, filter, json_dir: target.join("criterion-json") }
    }
}

impl Criterion {
    /// Open a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
            warm_up_time: Duration::from_millis(200),
            results: Vec::new(),
        }
    }

    /// Single benchmark outside a group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
    }

    fn skip(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => !full_id.contains(f.as_str()),
            None => false,
        }
    }
}

/// Identifier for one measurement within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function.into()) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

struct SampleStats {
    id: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// A group of measurements sharing timing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    results: Vec<SampleStats>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Benchmark a routine with no parameter.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), |b| f(b));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let full_id = format!("{}/{}", self.name, id.id);
        if self.criterion.skip(&full_id) {
            return;
        }
        let (samples, warm_up, budget) = if self.criterion.quick {
            (3usize, Duration::from_millis(10), Duration::from_millis(50))
        } else {
            (self.sample_size, self.warm_up_time, self.measurement_time)
        };

        // Warm-up doubles as the per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warm_up || warm_iters == 0 {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        let per_sample_ns = budget.as_nanos() as f64 / samples as f64;
        let iters_per_sample = ((per_sample_ns / est_ns) as u64).max(1);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let stats = SampleStats {
            id: id.id,
            mean_ns: mean,
            median_ns: median,
            min_ns: per_iter_ns[0],
            max_ns: *per_iter_ns.last().unwrap(),
            samples,
            iters_per_sample,
        };
        println!(
            "{full_id:<48} time: [{} {} {}]",
            fmt_ns(stats.min_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.max_ns),
        );
        self.results.push(stats);
    }

    /// Close the group and write its JSON report.
    pub fn finish(&mut self) {
        if self.results.is_empty() {
            return;
        }
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"group\": {:?},", self.name);
        let _ = writeln!(json, "  \"quick\": {},", self.criterion.quick);
        json.push_str("  \"benchmarks\": [\n");
        for (i, s) in self.results.iter().enumerate() {
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"id\": {:?}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \
                 \"iters_per_sample\": {}}}{sep}",
                s.id, s.mean_ns, s.median_ns, s.min_ns, s.max_ns, s.samples, s.iters_per_sample,
            );
        }
        json.push_str("  ]\n}\n");
        let dir = self.criterion.json_dir.clone();
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{}.json", self.name.replace('/', "_")));
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("criterion shim: failed to write {}: {e}", path.display());
            }
        }
        self.results.clear();
    }
}

/// Timing handle passed to benchmark routines.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` over this sample's iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declare a bench group function composed of target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion { quick: true, filter: None, json_dir: std::env::temp_dir().join("criterion-shim-test") };
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::new("spin", 8), &8u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        assert!(ran > 0, "routine must actually execute");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            quick: true,
            filter: Some("only_this".into()),
            json_dir: std::env::temp_dir().join("criterion-shim-test"),
        };
        let mut group = c.benchmark_group("other_group");
        let mut ran = false;
        group.bench_function("nope", |b| b.iter(|| ran = true));
        group.finish();
        assert!(!ran, "filtered-out benchmark must not run");
    }
}
