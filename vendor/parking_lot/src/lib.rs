//! A minimal, dependency-free stand-in for the subset of `parking_lot`
//! this workspace uses: [`Mutex`] and [`RwLock`] with non-poisoning,
//! guard-returning `lock`/`read`/`write`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API slice it needs over `std::sync`. A poisoned lock
//! (a panic while held) is transparently recovered, matching parking_lot's
//! no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s panic-transparent API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is free.
    /// Unlike `std`, a panic in another holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock with `parking_lot`'s panic-transparent API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a holder panicked");
    }
}
