//! A minimal, dependency-free stand-in for the subset of `proptest`
//! this workspace's property tests use.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API slice it needs: the [`proptest!`] / [`prop_oneof!`] /
//! `prop_assert*` macros, [`strategy::Strategy`] with `prop_map`,
//! `prop_recursive` and boxing, `any::<T>()`, [`strategy::Just`],
//! integer/float range strategies, simple `".{m,n}"` string patterns,
//! tuple strategies, and `collection::{vec, btree_map}`.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed and failures are **not shrunk** — the
//! failing case is reported as-is. That keeps the property tests
//! meaningful (they still explore the input space and fail loudly)
//! without the real crate's machinery.

pub mod test_runner {
    use std::fmt;

    /// Per-`proptest!`-block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic value source for strategies (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is fully determined by `seed`.
        pub fn deterministic(seed: u64) -> Self {
            TestRng { state: seed ^ 0x5851_f42d_4c95_7f2d }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let wide = (self.next_u64() as u128) << 64 | self.next_u64() as u128;
            (((wide >> 64) * bound as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Stable 64-bit hash of a test name, used as its case-stream seed.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real crate there is no value tree / shrinking: a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)))
        }

        /// Build a recursive strategy: values are either `self` (the
        /// leaf) or produced by `branch` applied to a strategy for the
        /// next-shallower level, nesting at most `depth` deep. The
        /// `_desired_size` / `_expected_branch_size` hints of the real
        /// crate are accepted and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = branch(strat).boxed();
                strat = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            strat
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| inner.generate(rng))
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T> {
        gen: Arc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { gen: Arc::clone(&self.gen) }
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Wrap a generation function.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy { gen: Arc::new(f) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Strategy producing one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between equally-weighted alternatives
    /// (the engine behind [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {
            $(
                impl Strategy for std::ops::Range<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.below(span) as i128) as $ty
                    }
                }

                impl Strategy for std::ops::RangeInclusive<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "empty range strategy");
                        let span = (end as i128 - start as i128) as u128 + 1;
                        let wide = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
                        let off = ((wide >> 64) * span) >> 64;
                        (start as i128 + off as i128) as $ty
                    }
                }
            )*
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String patterns: the subset this workspace uses is `".{m,n}"`
    /// (a printable-ASCII string of length `m..=n`). Anything else is
    /// treated as a literal.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            if let Some((min, max)) = parse_dot_repeat(self) {
                let len = min + rng.below((max - min + 1) as u64) as usize;
                (0..len)
                    .map(|_| char::from(b' ' + rng.below(95) as u8))
                    .collect()
            } else {
                (*self).to_string()
            }
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (min, max) = body.split_once(',')?;
        let min: usize = min.trim().parse().ok()?;
        let max: usize = max.trim().parse().ok()?;
        (min <= max).then_some((min, max))
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    #[allow(non_snake_case)]
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.generate(rng),)+)
                    }
                }
            )*
        };
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` support: the full-domain strategy for primitives.
pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($ty:ty),*) => {
            $(
                impl Arbitrary for $ty {
                    fn arbitrary(rng: &mut TestRng) -> Self {
                        rng.next_u64() as $ty
                    }
                }
            )*
        };
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // finite, sign-symmetric, wide dynamic range
            let mag = rng.unit_f64() * 1.0e15;
            if rng.next_u64() & 1 == 1 { -mag } else { mag }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from(b' ' + rng.below(95) as u8)
        }
    }
}

/// The full-domain strategy for `T` (`any::<u8>()`, `any::<bool>()`, …).
pub fn any<T: arbitrary::Arbitrary + 'static>() -> strategy::BoxedStrategy<T> {
    strategy::BoxedStrategy::from_fn(T::arbitrary)
}

pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};
    use std::collections::BTreeMap;

    /// Element-count bound for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// `Vec<T>` with a length drawn from `size`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        let size = size.into();
        BoxedStrategy::from_fn(move |rng| {
            let len = size.min + rng.below((size.max - size.min + 1) as u64) as usize;
            (0..len).map(|_| element.generate(rng)).collect()
        })
    }

    /// `BTreeMap<K, V>` with an entry count drawn from `size`.
    ///
    /// Key collisions collapse, so the final size can fall below the
    /// drawn count (the real crate retries; the bound tests rely on is
    /// the maximum, which still holds).
    pub fn btree_map<KS, VS>(
        key: KS,
        value: VS,
        size: impl Into<SizeRange>,
    ) -> BoxedStrategy<BTreeMap<KS::Value, VS::Value>>
    where
        KS: Strategy + 'static,
        VS: Strategy + 'static,
        KS::Value: Ord,
    {
        let size = size.into();
        BoxedStrategy::from_fn(move |rng| {
            let len = size.min + rng.below((size.max - size.min + 1) as u64) as usize;
            (0..len).map(|_| (key.generate(rng), value.generate(rng))).collect()
        })
    }
}

pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    $crate::test_runner::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("proptest '{}' failed at case {}/{}: {}",
                               stringify!($name), case + 1, config.cases, e);
                    }
                }
            }
        )+
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property body; failure aborts only the current case
/// with a descriptive error.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", *l, *r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", *l, *r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_patterns_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic(11);
        for _ in 0..500 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let s = ".{0,8}".generate(&mut rng);
            assert!(s.len() <= 8 && s.is_ascii());
            let t = (0u8..4, any::<bool>()).generate(&mut rng);
            assert!(t.0 < 4);
        }
    }

    #[test]
    fn collections_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic(12);
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = crate::collection::vec(any::<bool>(), 7usize).generate(&mut rng);
            assert_eq!(exact.len(), 7);
            let m = crate::collection::btree_map(".{0,4}", 0i64..10, 0..6).generate(&mut rng);
            assert!(m.len() < 6);
        }
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 24, 6, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = crate::test_runner::TestRng::deterministic(13);
        for _ in 0..300 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn macro_roundtrip(x in 0u32..100, flag in any::<bool>(), s in ".{0,16}") {
            prop_assert!(x < 100);
            prop_assert_eq!(flag, flag);
            prop_assert!(s.len() <= 16, "len {} too big", s.len());
            prop_assert_ne!(x + 1, x);
        }
    }
}
