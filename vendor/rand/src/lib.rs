//! A minimal, dependency-free stand-in for the subset of `rand` this
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`].
//!
//! The build environment has no access to crates.io. The generator is a
//! splitmix64 — not the real StdRng's ChaCha, so seeded sequences differ
//! from upstream, but every consumer in this repo only needs a
//! deterministic, well-mixed stream for fault injection and jitter.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full random stream (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, as the real crate does.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with `rng.gen_range(..)`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = uniform_u128(rng, span);
                    (self.start as i128 + offset as i128) as $ty
                }
            }

            impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = uniform_u128(rng, span);
                    (start as i128 + offset as i128) as $ty
                }
            }
        )*
    };
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` (`span > 0`) via 128-bit multiply-shift.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // widening multiply keeps bias below 2^-64 for all spans this repo uses
    let wide = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
    let hi = wide >> 64;
    (hi * span) >> 64
}

/// Convenience sampling methods, as in the real crate.
pub trait Rng: RngCore {
    /// Draw a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (splitmix64 core).
    ///
    /// Not the real crate's ChaCha12 — seeded streams differ from
    /// upstream, but determinism per seed is what callers rely on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10u64);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0..=5u64);
            assert!(w <= 5);
            let z = rng.gen_range(-4..4i64);
            assert!((-4..4).contains(&z));
        }
        // inclusive range hitting both endpoints over many draws
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            match rng.gen_range(0..=3u8) {
                0 => saw_lo = true,
                3 => saw_hi = true,
                _ => {}
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn full_u64_inclusive_range_is_safe() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(0..=u64::MAX);
    }
}
