//! A minimal, dependency-free stand-in for the subset of the `bytes`
//! crate this workspace uses: [`BytesMut`] as a growable big-endian
//! encoder, [`Bytes`] as an immutable buffer, [`BufMut`] put-methods and
//! [`Buf`] get-methods (implemented for `&[u8]` cursors).
//!
//! The build environment has no access to crates.io; this shim keeps the
//! wire formats in `orb::value` and `recovery-log` byte-identical to what
//! the real crate would produce (all integers big-endian).

use std::ops::{Deref, DerefMut};

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: std::sync::Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: std::sync::Arc::from(&[][..]) }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// A growable byte buffer used to assemble encoded records.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

macro_rules! put_be {
    ($($name:ident => $ty:ty),* $(,)?) => {
        $(
            #[doc = concat!("Append a big-endian `", stringify!($ty), "`.")]
            fn $name(&mut self, value: $ty) {
                self.put_slice(&value.to_be_bytes());
            }
        )*
    };
}

/// Write-side buffer operations (big-endian, matching the real crate).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    put_be! {
        put_u8 => u8,
        put_u16 => u16,
        put_u32 => u32,
        put_u64 => u64,
        put_i64 => i64,
        put_f64 => f64,
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

macro_rules! get_be {
    ($($name:ident => $ty:ty),* $(,)?) => {
        $(
            #[doc = concat!("Consume a big-endian `", stringify!($ty), "`.")]
            #[doc = ""]
            #[doc = "Panics if fewer bytes remain, matching the real crate."]
            fn $name(&mut self) -> $ty {
                const N: usize = std::mem::size_of::<$ty>();
                let mut raw = [0u8; N];
                raw.copy_from_slice(&self.chunk()[..N]);
                self.advance(N);
                <$ty>::from_be_bytes(raw)
            }
        )*
    };
}

/// Read-side cursor operations (big-endian, matching the real crate).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    get_be! {
        get_u8 => u8,
        get_u16 => u16,
        get_u32 => u32,
        get_u64 => u64,
        get_i64 => i64,
        get_f64 => f64,
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16(0x0102);
        buf.put_u32(0xdead_beef);
        buf.put_u64(42);
        buf.put_i64(-9);
        buf.put_f64(1.5);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16(), 0x0102);
        assert_eq!(cursor.get_u32(), 0xdead_beef);
        assert_eq!(cursor.get_u64(), 42);
        assert_eq!(cursor.get_i64(), -9);
        assert_eq!(cursor.get_f64(), 1.5);
        assert_eq!(cursor, b"xy");
        cursor.advance(2);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn wire_layout_is_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u16(0x0102);
        assert_eq!(&buf[..], &[0x01, 0x02]);
    }
}
