//! Umbrella crate for the CORBA Activity Service reproduction.
//!
//! This crate exists to host the workspace-wide integration tests
//! (`tests/`) and runnable examples (`examples/`); the substance lives in
//! the member crates, re-exported here for convenience:
//!
//! * [`activity_service`] — the paper's contribution: Activities,
//!   Coordinators, Signals, SignalSets, Actions, PropertyGroups.
//! * [`ots`] — an Object Transaction Service (flat + nested transactions,
//!   two-phase commit).
//! * [`orb`] — the simulated distribution infrastructure.
//! * [`recovery_log`] — write-ahead logging and crash/replay machinery.
//! * [`tx_models`] — the extended transaction models of §4 mapped onto the
//!   framework.
//! * [`wfengine`] — an OPENflow-style transactional workflow engine (§4.4).
//! * [`btp`] — OASIS BTP atoms and cohesions (§4.5).
//! * [`wscf`] — the Web Services Coordination Framework (§5.2).

pub use activity_service;
pub use btp;
pub use orb;
pub use ots;
pub use recovery_log;
pub use tx_models;
pub use wfengine;
pub use wscf;
